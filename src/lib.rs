//! # AutoDC — data curation with deep learning
//!
//! A full Rust implementation of the system envisioned by *"Data
//! Curation with Deep Learning"* (Thirumuruganathan, Tang, Ouzzani —
//! EDBT 2020): the AutoDC project, "towards self-driving data
//! curation".
//!
//! The paper's pipeline (its Figure 1) — **discover → integrate →
//! clean** — is orchestrated by [`pipeline::Pipeline`], and the same
//! capabilities are served online by [`serve`] (`dc-serve`); every
//! mechanism the paper describes lives in a dedicated crate,
//! re-exported here:
//!
//! | crate | paper | provides |
//! |---|---|---|
//! | [`core`](dc_core) | — | [`DcError`](dc_core::DcError)/[`DcResult`](dc_core::DcResult): the workspace's unified fallible surface |
//! | [`tensor`] | §2 | dense tensors, reverse-mode autograd, the blocked-GEMM worker pool |
//! | [`data`] | §3.2 | out-of-core chunked columnar store, zero-copy batch assembly, sparse CSR column family |
//! | [`nn`] | §2.1, Fig 2 | MLPs, LSTMs, AE/k-sparse/DAE/VAE, GANs, optimisers, the unified `Trainer` loop |
//! | [`index`] | §5.2 | packed LSH signatures, incremental banded index, quantized retrieval funnel |
//! | [`obs`](dc_obs) | — | counters/gauges/histograms/spans behind `DC_OBS`; the service's SLO surface |
//! | [`relational`] | §3.1, Fig 4 | tables, FDs/CFDs, denial constraints, table graphs |
//! | [`embed`] | §2.2, §3.1, Fig 3 | SGNS, cell/tuple/column/table embeddings, coherent groups |
//! | [`er`] | §5.2, Fig 5 | DeepER, LSH blocking, classical baselines |
//! | [`discovery`] | §5.1 | EKG, semantic matcher, neural table search |
//! | [`clean`] | §5.3 | DAE/kNN imputation, fusion, FD repair, outliers, canonical forms |
//! | [`synth`] | §4 | FlashFill-style DSL, neural-guided synthesis, golden records |
//! | [`weak`] | §6.2 | labeling functions, label models, augmentation, crowd, transfer |
//! | [`datagen`] | §6.2.3 | synthetic benchmarks, BART-style error injection |
//! | [`serve`] | §3.4 | the online multi-tenant service: micro-batched match/encode, incremental blocking, impute + search endpoints, hot reload |
//!
//! ## Quickstart
//!
//! ```
//! use autodc::prelude::*;
//!
//! // A dirty table with a planted FD violation…
//! let mut table = autodc::relational::table::employee_example();
//! let fd = FunctionalDependency::new(vec![2], 3);
//! assert!(!fd.holds(&table));
//! // …repaired by majority within FD groups.
//! let repairs = autodc::clean::repair::repair_fds(&mut table, &[fd.clone()], 5);
//! assert!(fd.holds(&table));
//! assert_eq!(repairs.len(), 1);
//! ```
//!
//! To serve the same capabilities online (`cargo run -p dc-serve`), see
//! the [`serve`] crate docs and the endpoint table in the README.

pub use dc_clean as clean;
pub use dc_data as data;
pub use dc_datagen as datagen;
pub use dc_discovery as discovery;
pub use dc_embed as embed;
pub use dc_er as er;
pub use dc_index as index;
pub use dc_nn as nn;
pub use dc_relational as relational;
pub use dc_serve as serve;
pub use dc_synth as synth;
pub use dc_tensor as tensor;
pub use dc_weak as weak;

pub mod io;
pub mod pipeline;
pub mod quality;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use crate::pipeline::{Pipeline, PipelineConfig, PipelineReport};
    pub use crate::quality::{quality_score, QualityReport};
    pub use dc_clean::{DaeImputer, KnnImputer, SimpleImputer, SimpleStrategy, TableEncoder};
    pub use dc_core::{DcError, DcResult};
    pub use dc_data::{ChunkedDataset, ChunkedStore, Csr, CsrBuilder, Dataset, StoreWriter};
    pub use dc_datagen::{ErBenchmark, ErSuite, ErrorInjector, Lake};
    pub use dc_discovery::{Bm25Lite, Ekg, NeuralSearch, SemanticMatcher};
    pub use dc_embed::{Embeddings, SgnsConfig};
    pub use dc_er::{Composition, DeepEr, DeepErConfig, LshBlocker};
    pub use dc_index::{IncrementalLshIndex, LshConfig, LshIndex};
    pub use dc_nn::{Activation, Adam, LossKind, Mlp};
    pub use dc_relational::{AttrType, FunctionalDependency, Schema, Table, TableGraph, Value};
    pub use dc_serve::{Registry, ServeConfig, TenantSpec};
    pub use dc_synth::{synthesize, SynthConfig};
    pub use dc_tensor::{Tape, Tensor};
}
