//! Model and dataset persistence.
//!
//! §3.3's pre-trained-model story ("training a DL model on a large
//! dataset and then reusing it") needs artifacts that survive the
//! process: embeddings, classifiers and encoders serialise to JSON so a
//! pre-training run can feed many later curation tasks.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::path::Path;

/// Serialise any model/dataset to pretty JSON at `path`.
pub fn save_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> Result<(), String> {
    let json = serde_json::to_string(value).map_err(|e| format!("serialize: {e}"))?;
    std::fs::write(path.as_ref(), json).map_err(|e| format!("write: {e}"))
}

/// Load a model/dataset previously written by [`save_json`].
pub fn load_json<T: DeserializeOwned>(path: impl AsRef<Path>) -> Result<T, String> {
    let json = std::fs::read_to_string(path.as_ref()).map_err(|e| format!("read: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("deserialize: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_clean::TableEncoder;
    use dc_embed::{Embeddings, SgnsConfig};
    use dc_nn::{Activation, Mlp};
    use dc_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("autodc_io_{name}_{}.json", std::process::id()))
    }

    #[test]
    fn mlp_round_trips_with_identical_predictions() {
        let mut rng = StdRng::seed_from_u64(1);
        let mlp = Mlp::new(&[4, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let x = Tensor::randn(5, 4, 1.0, &mut rng);
        let before = mlp.predict_proba(&x);

        let path = tmp("mlp");
        save_json(&path, &mlp).expect("save");
        let loaded: Mlp = load_json(&path).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.predict_proba(&x), before);
    }

    #[test]
    fn embeddings_round_trip_preserves_similarity() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = vec![vec!["a".to_string(), "b".to_string()]; 30];
        let emb = Embeddings::train(&corpus, &SgnsConfig::default(), &mut rng);
        let before = emb.similarity("a", "b").expect("in vocab");

        let path = tmp("emb");
        save_json(&path, &emb).expect("save");
        let loaded: Embeddings = load_json(&path).expect("load");
        std::fs::remove_file(&path).ok();

        assert_eq!(loaded.similarity("a", "b"), Some(before));
        assert_eq!(loaded.vocab.len(), emb.vocab.len());
    }

    #[test]
    fn table_encoder_round_trips_after_index_rebuild() {
        let mut rng = StdRng::seed_from_u64(3);
        let table = dc_datagen::people_table(30, &mut rng);
        let encoder = TableEncoder::fit(&table, 16);
        let (before, _) = encoder.encode(&table);

        let path = tmp("encoder");
        save_json(&path, &encoder).expect("save");
        let mut loaded: TableEncoder = load_json(&path).expect("load");
        std::fs::remove_file(&path).ok();
        loaded.rebuild_indexes(); // serde skips the hash index

        let (after, _) = loaded.encode(&table);
        assert_eq!(after, before);
    }

    #[test]
    fn tables_round_trip() {
        let table = dc_relational::table::employee_example();
        let path = tmp("table");
        save_json(&path, &table).expect("save");
        let loaded: dc_relational::Table = load_json(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, table);
    }

    #[test]
    fn load_errors_are_reported() {
        let err = load_json::<Mlp>("/nonexistent/path.json").expect_err("missing");
        assert!(err.contains("read"));
    }
}
