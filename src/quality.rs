//! Dataset quality scoring — the pipeline's before/after yardstick.
//!
//! The paper's success metric is "to reduce the time and cost of
//! performing DC tasks"; within an experiment we operationalise data
//! quality as a composite of completeness (non-null rate), consistency
//! (FD satisfaction) and redundancy (near-duplicate rate).

use dc_relational::{FunctionalDependency, Table};

/// A quality breakdown for one table.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QualityReport {
    /// Fraction of non-null cells.
    pub completeness: f64,
    /// Fraction of rows not involved in any FD violation.
    pub consistency: f64,
    /// Fraction of rows that are not exact duplicates of an earlier row.
    pub uniqueness: f64,
}

impl QualityReport {
    /// Unweighted mean of the three components.
    pub fn score(&self) -> f64 {
        (self.completeness + self.consistency + self.uniqueness) / 3.0
    }
}

/// Compute the quality report of a table under the given FDs.
pub fn quality_score(table: &Table, fds: &[FunctionalDependency]) -> QualityReport {
    let completeness = 1.0 - table.null_rate();

    let mut violating = std::collections::HashSet::new();
    for fd in fds {
        for (a, b) in fd.violations(table) {
            violating.insert(a);
            violating.insert(b);
        }
    }
    let consistency = if table.is_empty() {
        1.0
    } else {
        1.0 - violating.len() as f64 / table.len() as f64
    };

    let mut seen = std::collections::HashSet::new();
    let mut dup = 0usize;
    for row in &table.rows {
        let key: Vec<String> = row.iter().map(|v| v.canonical()).collect();
        if !seen.insert(key) {
            dup += 1;
        }
    }
    let uniqueness = if table.is_empty() {
        1.0
    } else {
        1.0 - dup as f64 / table.len() as f64
    };

    QualityReport {
        completeness,
        consistency,
        uniqueness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::table::employee_example;
    use dc_relational::{AttrType, Schema, Value};

    #[test]
    fn clean_table_scores_high() {
        let t = employee_example();
        let q = quality_score(&t, &[FunctionalDependency::new(vec![0], 2)]);
        assert_eq!(q.completeness, 1.0);
        assert_eq!(q.consistency, 1.0);
        assert_eq!(q.uniqueness, 1.0);
        assert_eq!(q.score(), 1.0);
    }

    #[test]
    fn fd_violations_lower_consistency() {
        let t = employee_example();
        // Dept ID → Dept Name is violated by 3 of 4 rows (Fig 4).
        let q = quality_score(&t, &[FunctionalDependency::new(vec![2], 3)]);
        assert!((q.consistency - 0.25).abs() < 1e-9);
    }

    #[test]
    fn nulls_and_duplicates_lower_scores() {
        let mut t = Table::new(
            "d",
            Schema::new(&[("a", AttrType::Text), ("b", AttrType::Text)]),
        );
        t.push(vec![Value::text("x"), Value::Null]);
        t.push(vec![Value::text("x"), Value::Null]); // exact duplicate
        let q = quality_score(&t, &[]);
        assert_eq!(q.completeness, 0.5);
        assert_eq!(q.uniqueness, 0.5);
        assert!(q.score() < 1.0);
    }

    use dc_relational::Table;
}
