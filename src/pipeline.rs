//! Pipeline orchestration — Figure 1 and §3.4 ("Data Curation as a
//! Service": "whether we can orchestrate a DC pipeline, where each
//! component possibly uses some DL model, such that the input data is
//! integrated and cleaned automatically for a user specified task").
//!
//! [`Pipeline::run`] executes the three stages of the figure against a
//! lake of tables:
//!
//! 1. **discover** — embed the lake, rank tables against the analyst's
//!    natural-language query, keep the top-k compatible tables;
//! 2. **integrate** — union compatible tables, block with embedding
//!    LSH, match with a similarity rule, cluster with union–find, and
//!    consolidate each duplicate cluster into a golden record;
//! 3. **clean** — discover FDs, repair violations by majority, impute
//!    remaining nulls.
//!
//! The report records what every stage did plus before/after
//! [`crate::quality::QualityReport`]s.
//!
//! The discovery and imputation steps run through
//! [`dc_serve::engine`] — the exact code paths behind the online
//! service's `/search` and `/impute` endpoints — so batch pipeline
//! results and served results cannot drift apart.

use crate::quality::{quality_score, QualityReport};
use dc_clean::{SimpleImputer, SimpleStrategy, TableEncoder};
use dc_discovery::NeuralSearch;
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::baselines::RuleMatcher;
use dc_er::features::tuple_vectors;
use dc_er::LshBlocker;
use dc_relational::{discover_fds, Table};
use dc_serve::engine;
use dc_synth::consolidate::{consolidate_cluster, PreferenceModel};
use rand::rngs::StdRng;

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// The analyst's discovery query ("Google-style search", §5.1).
    pub query: String,
    /// How many top-ranked tables to integrate.
    pub top_k_tables: usize,
    /// SGNS settings for the lake embeddings.
    pub sgns: SgnsConfig,
    /// Mean-attribute-similarity threshold for the duplicate matcher.
    pub dedup_threshold: f64,
    /// LSH shape: (bands, rows per band).
    pub lsh: (usize, usize),
    /// Impute remaining nulls after repair.
    pub impute: bool,
    /// When > 0, impute through the service engine's kNN path
    /// ([`dc_serve::engine::impute_knn`], the `/impute` endpoint) with
    /// this `k` instead of the key-masked global-mode fill.
    pub knn_impute_k: usize,
    /// Maximum FD LHS size during discovery.
    pub max_fd_lhs: usize,
    /// Maximum majority-repair rounds (interacting FDs need several).
    pub repair_rounds: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            query: String::new(),
            top_k_tables: 2,
            sgns: SgnsConfig {
                dim: 24,
                window: 8,
                epochs: 5,
                ..Default::default()
            },
            dedup_threshold: 0.82,
            lsh: (8, 4),
            impute: true,
            knn_impute_k: 0,
            max_fd_lhs: 1,
            repair_rounds: 12,
        }
    }
}

impl PipelineConfig {
    /// Set the discovery query (chainable builder).
    pub fn with_query(mut self, query: impl Into<String>) -> Self {
        self.query = query.into();
        self
    }

    /// Set how many top-ranked tables to integrate (chainable builder).
    pub fn with_top_k_tables(mut self, k: usize) -> Self {
        self.top_k_tables = k.max(1);
        self
    }

    /// Set the SGNS settings for the lake embeddings (chainable
    /// builder).
    pub fn with_sgns(mut self, sgns: SgnsConfig) -> Self {
        self.sgns = sgns;
        self
    }

    /// Set the duplicate-matcher similarity threshold (chainable
    /// builder).
    pub fn with_dedup_threshold(mut self, threshold: f64) -> Self {
        self.dedup_threshold = threshold;
        self
    }

    /// Set the LSH shape as (bands, rows per band) (chainable builder).
    pub fn with_lsh(mut self, bands: usize, rows_per_band: usize) -> Self {
        self.lsh = (bands, rows_per_band);
        self
    }

    /// Enable or disable null imputation (chainable builder).
    pub fn with_impute(mut self, impute: bool) -> Self {
        self.impute = impute;
        self
    }

    /// Route imputation through the service engine's kNN path with this
    /// `k`; 0 restores the key-masked mode fill (chainable builder).
    pub fn with_knn_impute_k(mut self, k: usize) -> Self {
        self.knn_impute_k = k;
        self
    }

    /// Set the maximum FD LHS size during discovery (chainable
    /// builder).
    pub fn with_max_fd_lhs(mut self, lhs: usize) -> Self {
        self.max_fd_lhs = lhs;
        self
    }

    /// Set the maximum majority-repair rounds (chainable builder).
    pub fn with_repair_rounds(mut self, rounds: usize) -> Self {
        self.repair_rounds = rounds;
        self
    }
}

/// What the pipeline did.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Names of the tables discovery selected, in rank order.
    pub discovered: Vec<String>,
    /// Rows entering integration.
    pub rows_in: usize,
    /// Candidate pairs surviving blocking.
    pub candidates: usize,
    /// Duplicate clusters consolidated (clusters of size ≥ 2).
    pub clusters_merged: usize,
    /// FD repairs applied.
    pub repairs: usize,
    /// Cells imputed.
    pub cells_imputed: usize,
    /// Quality before cleaning (after integration).
    pub before: QualityReport,
    /// Quality after the full pipeline.
    pub after: QualityReport,
}

/// The Figure-1 orchestrator.
#[derive(Clone, Debug, Default)]
pub struct Pipeline {
    /// Configuration.
    pub config: PipelineConfig,
}

impl Pipeline {
    /// With the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// Run discover → integrate → clean over a lake.
    ///
    /// # Panics
    /// Panics when `tables` is empty.
    pub fn run(&self, tables: &[Table], rng: &mut StdRng) -> (Table, PipelineReport) {
        assert!(!tables.is_empty(), "pipeline needs at least one table");

        // ---- discover -------------------------------------------------
        let refs: Vec<&Table> = tables.iter().collect();
        let docs = dc_discovery::search_documents(&refs, 15);
        let emb = Embeddings::train(&docs, &self.config.sgns, rng);
        let search = NeuralSearch::index(emb.clone(), &refs, 15);
        // The service engine's `/search` path; with shortlist = table
        // count it is exact — same tables, scores, and order as a full
        // ranking.
        let ranked = engine::search_neural(&search, &self.config.query, refs.len(), refs.len())
            .expect("lake is non-empty, k >= 1");
        // Keep the top table plus lower-ranked tables with an identical
        // schema (only those can be unioned).
        let base = &tables[ranked[0].0];
        let mut discovered = vec![base.name.clone()];
        let mut merged = base.clone();
        merged.name = format!("{}_curated", base.name);
        for &(ti, _) in ranked
            .iter()
            .skip(1)
            .take(self.config.top_k_tables.saturating_sub(1))
        {
            let t = &tables[ti];
            if t.schema.names() == base.schema.names() {
                discovered.push(t.name.clone());
                for row in &t.rows {
                    merged.push(row.clone());
                }
            }
        }
        let rows_in = merged.len();

        // ---- integrate (dedup + golden records) ------------------------
        // Word-level tuple embeddings for blocking.
        let tuple_docs: Vec<Vec<String>> = merged
            .rows
            .iter()
            .map(|r| dc_relational::tokenize_tuple(r))
            .collect();
        let tuple_emb = Embeddings::train(&tuple_docs, &self.config.sgns, rng);
        let vectors = tuple_vectors(&tuple_emb, &merged);
        let blocker = LshBlocker::new(tuple_emb.dim(), self.config.lsh.0, self.config.lsh.1, rng);
        let candidates = blocker.candidates(&vectors);
        let matcher = RuleMatcher::new(self.config.dedup_threshold);
        let mut uf = UnionFind::new(merged.len());
        for &(a, b) in &candidates {
            if matcher.score(&merged.rows[a], &merged.rows[b]) >= self.config.dedup_threshold {
                uf.union(a, b);
            }
        }
        let clusters = uf.clusters();
        let preference = PreferenceModel::default();
        let mut integrated = Table::new(merged.name.clone(), merged.schema.clone());
        let mut clusters_merged = 0usize;
        for cluster in &clusters {
            if cluster.len() > 1 {
                clusters_merged += 1;
            }
            let rows: Vec<&[dc_relational::Value]> =
                cluster.iter().map(|&i| merged.rows[i].as_slice()).collect();
            integrated.push(consolidate_cluster(&rows, &preference));
        }
        let fds = select_repair_fds(discover_fds(&integrated, self.config.max_fd_lhs));
        let before = quality_score(&integrated, &fds);

        // ---- clean ------------------------------------------------------
        // Impute BEFORE repairing: a global-mode fill ignores FD groups,
        // so running the majority repair afterwards restores group
        // consistency over the imputed values too.
        let mut cleaned = integrated;
        let mut cells_imputed = 0usize;
        if self.config.impute && self.config.knn_impute_k > 0 {
            // The service engine's `/impute` path: encode the table and
            // fill nulls from the k nearest complete rows.
            let encoder = TableEncoder::fit(&cleaned, 64);
            let filled = engine::impute_knn(&cleaned, &encoder, self.config.knn_impute_k)
                .expect("encoder was fitted to this table");
            for (row, frow) in cleaned.rows.iter_mut().zip(&filled.rows) {
                for c in 0..row.len() {
                    if row[c].is_null() && !frow[c].is_null() {
                        row[c] = frow[c].clone();
                        cells_imputed += 1;
                    }
                }
            }
        } else if self.config.impute {
            // Key-like columns (near-unique values: ids, emails, phones)
            // must not receive a global-mode fill — duplicated "modes"
            // in a key column poison every FD keyed on it and send the
            // majority repair into oscillation. This is §3.1's "rare
            // values, such as primary keys, should be treated fairly".
            let key_like: Vec<bool> = (0..cleaned.schema.arity())
                .map(|c| {
                    let non_null = cleaned.rows.iter().filter(|r| !r[c].is_null()).count();
                    non_null > 0 && cleaned.distinct(c).len() as f64 / non_null as f64 > 0.8
                })
                .collect();
            let imputer = SimpleImputer::fit(&cleaned, SimpleStrategy::MeanMode);
            let filled = imputer.impute(&cleaned);
            for (row, frow) in cleaned.rows.iter_mut().zip(&filled.rows) {
                for c in 0..row.len() {
                    if row[c].is_null() && !key_like[c] {
                        row[c] = frow[c].clone();
                        cells_imputed += 1;
                    }
                }
            }
        }
        let repairs =
            dc_clean::repair::repair_fds(&mut cleaned, &fds, self.config.repair_rounds).len();
        // Cleaning can turn near-duplicates into exact duplicates
        // (imputed nulls, repaired RHS values); collapse them.
        let mut seen = std::collections::HashSet::new();
        cleaned.rows.retain(|row| {
            let key: Vec<String> = row.iter().map(|v| v.canonical()).collect();
            seen.insert(key)
        });
        let after = quality_score(&cleaned, &fds);

        (
            cleaned,
            PipelineReport {
                discovered,
                rows_in,
                candidates: candidates.len(),
                clusters_merged,
                repairs,
                cells_imputed,
                before,
                after,
            },
        )
    }
}

/// Keep a repair-safe subset of discovered FDs: at most one FD per
/// RHS column (two FDs writing the same column with contradicting
/// majorities make the fixpoint oscillate) and no 2-cycles
/// (`A → B` and `B → A` repairing each other forever).
fn select_repair_fds(
    fds: Vec<dc_relational::FunctionalDependency>,
) -> Vec<dc_relational::FunctionalDependency> {
    let mut kept: Vec<dc_relational::FunctionalDependency> = Vec::new();
    let mut rhs_taken = std::collections::HashSet::new();
    for fd in fds {
        if rhs_taken.contains(&fd.rhs) {
            continue;
        }
        let cycles = kept
            .iter()
            .any(|k| fd.lhs.contains(&k.rhs) && k.lhs.contains(&fd.rhs));
        if cycles {
            continue;
        }
        rhs_taken.insert(fd.rhs);
        kept.push(fd);
    }
    kept
}

/// Minimal union–find for duplicate clustering.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Clusters in ascending order of their smallest member.
    fn clusters(&mut self) -> Vec<Vec<usize>> {
        let n = self.parent.len();
        let mut map: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for i in 0..n {
            let r = self.find(i);
            map.entry(r).or_default().push(i);
        }
        let mut out: Vec<Vec<usize>> = map.into_values().collect();
        out.sort_by_key(|c| c[0]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{people_fds, people_table, ErrorInjector};
    use rand::SeedableRng;

    #[test]
    fn union_find_clusters() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        let c = uf.clusters();
        assert_eq!(c, vec![vec![0, 1], vec![2], vec![3, 4]]);
    }

    #[test]
    fn pipeline_improves_quality_on_dirty_lake() {
        let mut rng = StdRng::seed_from_u64(1000);
        // Two overlapping dirty shards of a people table + a decoy.
        let clean = people_table(80, &mut rng);
        let inj = ErrorInjector {
            typo_rate: 0.01,
            null_rate: 0.05,
            swap_rate: 0.0,
            fd_violation_rate: 0.02,
            abbreviation_rate: 0.0,
        };
        let (mut shard_a, _) = inj.inject(&clean, &people_fds(), &mut rng);
        shard_a.name = "people_a".into();
        let (mut shard_b, _) = inj.inject(&clean, &people_fds(), &mut rng);
        shard_b.name = "people_b".into();
        let decoy = dc_datagen::products_table(40, &mut rng);
        let tables = vec![shard_a, decoy, shard_b];

        let pipeline = Pipeline::new(PipelineConfig {
            query: "people name city country".into(),
            top_k_tables: 3,
            ..Default::default()
        });
        let (curated, report) = pipeline.run(&tables, &mut rng);

        // Both people shards discovered, not the products decoy.
        assert!(report.discovered.iter().any(|n| n == "people_a"));
        assert!(report.discovered.iter().any(|n| n == "people_b"));
        assert!(!report.discovered.iter().any(|n| n == "products"));
        // The two shards duplicate every entity: integration must merge.
        assert!(
            report.clusters_merged > 20,
            "merged {}",
            report.clusters_merged
        );
        assert!(curated.len() < report.rows_in);
        // Cleaning improves the quality score.
        assert!(
            report.after.score() >= report.before.score(),
            "quality {:?} → {:?}",
            report.before,
            report.after
        );
        // Key-like columns are deliberately not mode-imputed, so a few
        // nulls may survive; completeness must still improve.
        assert!(
            report.after.completeness >= report.before.completeness,
            "completeness {:?} → {:?}",
            report.before,
            report.after
        );
    }

    #[test]
    fn knn_impute_routes_through_the_service_engine() {
        let mut rng = StdRng::seed_from_u64(2000);
        let clean = people_table(60, &mut rng);
        let inj = dc_datagen::ErrorInjector::only(dc_datagen::ErrorKind::Null, 0.06);
        let (mut shard, _) = inj.inject(&clean, &[], &mut rng);
        shard.name = "people".into();
        let pipeline = Pipeline::new(
            PipelineConfig::default()
                .with_query("people name city country")
                .with_top_k_tables(1)
                .with_knn_impute_k(3),
        );
        let (curated, report) = pipeline.run(&[shard], &mut rng);
        assert!(report.cells_imputed > 0, "kNN path must fill nulls");
        assert!(
            report.after.completeness >= report.before.completeness,
            "completeness {:?} → {:?}",
            report.before,
            report.after
        );
        assert!(!curated.rows.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one table")]
    fn empty_lake_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        Pipeline::default().run(&[], &mut rng);
    }
}
