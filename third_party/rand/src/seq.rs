//! Slice helpers (subset of `rand::seq`), stream-compatible with
//! rand 0.8: Fisher–Yates from the top, indices drawn through the
//! `u32` fast path whenever the bound fits.

use crate::{Rng, RngCore};

/// Uniformly random index in `[0, ubound)`, using the 32-bit sampler
/// when possible exactly as rand 0.8's `gen_index` does.
#[inline]
fn gen_index<R: RngCore + ?Sized>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Extension trait for random slice operations.
pub trait SliceRandom {
    type Item;

    /// Shuffle in place (Fisher–Yates).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly random element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}
