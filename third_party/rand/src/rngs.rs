//! Named RNGs. rand 0.8's `StdRng` is `ChaCha12Rng`; ours wraps the
//! stream-compatible ChaCha12 core.

use crate::chacha::ChaCha12;
use crate::{RngCore, SeedableRng};

/// The standard RNG: ChaCha with 12 rounds, identical stream to
/// rand 0.8's `StdRng` for the same seed.
#[derive(Clone)]
pub struct StdRng(ChaCha12);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        StdRng(ChaCha12::from_seed(seed))
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_word()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // BlockRng semantics: two consecutive words, low half first.
        let lo = u64::from(self.0.next_word());
        let hi = u64::from(self.0.next_word());
        hi << 32 | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // BlockRng::fill_bytes consumes ceil(len/4) words, each
        // serialised little-endian; a trailing partial word is
        // consumed in full.
        for chunk in dest.chunks_mut(4) {
            let bytes = self.0.next_word().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}
