//! Offline reimplementation of the `rand` 0.8 API surface AutoDC uses.
//!
//! The build container has no registry access, so this crate stands in
//! for crates.io `rand`. It is **stream-compatible** with rand 0.8's
//! `StdRng` (ChaCha12 seeded via the PCG32 `seed_from_u64` expansion)
//! and reproduces the exact sampling algorithms of rand 0.8.5 —
//! Lemire widening-multiply rejection for integer ranges, 23/52-bit
//! mantissa floats for `gen_range`, 24/53-bit for `Standard`, and the
//! `u64`-threshold Bernoulli — so every seed-tuned test in the
//! workspace sees the same random stream it was written against.

pub mod distributions;
pub mod rngs;
pub mod seq;

mod chacha;

pub use distributions::Distribution;

/// Low-level source of random bits (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with PCG32, exactly as
    /// rand_core 0.6 does, so seeds reproduce upstream streams.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// High-level sampling methods, blanket-implemented for every
/// [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: Distribution<T>,
    {
        distributions::Standard.sample(self)
    }

    /// Sample uniformly from a (half-open or inclusive) range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        distributions::Bernoulli::new(p).sample(self)
    }

    /// Sample from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    // Stream-regression vectors pinning StdRng output. The stream is
    // validated indirectly against upstream rand 0.8.5 by the
    // workspace's seed-tuned learning tests (XOR convergence, ER F1
    // thresholds), which were authored against the crates.io crate;
    // these vectors freeze it so any refactor that shifts a single
    // draw fails loudly here first.
    #[test]
    fn stdrng_u32_stream_is_frozen() {
        let mut r = StdRng::seed_from_u64(0);
        let got: Vec<u32> = (0..4).map(|_| r.next_u32()).collect();
        assert_eq!(got, vec![3442241407, 3140108210, 2384947579, 3321986196]);
    }

    #[test]
    fn stdrng_u64_stream_is_frozen() {
        let mut r = StdRng::seed_from_u64(42);
        let got: Vec<u64> = (0..3).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                9713269763989775522,
                10011513049433592189,
                11740708795755607249
            ]
        );
    }

    #[test]
    fn gen_f32_stream_is_frozen() {
        let mut r = StdRng::seed_from_u64(7);
        let got: Vec<f32> = (0..3).map(|_| r.gen::<f32>()).collect();
        assert_eq!(got, vec![0.41664094, 0.030317307, 0.14255327]);
    }

    #[test]
    fn gen_range_usize_stream_is_frozen() {
        let mut r = StdRng::seed_from_u64(3);
        let got: Vec<usize> = (0..6).map(|_| r.gen_range(0..10usize)).collect();
        assert_eq!(got, vec![3, 4, 2, 4, 3, 6]);
    }

    #[test]
    fn shuffle_stream_is_frozen() {
        use crate::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..8).collect();
        v.shuffle(&mut r);
        assert_eq!(v, vec![0, 7, 5, 3, 2, 1, 4, 6]);
    }

    #[test]
    fn gen_range_f32_is_in_bounds_and_deterministic() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(-2.0..3.0f32);
            assert!((-2.0..3.0).contains(&x));
        }
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn gen_bool_rates_are_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2300..2700).contains(&hits), "hits {hits}");
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
    }

    #[test]
    fn inclusive_range_covers_endpoints() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
