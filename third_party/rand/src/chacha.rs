//! ChaCha12 word stream, compatible with `rand_chacha` 0.3's
//! `ChaCha12Rng` output as consumed through `rand_core`'s `BlockRng`.
//!
//! `BlockRng` buffers whole blocks but reads them as one continuous
//! u32 sequence (`next_u64` takes two consecutive words, low half
//! first, even across a block boundary), so a plain one-block-at-a-
//! time generator emits the identical stream.

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[derive(Clone)]
pub struct ChaCha12 {
    /// Input state: constants, 8 key words, 64-bit counter, 64-bit nonce.
    state: [u32; 16],
    buf: [u32; 16],
    idx: usize,
}

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl ChaCha12 {
    pub fn from_seed(seed: [u8; 32]) -> Self {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12–13: 64-bit block counter (starts at 0).
        // Words 14–15: stream nonce (0 for seed_from_u64 / from_seed).
        ChaCha12 {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..6 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (b, (&xi, &si)) in self.buf.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *b = xi.wrapping_add(si);
        }
        // Increment the 64-bit counter spanning words 12 (low) / 13 (high).
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.idx = 0;
    }

    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}
