//! Sampling distributions, algorithm-for-algorithm with rand 0.8.5 so
//! seeded streams match upstream bit-for-bit:
//!
//! - `Standard` floats use the 24/53-bit "multiply" conversion
//!   (`(u >> 8) as f32 * 2^-24`).
//! - Integer ranges use Lemire's widening-multiply rejection with the
//!   `(range << range.leading_zeros()) - 1` single-sample zone.
//! - Float ranges draw a mantissa in `[1, 2)`, map through
//!   `(v - 1) * scale + low`, and shrink `scale` by one ULP on the
//!   (astronomically rare) rounding overshoot.
//! - `Bernoulli` compares a full `u64` against `(p * 2^64) as u64`.

use crate::{Rng, RngCore};

/// A sampling distribution over `T`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "default" distribution: full-range integers, `[0, 1)` floats.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<isize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> isize {
        rng.next_u64() as isize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8: sign bit of a fresh u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24-bit precision "multiply" conversion.
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit precision "multiply" conversion.
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Bernoulli distribution backed by a 64-bit fixed-point threshold.
#[derive(Clone, Copy, Debug)]
pub struct Bernoulli {
    /// `(p * 2^64) as u64`; `u64::MAX` is reserved to mean "always true".
    p_int: u64,
}

const ALWAYS_TRUE: u64 = u64::MAX;
const SCALE: f64 = 2.0 * (1u64 << 63) as f64;

impl Bernoulli {
    /// # Panics
    /// Panics unless `0.0 <= p <= 1.0`.
    pub fn new(p: f64) -> Bernoulli {
        if !(0.0..1.0).contains(&p) {
            assert!(p == 1.0, "Bernoulli::new: p = {p} not in [0, 1]");
            return Bernoulli { p_int: ALWAYS_TRUE };
        }
        Bernoulli {
            p_int: (p * SCALE) as u64,
        }
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        if self.p_int == ALWAYS_TRUE {
            return true;
        }
        rng.next_u64() < self.p_int
    }
}

/// Types usable with `Rng::gen_range`.
pub trait SampleUniform: Sized {
    /// Sample from the half-open range `[low, high)`.
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// Sample from the closed range `[low, high]`.
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Range argument accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        T::sample_single_inclusive(low, high, rng)
    }
}

#[inline]
fn wmul32(a: u32, b: u32) -> (u32, u32) {
    let t = u64::from(a) * u64::from(b);
    ((t >> 32) as u32, t as u32)
}

#[inline]
fn wmul64(a: u64, b: u64) -> (u64, u64) {
    let t = u128::from(a) * u128::from(b);
    ((t >> 64) as u64, t as u64)
}

macro_rules! uniform_int_impl {
    ($ty:ty, $uty:ty, $large:ty, $wmul:ident, $next:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high ({low}..{high})");
                Self::sample_single_inclusive(low, high - 1, rng)
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high ({low}..={high})");
                let range = high.wrapping_sub(low).wrapping_add(1) as $uty as $large;
                if range == 0 {
                    // The whole domain: every bit pattern is valid.
                    return rng.$next() as $ty;
                }
                // Lemire rejection: accept when the low product half
                // falls inside the largest `range`-multiple zone.
                let zone = (range << range.leading_zeros()).wrapping_sub(1);
                loop {
                    let v: $large = rng.$next() as $large;
                    let (hi, lo) = $wmul(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

uniform_int_impl! { i32, u32, u32, wmul32, next_u32 }
uniform_int_impl! { u32, u32, u32, wmul32, next_u32 }
uniform_int_impl! { i64, u64, u64, wmul64, next_u64 }
uniform_int_impl! { u64, u64, u64, wmul64, next_u64 }
uniform_int_impl! { isize, usize, u64, wmul64, next_u64 }
uniform_int_impl! { usize, usize, u64, wmul64, next_u64 }

macro_rules! uniform_float_impl {
    ($ty:ty, $uty:ty, $bits_to_discard:expr, $exp_one:expr) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range: low >= high ({low}..{high})");
                let mut scale = high - low;
                loop {
                    // Mantissa bits glued to exponent 0 give [1, 2).
                    let value1_2 =
                        <$ty>::from_bits((rng.gen::<$uty>() >> $bits_to_discard) | $exp_one);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                    // Rounding pushed us to `high`: shrink scale one
                    // ULP and redraw, as upstream does.
                    assert!(scale.is_finite(), "gen_range: non-finite range");
                    scale = <$ty>::from_bits(scale.to_bits() - 1);
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: Self,
                high: Self,
                rng: &mut R,
            ) -> Self {
                assert!(low <= high, "gen_range: low > high ({low}..={high})");
                // Matches upstream: scale so that the largest mantissa
                // can land exactly on `high`.
                let scale = (high - low) / (1.0 - <$ty>::EPSILON / 2.0);
                let value1_2 = <$ty>::from_bits((rng.gen::<$uty>() >> $bits_to_discard) | $exp_one);
                let value0_1 = value1_2 - 1.0;
                value0_1 * scale + low
            }
        }
    };
}

uniform_float_impl! { f32, u32, 9, 127u32 << 23 }
uniform_float_impl! { f64, u64, 12, 1023u64 << 52 }
