//! JSON printer/parser over the vendored `serde` facade's `Value` tree.
//!
//! Output is compact (no whitespace), like upstream `to_string`.
//! Floats print via Rust's shortest round-trip `Display`, so an `f32`
//! widened to `f64` reparses to the identical bits — model save/load
//! round-trips are exact. Non-finite floats serialize as `null`.

use serde::de::DeserializeOwned;
use serde::{Serialize, Value};

pub use serde::Error;

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Shortest round-trip formatting; mark integral floats
                // with `.0` so they reparse as floats, like upstream.
                let s = x.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point (input is a &str,
                    // so bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a \"b\"\nc".into())),
            (
                "xs".into(),
                Value::Array(vec![Value::I64(-3), Value::F64(0.5), Value::Null]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        let mut s = String::new();
        write_value(&v, &mut s);
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn f32_round_trip_is_exact() {
        for &x in &[0.1f32, 1.0, -3.75e-20, f32::MIN_POSITIVE, 123456.78] {
            let s = to_string(&x).unwrap();
            let back: f32 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn integral_floats_keep_float_form() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let back: f64 = from_str("1.0").unwrap();
        assert_eq!(back, 1.0);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
