//! Derive macros for the vendored `serde` facade.
//!
//! The container has no `syn`/`quote`, so this parses the derive
//! input's raw `TokenStream` directly (attributes → visibility →
//! `struct`/`enum` → fields/variants) and emits impl text built as a
//! string. Output matches upstream serde's externally-tagged defaults:
//! named structs → objects, newtype structs → the inner value, tuple
//! structs → arrays, unit variants → `"Name"`, payload variants →
//! `{"Name": payload}`. `#[serde(skip)]` omits a named field on
//! serialize and fills it with `Default::default()` on deserialize.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("derive(Serialize): generated code must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("derive(Deserialize): generated code must parse")
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Field {
    /// Identifier for named fields, decimal index for tuple fields.
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Kind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Token parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected {what}, got {other:?}"),
        }
    }

    /// Consume leading `#[...]` attributes; return whether any of them
    /// was `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        while self.at_punct('#') {
            self.next();
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    skip |= attr_is_serde_skip(g.stream());
                }
                other => panic!("serde derive: malformed attribute, got {other:?}"),
            }
        }
        skip
    }

    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Consume tokens until a top-level `,`, balancing `<`/`>` so
    /// commas inside generic arguments don't split the run. The comma
    /// itself is consumed.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle_depth == 0 => {
                        self.next();
                        return;
                    }
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let mut it = stream.into_iter();
    match it.next() {
        Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
        _ => return false,
    }
    let Some(TokenTree::Group(args)) = it.next() else {
        return false;
    };
    for tok in args.stream() {
        match tok {
            TokenTree::Ident(i) if i.to_string() == "skip" => return true,
            TokenTree::Ident(i) => panic!(
                "serde derive: unsupported serde attribute `{i}` (only `skip` is implemented)"
            ),
            _ => {}
        }
    }
    false
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_visibility();
    let keyword = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("type name");
    if c.at_punct('<') {
        panic!("serde derive: generic type `{name}` is not supported by the offline facade");
    }
    match keyword.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: malformed struct `{name}`, got {other:?}"),
            };
            Item {
                name,
                kind: Kind::Struct(fields),
            }
        }
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item {
                name,
                kind: Kind::Enum(parse_variants(g.stream())),
            },
            other => panic!("serde derive: malformed enum `{name}`, got {other:?}"),
        },
        other => panic!("serde derive: unsupported item kind `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let skip = c.skip_attrs();
        c.skip_visibility();
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, got {other:?}"),
        }
        c.skip_until_comma();
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    let mut index = 0usize;
    while c.peek().is_some() {
        let skip = c.skip_attrs();
        if skip {
            panic!("serde derive: #[serde(skip)] on tuple fields is not supported");
        }
        c.skip_visibility();
        c.skip_until_comma();
        fields.push(Field {
            name: index.to_string(),
            skip: false,
        });
        index += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.skip_attrs();
        let name = c.expect_ident("variant name");
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                c.next();
                Fields::Named(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner = g.stream();
                c.next();
                Fields::Tuple(parse_tuple_fields(inner))
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant (`= expr`) and the separator.
        c.skip_until_comma();
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => ser_struct_body(fields, "self.", ""),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                arms.push_str(&ser_variant_arm(v));
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

/// Serialize body for a field list. `access` prefixes each field name
/// (`self.` for structs, empty for variant bindings); `tag` wraps the
/// result in an externally-tagged single-pair object when non-empty.
fn ser_struct_body(fields: &Fields, access: &str, tag: &str) -> String {
    let inner = match fields {
        Fields::Unit => {
            if tag.is_empty() {
                "::serde::Value::Null".to_string()
            } else {
                return format!("::serde::Value::Str(::std::string::String::from(\"{tag}\"))");
            }
        }
        Fields::Tuple(fields) if fields.len() == 1 => {
            let f = bind_name(access, &fields[0].name);
            format!("::serde::Serialize::to_value(&{f})")
        }
        Fields::Tuple(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "::serde::Serialize::to_value(&{})",
                        bind_name(access, &f.name)
                    )
                })
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Fields::Named(fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((::std::string::String::from(\"{}\"), \
                     ::serde::Serialize::to_value(&{})));",
                    f.name,
                    bind_name(access, &f.name)
                ));
            }
            format!(
                "{{ let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new(); {pushes} ::serde::Value::Object(fields) }}"
            )
        }
    };
    if tag.is_empty() {
        inner
    } else {
        format!(
            "::serde::Value::Object(::std::vec![(::std::string::String::from(\"{tag}\"), {inner})])"
        )
    }
}

/// Field access expression: `self.name` / `self.0` for structs,
/// `f0`-style bindings for enum variants.
fn bind_name(access: &str, name: &str) -> String {
    if access.is_empty() {
        if name.chars().all(|c| c.is_ascii_digit()) {
            format!("f{name}")
        } else {
            name.to_string()
        }
    } else {
        format!("{access}{name}")
    }
}

fn ser_variant_arm(v: &Variant) -> String {
    let name = &v.name;
    match &v.fields {
        Fields::Unit => format!(
            "Self::{name} => \
             ::serde::Value::Str(::std::string::String::from(\"{name}\")),"
        ),
        Fields::Tuple(fields) => {
            let binds: Vec<String> = (0..fields.len()).map(|i| format!("f{i}")).collect();
            let body = ser_struct_body(&v.fields, "", name);
            format!("Self::{name}({}) => {body},", binds.join(", "))
        }
        Fields::Named(fields) => {
            let binds: Vec<String> = fields
                .iter()
                .filter(|f| !f.skip)
                .map(|f| f.name.clone())
                .collect();
            let pattern = if binds.is_empty() {
                format!("Self::{name} {{ .. }}")
            } else {
                format!("Self::{name} {{ {}, .. }}", binds.join(", "))
            };
            let body = ser_struct_body(&v.fields, "", name);
            format!("{pattern} => {body},")
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::Struct(fields) => de_fields_body(name, fields, "Self", "v"),
        Kind::Enum(variants) => de_enum_body(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Deserialize expression rebuilding `ctor` from the value expression
/// `src` according to the field list.
fn de_fields_body(type_name: &str, fields: &Fields, ctor: &str, src: &str) -> String {
    match fields {
        Fields::Unit => format!(
            "match {src} {{ \
               ::serde::Value::Null => ::std::result::Result::Ok({ctor}), \
               other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"{type_name}: expected null, got {{}}\", other.kind()))) }}"
        ),
        Fields::Tuple(fields) if fields.len() == 1 => {
            format!("::std::result::Result::Ok({ctor}(::serde::Deserialize::from_value({src})?))")
        }
        Fields::Tuple(fields) => {
            let n = fields.len();
            let items: Vec<String> = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "{{ let items = {src}.as_array().ok_or_else(|| ::serde::Error::custom(\
                   \"{type_name}: expected array\"))?; \
                   if items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                       \"{type_name}: expected {n} elements, got {{}}\", items.len()))); }} \
                   ::std::result::Result::Ok({ctor}({})) }}",
                items.join(", ")
            )
        }
        Fields::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!("{}: ::std::default::Default::default(),", f.name));
                } else {
                    inits.push_str(&format!("{0}: ::serde::from_field(obj, \"{0}\")?,", f.name));
                }
            }
            format!(
                "{{ let obj = {src}.as_object().ok_or_else(|| ::serde::Error::custom(\
                   \"{type_name}: expected object\"))?; \
                   ::std::result::Result::Ok({ctor} {{ {inits} }}) }}"
            )
        }
    }
}

fn de_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut payload_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            Fields::Unit => unit_arms.push_str(&format!(
                "\"{vname}\" => ::std::result::Result::Ok(Self::{vname}),"
            )),
            fields => {
                let body = de_fields_body(
                    &format!("{name}::{vname}"),
                    fields,
                    &format!("Self::{vname}"),
                    "payload",
                );
                payload_arms.push_str(&format!("\"{vname}\" => {body},"));
            }
        }
    }
    format!(
        "match v {{ \
           ::serde::Value::Str(s) => match s.as_str() {{ \
             {unit_arms} \
             other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
               \"{name}: unknown variant {{other:?}}\"))) }}, \
           ::serde::Value::Object(pairs) if pairs.len() == 1 => {{ \
             let (tag, payload) = &pairs[0]; \
             match tag.as_str() {{ \
               {payload_arms} \
               other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                 \"{name}: unknown variant {{other:?}}\"))) }} }}, \
           other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
             \"{name}: expected variant string or single-key object, got {{}}\", other.kind()))) }}"
    )
}
