//! Offline minimal benchmark harness exposing the criterion API
//! surface AutoDC's benches use (`bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`).
//!
//! Timing is a simple mean over `sample_size` samples of adaptively
//! batched iterations — no statistics, plots, or baselines. Passing
//! `--test` (as `cargo test` does for `harness = false` bench
//! targets) runs each benchmark body once and exits.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub struct Criterion {
    sample_size: usize,
    /// Smoke-test mode: run every body once, skip timing loops.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 100,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(id, self.sample_size, self.test_mode, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.test_mode,
            &mut |b| f(b, input),
        );
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(
            &full,
            self.criterion.sample_size,
            self.criterion.test_mode,
            &mut f,
        );
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: &str, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher {
    /// Iterations per timed sample.
    batch: u64,
    /// Accumulated elapsed time across samples.
    elapsed: Duration,
    /// Total iterations across samples.
    iters: u64,
    test_mode: bool,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            return;
        }
        let start = Instant::now();
        for _ in 0..self.batch {
            std::hint::black_box(f());
        }
        self.elapsed += start.elapsed();
        self.iters += self.batch;
    }
}

fn run_one(id: &str, sample_size: usize, test_mode: bool, f: &mut dyn FnMut(&mut Bencher)) {
    if test_mode {
        let mut b = Bencher {
            batch: 1,
            elapsed: Duration::ZERO,
            iters: 0,
            test_mode,
        };
        f(&mut b);
        println!("test {id} ... ok");
        return;
    }
    // Calibrate the batch size so one sample takes ~10ms, then time
    // `sample_size` samples.
    let mut b = Bencher {
        batch: 1,
        elapsed: Duration::ZERO,
        iters: 0,
        test_mode,
    };
    let cal_start = Instant::now();
    f(&mut b);
    let once = cal_start.elapsed().max(Duration::from_nanos(1));
    let batch = (Duration::from_millis(10).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut b = Bencher {
        batch,
        elapsed: Duration::ZERO,
        iters: 0,
        test_mode,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    let per_iter = if b.iters > 0 {
        b.elapsed.as_nanos() as f64 / b.iters as f64
    } else {
        f64::NAN
    };
    println!(
        "{id:<50} {:>12} /iter ({} iters)",
        format_ns(per_iter),
        b.iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, supporting both the plain
/// `criterion_group!(benches, f1, f2)` form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` entry point for a `harness = false` bench.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
