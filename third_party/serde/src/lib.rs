//! Offline reimplementation of the `serde` API surface AutoDC uses.
//!
//! Instead of upstream's visitor-based zero-copy architecture, this
//! facade serializes through an owned JSON-shaped [`Value`] tree:
//! `Serialize` renders `self` to a `Value`, `Deserialize` rebuilds
//! `Self` from one. `serde_json` is then just a printer/parser for
//! `Value`. The derive macros (re-exported from `serde_derive`)
//! generate externally-tagged representations identical to upstream
//! serde's defaults, and honour `#[serde(skip)]`.

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

pub use serde_derive::{Deserialize, Serialize};

/// JSON-shaped data tree that serialization passes through.
///
/// Object fields keep insertion order (`Vec` of pairs), matching
/// derive-generated field order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (anything that fits in `i64`).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// One-word description for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization error.
#[derive(Clone, Debug)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Compatibility alias module mirroring `serde::de`.
pub mod de {
    /// Upstream's `DeserializeOwned` marker; our `Deserialize` is
    /// already owned, so this is a blanket-implemented alias.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// Look up a derive-generated struct field, in any order, ignoring
/// unknown keys (upstream serde's default behaviour).
pub fn from_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| Error::custom(format!("field `{key}`: {e}"))),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

fn unexpected(expected: &str, got: &Value) -> Error {
    Error::custom(format!("expected {expected}, got {}", got.kind()))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(unexpected("bool", other)),
        }
    }
}

macro_rules! int_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            #[allow(unused_comparisons)]
            fn to_value(&self) -> Value {
                if (*self as i128) <= i64::MAX as i128 && (*self as i128) >= i64::MIN as i128 {
                    Value::I64(*self as i64)
                } else {
                    Value::U64(*self as u64)
                }
            }
        }

        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match v {
                    Value::I64(n) => <$ty>::try_from(*n).ok(),
                    Value::U64(n) => <$ty>::try_from(*n).ok(),
                    other => return Err(unexpected("integer", other)),
                };
                out.ok_or_else(|| {
                    Error::custom(format!(
                        "integer out of range for {}", stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! float_impl {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_value(&self) -> Value {
                // Widening to f64 is exact for f32; non-finite floats
                // serialize as null, as serde_json does.
                let wide = *self as f64;
                if wide.is_finite() {
                    Value::F64(wide)
                } else {
                    Value::Null
                }
            }
        }

        impl Deserialize for $ty {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $ty),
                    Value::I64(n) => Ok(*n as $ty),
                    Value::U64(n) => Ok(*n as $ty),
                    other => Err(unexpected("number", other)),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(unexpected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("single-char string", other)),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(unexpected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = v.as_array().ok_or_else(|| unexpected("array", v))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom("array length mismatch"))
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $( + { let _ = $idx; 1 } )+;
                let items = v.as_array().ok_or_else(|| unexpected("tuple array", v))?;
                if items.len() != LEN {
                    return Err(Error::custom(format!(
                        "expected tuple of {LEN}, got array of {}", items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Render map entries: a JSON object when every key serializes to a
/// string, otherwise an array of `[key, value]` pairs (upstream
/// serde_json rejects non-string keys at runtime; we pick a
/// round-trippable encoding instead).
fn map_to_value<'a>(entries: impl Iterator<Item = (Value, &'a Value)> + Clone) -> Value {
    if entries.clone().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Object(
            entries
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v.clone()),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(
            entries
                .map(|(k, v)| Value::Array(vec![k, v.clone()]))
                .collect(),
        )
    }
}

/// Inverse of [`map_to_value`]: accepts both encodings.
fn map_from_value<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, Error> {
    match v {
        Value::Object(pairs) => pairs
            .iter()
            .map(|(k, v)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(v)?)))
            .collect(),
        Value::Array(items) => items
            .iter()
            .map(|item| {
                let pair = item
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or_else(|| Error::custom("map entry: expected a [key, value] pair"))?;
                Ok((K::from_value(&pair[0])?, V::from_value(&pair[1])?))
            })
            .collect(),
        other => Err(unexpected("map (object or pair array)", other)),
    }
}

impl<K: Serialize + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let rendered: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        map_to_value(rendered.iter().map(|(k, v)| (k.clone(), v)))
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let rendered: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        map_to_value(rendered.iter().map(|(k, v)| (k.clone(), v)))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        map_from_value(v).map(|pairs| pairs.into_iter().collect())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
