//! Offline mini property-testing harness exposing the subset of the
//! `proptest` API AutoDC uses: the `proptest!` macro, `prop_assert*`
//! macros, regex-subset string strategies, integer-range strategies,
//! tuple strategies, and `collection::vec`.
//!
//! Cases are generated deterministically: each test derives its RNG
//! seed from the test name, so failures reproduce exactly. There is
//! no shrinking — the failing inputs are printed instead.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;
mod regex;

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy, TestCaseError};
}

/// Number of cases each property runs.
pub const CASES: u64 = 64;

/// A failed property case; bubbles out of the closure wrapped around
/// each `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic per-test, per-case RNG.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the test name, mixed with the case number.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Value generator. Unlike upstream's `ValueTree` machinery, this
/// samples concrete values directly.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// String literals act as regex-subset strategies, like upstream.
impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        regex::Pattern::parse(self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i32, i64, u32, u64, usize, isize, f32, f64);

macro_rules! small_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(self.start as i32..self.end as i32) as $ty
            }
        }

        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut StdRng) -> $ty {
                rng.gen_range(*self.start() as i32..=*self.end() as i32) as $ty
            }
        }
    )*};
}

small_range_strategy!(u8, u16, i8, i16);

/// `Just`-style constant strategy, handy for composed suites.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Run each property body over [`CASES`] deterministic cases; print
/// the generated inputs on failure (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property `{}` failed on case {case}: {e}\ninputs: {:?}",
                            stringify!($name),
                            ($(&$arg,)*)
                        );
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn regex_class_respects_bounds(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5, "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn vec_of_tuples_respects_ranges(xs in collection::vec((0u8..4, 0u8..3), 2..30)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 30);
            for (a, b) in &xs {
                prop_assert!(*a < 4 && *b < 3);
            }
        }

        #[test]
        fn dot_generates_no_newlines(s in ".{0,40}") {
            prop_assert!(s.chars().count() <= 40);
            prop_assert!(!s.contains('\n'));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        let a: Vec<String> = (0..5)
            .map(|c| "[a-z]{3}".generate(&mut crate::case_rng("t", c)))
            .collect();
        let b: Vec<String> = (0..5)
            .map(|c| "[a-z]{3}".generate(&mut crate::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}
