//! Collection strategies (`proptest::collection::vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Length specification: an exact `usize` or a `Range<usize>`.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut StdRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl SizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl SizeRange for core::ops::RangeInclusive<usize> {
    fn sample_len(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec` strategy over an element strategy and a size spec.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}
