//! Regex-subset string generator covering the patterns AutoDC's
//! property tests use: character classes with ranges (`[a-zA-Z0-9 ,"]`),
//! the `.` wildcard (anything but `\n`, as in regex), literal
//! characters, and `{n}` / `{m,n}` repetition counts.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

enum Element {
    /// Explicit set of candidate characters (classes and literals).
    Set(Vec<char>),
    /// `.`: any character except newline.
    Any,
}

pub struct Pattern {
    parts: Vec<(Element, usize, usize)>,
}

/// Sample pool for `.`: printable ASCII plus a few multi-byte
/// characters so unicode handling gets exercised.
const ANY_EXTRAS: &[char] = &['\u{e9}', '\u{4e2d}', '\u{3b1}', '\u{1f600}', '\u{df}'];

impl Pattern {
    pub fn parse(pattern: &str) -> Pattern {
        let chars: Vec<char> = pattern.chars().collect();
        let mut parts = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let element = match chars[i] {
                '[' => {
                    let (set, next) = parse_class(&chars, i + 1);
                    i = next;
                    Element::Set(set)
                }
                '.' => {
                    i += 1;
                    Element::Any
                }
                '\\' => {
                    // Escaped literal (e.g. `\.`, `\\`).
                    let c = *chars.get(i + 1).unwrap_or_else(|| {
                        panic!("proptest regex: trailing backslash in {pattern:?}")
                    });
                    i += 2;
                    Element::Set(vec![unescape(c)])
                }
                c => {
                    i += 1;
                    Element::Set(vec![c])
                }
            };
            let (lo, hi, next) = parse_repeat(&chars, i, pattern);
            i = next;
            parts.push((element, lo, hi));
        }
        Pattern { parts }
    }

    pub fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for (element, lo, hi) in &self.parts {
            let n = rng.gen_range(*lo..=*hi);
            for _ in 0..n {
                match element {
                    Element::Set(set) => out.push(*set.choose(rng).expect("nonempty class")),
                    Element::Any => {
                        // Mostly printable ASCII, occasionally unicode.
                        if rng.gen_range(0..8usize) == 0 {
                            out.push(*ANY_EXTRAS.choose(rng).unwrap());
                        } else {
                            out.push(rng.gen_range(0x20u32..0x7f).try_into().unwrap());
                        }
                    }
                }
            }
        }
        out
    }
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        'r' => '\r',
        't' => '\t',
        other => other,
    }
}

/// Parse a `[...]` class body starting just past the `[`; returns the
/// candidate set and the index just past the `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            unescape(chars[i])
        } else {
            chars[i]
        };
        // Range `a-z` unless the `-` is the final class character.
        if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).map(|&c| c != ']') == Some(true) {
            let hi = chars[i + 2];
            for code in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(
        i < chars.len(),
        "proptest regex: unterminated character class"
    );
    (set, i + 1)
}

/// Parse an optional `{n}` / `{m,n}` suffix at `i`; returns
/// `(min, max, next_index)`.
fn parse_repeat(chars: &[char], i: usize, pattern: &str) -> (usize, usize, usize) {
    if chars.get(i) != Some(&'{') {
        return (1, 1, i);
    }
    let close = chars[i..]
        .iter()
        .position(|&c| c == '}')
        .unwrap_or_else(|| panic!("proptest regex: unterminated repetition in {pattern:?}"))
        + i;
    let body: String = chars[i + 1..close].iter().collect();
    let (lo, hi) = match body.split_once(',') {
        Some((lo, hi)) => (
            lo.trim().parse().expect("repetition min"),
            hi.trim().parse().expect("repetition max"),
        ),
        None => {
            let n = body.trim().parse().expect("repetition count");
            (n, n)
        }
    };
    (lo, hi, close + 1)
}
