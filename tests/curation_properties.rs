//! Property-based integration tests over core curation invariants,
//! spanning relational, clean, er and synth.

use autodc::prelude::*;
use autodc::relational::tokenize::{edit_distance, jaccard, normalize, tokenize};
use proptest::prelude::*;

proptest! {
    /// CSV round-trips for arbitrary text tables (quoting, commas,
    /// newlines, unicode).
    #[test]
    fn csv_round_trip(cells in proptest::collection::vec(
        proptest::collection::vec("[a-zA-Z0-9 ,\"\n\u{e9}\u{4e2d}]{0,12}", 3),
        1..8,
    )) {
        let schema = Schema::new(&[
            ("a", AttrType::Text),
            ("b", AttrType::Text),
            ("c", AttrType::Text),
        ]);
        let mut t = Table::new("p", schema);
        for row in &cells {
            t.push(row.iter().map(|s| {
                // parse() trims and may coerce types; bracket with
                // letters so the round trip is value-exact.
                Value::text(format!("x{s}x"))
            }).collect());
        }
        let back = Table::from_csv("p", &t.to_csv()).expect("parse");
        prop_assert_eq!(back.rows, t.rows);
    }

    /// Normalisation is idempotent.
    #[test]
    fn normalize_idempotent(s in ".{0,40}") {
        let once = normalize(&s);
        prop_assert_eq!(normalize(&once), once);
    }

    /// Edit distance is a metric (symmetry + identity + triangle over
    /// small samples).
    #[test]
    fn edit_distance_metric(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        prop_assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        prop_assert_eq!(edit_distance(&a, &a), 0);
        prop_assert!(
            edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c)
        );
    }

    /// Jaccard is bounded and symmetric.
    #[test]
    fn jaccard_bounded(a in "[a-d ]{0,20}", b in "[a-d ]{0,20}") {
        let ta = tokenize(&a);
        let tb = tokenize(&b);
        let j = jaccard(&ta, &tb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&tb, &ta));
    }

    /// FD repair always reaches tables where the repaired FD holds, and
    /// never touches columns other than the FD's RHS.
    #[test]
    fn fd_repair_converges(values in proptest::collection::vec((0u8..4, 0u8..3), 2..30)) {
        let schema = Schema::new(&[("k", AttrType::Int), ("v", AttrType::Int)]);
        let mut t = Table::new("r", schema);
        for (k, v) in &values {
            t.push(vec![Value::Int(*k as i64), Value::Int(*v as i64)]);
        }
        let before = t.clone();
        let fd = FunctionalDependency::new(vec![0], 1);
        autodc::clean::repair::repair_fds(&mut t, std::slice::from_ref(&fd), 10);
        prop_assert!(fd.holds(&t));
        for (orig, fixed) in before.rows.iter().zip(&t.rows) {
            prop_assert_eq!(&orig[0], &fixed[0], "repair must not edit the LHS");
        }
    }

    /// Synthesised programs are consistent with their examples by
    /// construction.
    #[test]
    fn synthesis_consistency(first in "[a-z]{1,6}", last in "[a-z]{1,6}") {
        let examples = vec![
            (format!("{first} {last}"), last.to_string()),
            ("alpha beta".to_string(), "beta".to_string()),
        ];
        let result = synthesize(&examples, &SynthConfig::default());
        if let Some(p) = result.program {
            for (input, output) in &examples {
                let got = p.run(input);
                prop_assert_eq!(got.as_deref(), Some(output.as_str()));
            }
        }
    }

    /// The quality score is monotone in nulls: adding a null can never
    /// raise the score.
    #[test]
    fn quality_monotone_in_nulls(n in 1usize..12, kill in 0usize..12) {
        let schema = Schema::new(&[("a", AttrType::Int), ("b", AttrType::Int)]);
        let mut t = Table::new("q", schema);
        for i in 0..n {
            t.push(vec![Value::Int(i as i64), Value::Int((i * 7) as i64)]);
        }
        let before = quality_score(&t, &[]).score();
        if kill < n {
            t.rows[kill][1] = Value::Null;
        }
        let after = quality_score(&t, &[]).score();
        prop_assert!(after <= before + 1e-9);
    }
}
