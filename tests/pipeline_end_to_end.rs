//! Cross-crate integration: the full Figure-1 pipeline over a generated
//! lake, exercising datagen → discovery → embed → er → synth → clean in
//! one pass, with exact-seed determinism.

use autodc::pipeline::{Pipeline, PipelineConfig};
use autodc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dirty_lake(seed: u64) -> Vec<Table> {
    let mut rng = StdRng::seed_from_u64(seed);
    let clean = autodc::datagen::people_table(70, &mut rng);
    let fds = autodc::datagen::people_fds();
    let inj = ErrorInjector {
        typo_rate: 0.01,
        null_rate: 0.05,
        swap_rate: 0.0,
        fd_violation_rate: 0.02,
        abbreviation_rate: 0.01,
    };
    let (mut a, _) = inj.inject(&clean, &fds, &mut rng);
    a.name = "people_a".into();
    let (mut b, _) = inj.inject(&clean, &fds, &mut rng);
    b.name = "people_b".into();
    let decoy = autodc::datagen::products_table(40, &mut rng);
    vec![a, decoy, b]
}

fn config() -> PipelineConfig {
    PipelineConfig {
        query: "people name city country".into(),
        top_k_tables: 3,
        ..Default::default()
    }
}

#[test]
fn pipeline_discovers_integrates_and_cleans() {
    let tables = dirty_lake(77);
    let mut rng = StdRng::seed_from_u64(78);
    let (curated, report) = Pipeline::new(config()).run(&tables, &mut rng);

    assert_eq!(report.discovered.len(), 2, "{:?}", report.discovered);
    assert!(report.discovered.iter().all(|n| n.starts_with("people")));
    assert!(curated.len() < report.rows_in, "no deduplication happened");
    assert!(curated.len() >= 70, "over-merged below the entity count");
    assert!(report.after.score() >= report.before.score());
}

#[test]
fn pipeline_is_deterministic_given_seeds() {
    let tables = dirty_lake(91);
    let run = || {
        let mut rng = StdRng::seed_from_u64(92);
        Pipeline::new(config()).run(&tables, &mut rng)
    };
    let (t1, r1) = run();
    let (t2, r2) = run();
    assert_eq!(t1.rows, t2.rows);
    assert_eq!(r1.rows_in, r2.rows_in);
    assert_eq!(r1.clusters_merged, r2.clusters_merged);
    assert_eq!(r1.repairs, r2.repairs);
}

#[test]
fn pipeline_on_clean_single_table_is_nearly_identity() {
    let mut rng = StdRng::seed_from_u64(93);
    let clean = autodc::datagen::people_table(50, &mut rng);
    let (curated, report) = Pipeline::new(PipelineConfig {
        query: "people".into(),
        top_k_tables: 1,
        ..Default::default()
    })
    .run(std::slice::from_ref(&clean), &mut rng);
    // Nothing to merge, repair or impute on clean unique data.
    assert_eq!(report.repairs, 0);
    assert_eq!(report.cells_imputed, 0);
    assert_eq!(curated.len(), clean.len());
    assert_eq!(report.after.score(), 1.0);
}
