//! Cross-crate integration: the DeepER workflow of Figure 5 — embed,
//! block, match, evaluate — spanning datagen, embed, nn and er.

use autodc::er::blocking::blocking_quality;
use autodc::er::eval::best_threshold;
use autodc::er::features::tuple_vectors;
use autodc::prelude::*;
use autodc::relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn embeddings(bench: &ErBenchmark, rng: &mut StdRng) -> Embeddings {
    let mut docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    docs.extend(autodc::datagen::corpus::domain_corpus(300, rng));
    Embeddings::train(
        &docs,
        &SgnsConfig {
            dim: 16,
            epochs: 5,
            ..Default::default()
        },
        rng,
    )
}

#[test]
fn block_then_match_recovers_duplicates() {
    let mut rng = StdRng::seed_from_u64(500);
    let bench = ErBenchmark::generate(ErSuite::Clean, 60, 3, &mut rng);
    let emb = embeddings(&bench, &mut rng);

    // Blocking: the candidate set must be much smaller than n² while
    // keeping most true pairs.
    let vectors = tuple_vectors(&emb, &bench.table);
    let blocker = LshBlocker::new(emb.dim(), 8, 4, &mut rng);
    let candidates = blocker.candidates(&vectors);
    let q = blocking_quality(&candidates, &bench.duplicate_pairs(), bench.table.len());
    assert!(q.reduction_ratio > 0.3, "{q:?}");
    assert!(q.pair_completeness > 0.6, "{q:?}");

    // Matching: train on labelled pairs, score the *candidates*.
    let pairs = bench.labeled_pairs(3, &mut rng);
    let (train, _) = ErBenchmark::split_pairs(&pairs, 0.8, &mut rng);
    let tp: Vec<(usize, usize)> = train.iter().map(|p| (p.a, p.b)).collect();
    let tl: Vec<bool> = train.iter().map(|p| p.label).collect();
    let model = DeepEr::train(
        emb,
        &bench.table,
        &tp,
        &tl,
        Composition::Average,
        DeepErConfig::default(),
        &mut rng,
    );
    let cand_list: Vec<(usize, usize)> = candidates.into_iter().collect();
    let scores = model.predict(&bench.table, &cand_list);
    let gold: Vec<bool> = cand_list
        .iter()
        .map(|&(a, b)| bench.entity[a] == bench.entity[b])
        .collect();
    let eval = best_threshold(&scores, &gold);
    // The candidate set is far more imbalanced than the training pairs
    // (every non-duplicate collision counts), so the bar is lower than
    // the E3 in-distribution F1.
    assert!(
        eval.f1 > 0.6,
        "end-to-end block+match F1 {} at threshold {}",
        eval.f1,
        eval.threshold
    );
}

#[test]
fn golden_records_from_matched_clusters() {
    // ER output feeds entity consolidation (§4's golden-record problem).
    let mut rng = StdRng::seed_from_u64(501);
    let bench = ErBenchmark::generate(ErSuite::Dirty, 25, 3, &mut rng);
    let model_pref = autodc::synth::PreferenceModel::default();

    // Group rows by ground-truth entity and consolidate each cluster.
    let max_entity = *bench.entity.iter().max().expect("nonempty");
    let mut consolidated = 0;
    for e in 0..=max_entity {
        let rows: Vec<&[Value]> = bench
            .entity
            .iter()
            .enumerate()
            .filter(|(_, &ent)| ent == e)
            .map(|(i, _)| bench.table.rows[i].as_slice())
            .collect();
        if rows.len() < 2 {
            continue;
        }
        let golden = autodc::synth::consolidate_cluster(&rows, &model_pref);
        assert_eq!(golden.len(), bench.table.schema.arity());
        // The golden record must prefer non-null values when any exist.
        for (c, v) in golden.iter().enumerate() {
            if rows.iter().any(|r| !r[c].is_null()) {
                assert!(!v.is_null(), "column {c} null despite candidates");
            }
        }
        consolidated += 1;
    }
    assert!(consolidated > 5, "too few multi-record entities");
}
