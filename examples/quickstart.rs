//! Quickstart: the Figure-1 pipeline end-to-end on a dirty lake.
//!
//! Builds a small enterprise lake (two dirty shards of the same people
//! table plus an unrelated products table), then runs
//! discover → integrate → clean and prints the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use autodc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // --- a dirty lake -------------------------------------------------
    let clean = autodc::datagen::people_table(120, &mut rng);
    let fds = autodc::datagen::people_fds();
    let injector = ErrorInjector::default();
    let (mut shard_a, report_a) = injector.inject(&clean, &fds, &mut rng);
    shard_a.name = "people_hr".into();
    let (mut shard_b, report_b) = injector.inject(&clean, &fds, &mut rng);
    shard_b.name = "people_sales".into();
    let products = autodc::datagen::products_table(60, &mut rng);

    println!("Lake: 3 tables");
    println!(
        "  people_hr    — {} rows, {} injected errors",
        shard_a.len(),
        report_a.len()
    );
    println!(
        "  people_sales — {} rows, {} injected errors",
        shard_b.len(),
        report_b.len()
    );
    println!("  products     — {} rows (decoy)", products.len());

    // --- the pipeline ---------------------------------------------------
    let pipeline = Pipeline::new(autodc::pipeline::PipelineConfig {
        query: "people name city country".into(),
        top_k_tables: 3,
        ..Default::default()
    });
    let (curated, report) = pipeline.run(&[shard_a, products, shard_b], &mut rng);

    println!("\nPipeline report");
    println!("  discovered tables : {:?}", report.discovered);
    println!("  rows integrated   : {}", report.rows_in);
    println!("  blocking survivors: {}", report.candidates);
    println!("  clusters merged   : {}", report.clusters_merged);
    println!("  FD repairs        : {}", report.repairs);
    println!("  cells imputed     : {}", report.cells_imputed);
    println!(
        "  quality           : {:.3} -> {:.3}",
        report.before.score(),
        report.after.score()
    );
    println!("\nCurated table: {} rows", curated.len());
    println!("{curated}");
}
