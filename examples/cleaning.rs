//! Data cleaning (§5.3): DAE imputation vs the classical baselines,
//! FD repair, and canonical-form transformation.
//!
//! ```sh
//! cargo run --release --example cleaning
//! ```

use autodc::clean::impute::score_imputation;
use autodc::clean::{
    CanonicalForm, Canonicalizer, DaeImputer, KnnImputer, SimpleImputer, SimpleStrategy,
    TableEncoder,
};
use autodc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(23);
    let clean = autodc::datagen::people_table(400, &mut rng);
    let fds = autodc::datagen::people_fds();

    // --- imputation shootout (E8 in miniature) ---------------------------
    let (dirty, report) =
        ErrorInjector::only(autodc::datagen::ErrorKind::Null, 0.08).inject(&clean, &[], &mut rng);
    println!(
        "table: {} rows, {} cells nulled ({:.1}% of cells)",
        dirty.len(),
        report.len(),
        dirty.null_rate() * 100.0
    );

    let encoder = TableEncoder::fit(&dirty, 64);

    let mode = SimpleImputer::fit(&dirty, SimpleStrategy::MeanMode).impute(&dirty);
    let knn = KnnImputer { k: 5 }.impute(&dirty, &encoder);
    let dae = DaeImputer::train(&dirty, encoder, &[48], 24, 60, &mut rng).impute(&dirty);

    println!("\nimputer    numeric RMSE   categorical accuracy");
    for (name, imputed) in [("mean/mode", &mode), ("kNN(5)", &knn), ("DAE", &dae)] {
        let s = score_imputation(&clean, &dirty, imputed);
        println!(
            "{name:<10} {:>8.2}        {:.3}  ({} num, {} cat cells)",
            s.numeric_rmse, s.categorical_accuracy, s.numeric_cells, s.categorical_cells
        );
    }

    // --- FD repair ----------------------------------------------------------
    let (mut violated, vreport) =
        ErrorInjector::only(autodc::datagen::ErrorKind::FdViolation, 0.04)
            .inject(&clean, &fds, &mut rng);
    let broken = fds.iter().filter(|fd| !fd.holds(&violated)).count();
    let repairs = autodc::clean::repair::repair_fds(&mut violated, &fds, 10);
    let restored = vreport
        .errors
        .iter()
        .filter(|e| violated.rows[e.row][e.col] == e.original)
        .count();
    println!(
        "\nFD repair: {} FDs broken by {} injected violations; {} repairs applied, \
         {}/{} original values restored",
        broken,
        vreport.len(),
        repairs.len(),
        restored,
        vreport.len()
    );

    // --- canonical forms -------------------------------------------------------
    let canon = Canonicalizer::new(CanonicalForm::FirstInitialLastName);
    let name_col = clean.schema.index_of("name").expect("name column");
    let (standardised, rewritten) = canon.apply_column(&clean, name_col);
    println!(
        "\ncanonicalisation: {} of {} names rewritten to 'F. Last' \
         (e.g. {} → {})",
        rewritten,
        clean.len(),
        clean.cell(0, name_col),
        standardised.cell(0, name_col),
    );
}
