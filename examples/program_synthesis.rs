//! Neural program synthesis for data transformation (§4): FlashFill-
//! style synthesis from input-output examples, neural guidance, the
//! semantic country→capital transformation, and golden-record
//! consolidation.
//!
//! ```sh
//! cargo run --release --example program_synthesis
//! ```

use autodc::prelude::*;
use autodc::synth::{consolidate_cluster, GuidanceModel, PreferenceModel, SemanticTransformer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);

    // --- FlashFill-style synthesis (the paper's §4 example) --------------
    let examples = vec![
        ("John Smith".to_string(), "J Smith".to_string()),
        ("Jane Doe".to_string(), "J Doe".to_string()),
    ];
    let config = SynthConfig::default();
    let result = synthesize(&examples, &config);
    let program = result.program.expect("synthesis succeeds");
    println!("examples: (John Smith → J Smith), (Jane Doe → J Doe)");
    println!("program : {program}");
    println!(
        "applied : Alan Turing → {}",
        program.run("Alan Turing").expect("applies")
    );
    println!("explored: {} candidates\n", result.explored);

    // --- neural guidance ----------------------------------------------------
    let model = GuidanceModel::train(400, 150, &mut rng);
    let phone = vec![
        ("(212) 555 0199".to_string(), "212-555-0199".to_string()),
        ("(617) 555 1234".to_string(), "617-555-1234".to_string()),
    ];
    let plain = synthesize(&phone, &config);
    let guided = model.synthesize_guided(&phone, &config);
    println!("phone normalisation task:");
    println!("  plain enumeration : {} candidates", plain.explored);
    println!("  neural-guided     : {} candidates", guided.explored);
    println!(
        "  program generalises: (415) 555 9876 → {}\n",
        guided
            .program
            .expect("found")
            .run("(415) 555 9876")
            .expect("applies")
    );

    // --- semantic transformation (France → Paris) -----------------------------
    let corpus = autodc::datagen::corpus::domain_corpus(3000, &mut rng);
    let emb = Embeddings::train(
        &corpus,
        &SgnsConfig {
            dim: 24,
            window: 4,
            epochs: 10,
            ..Default::default()
        },
        &mut rng,
    );
    let transformer = SemanticTransformer::learn(
        &emb,
        &[
            ("france".into(), "paris".into()),
            ("germany".into(), "berlin".into()),
        ],
    )
    .expect("examples in vocabulary");
    println!("semantic transformation learned from (france→paris), (germany→berlin):");
    for country in ["italy", "spain", "japan"] {
        println!("  {country} → {:?}", transformer.apply_ranked(country, 3));
    }

    // --- golden records ----------------------------------------------------------
    let cluster_rows: Vec<Vec<Value>> = vec![
        vec![
            Value::text("John Smith"),
            Value::Null,
            Value::text("212-555-0199"),
        ],
        vec![
            Value::text("J Smith"),
            Value::text("NYC"),
            Value::text("2125550199"),
        ],
        vec![Value::text("John Smith"), Value::text("NYC"), Value::Null],
    ];
    let refs: Vec<&[Value]> = cluster_rows.iter().map(|r| r.as_slice()).collect();
    let golden = consolidate_cluster(&refs, &PreferenceModel::default());
    println!("\ngolden record from 3 conflicting duplicates: {golden:?}");
}
