//! DeepER in action (§5.2, Figure 5): train the deep matcher on a dirty
//! synthetic benchmark, compare it with the feature-engineered and
//! rule baselines, and show LSH blocking statistics.
//!
//! ```sh
//! cargo run --release --example entity_resolution
//! ```

use autodc::er::baselines::{FeatureLogReg, RuleMatcher};
use autodc::er::blocking::{blocking_quality, TokenBlocker};
use autodc::er::features::tuple_vectors;
use autodc::prelude::*;
use autodc::relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A dirty benchmark: 120 entities, up to 3 noisy duplicates each.
    let bench = ErBenchmark::generate(ErSuite::Dirty, 120, 3, &mut rng);
    println!(
        "benchmark: {} records, {} duplicate pairs",
        bench.table.len(),
        bench.duplicate_pairs().len()
    );

    // Word embeddings from the records plus a domain corpus — the
    // pre-trained-vectors substitution (DESIGN.md §5).
    let mut docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    docs.extend(autodc::datagen::corpus::domain_corpus(500, &mut rng));
    let emb = Embeddings::train(
        &docs,
        &SgnsConfig {
            dim: 24,
            epochs: 6,
            ..Default::default()
        },
        &mut rng,
    );

    // Labelled pairs, 3 negatives per positive (§6.1 skew handling).
    let pairs = bench.labeled_pairs(3, &mut rng);
    let (train, test) = ErBenchmark::split_pairs(&pairs, 0.7, &mut rng);
    let tp: Vec<(usize, usize)> = train.iter().map(|p| (p.a, p.b)).collect();
    let tl: Vec<bool> = train.iter().map(|p| p.label).collect();
    let ep: Vec<(usize, usize)> = test.iter().map(|p| (p.a, p.b)).collect();
    let el: Vec<bool> = test.iter().map(|p| p.label).collect();

    // --- DeepER (average composition) -----------------------------------
    let deeper = DeepEr::train(
        emb.clone(),
        &bench.table,
        &tp,
        &tl,
        Composition::Average,
        DeepErConfig::default(),
        &mut rng,
    );
    let scores = deeper.predict(&bench.table, &ep);
    let eval = autodc::er::eval::evaluate_at(&scores, &el, 0.5);
    println!(
        "\nDeepER (avg)   P={:.3} R={:.3} F1={:.3}",
        eval.precision, eval.recall, eval.f1
    );

    // --- feature-engineered logistic regression --------------------------
    let logreg = FeatureLogReg::train(&bench.table, &tp, &tl, 60, &mut rng);
    let scores = logreg.predict(&bench.table, &ep);
    let eval = autodc::er::eval::evaluate_at(&scores, &el, 0.5);
    println!(
        "Feature LogReg P={:.3} R={:.3} F1={:.3}",
        eval.precision, eval.recall, eval.f1
    );

    // --- threshold rule ---------------------------------------------------
    let rule = RuleMatcher::new(0.7);
    let scores = rule.scores(&bench.table, &ep);
    let eval = autodc::er::eval::evaluate_at(&scores, &el, 0.7);
    println!(
        "Rule @0.7      P={:.3} R={:.3} F1={:.3}",
        eval.precision, eval.recall, eval.f1
    );

    // --- blocking ----------------------------------------------------------
    let vectors = tuple_vectors(&emb, &bench.table);
    let lsh = LshBlocker::new(emb.dim(), 8, 4, &mut rng);
    let lsh_q = blocking_quality(
        &lsh.candidates(&vectors),
        &bench.duplicate_pairs(),
        bench.table.len(),
    );
    let tok_q = blocking_quality(
        &TokenBlocker { column: 0 }.candidates(&bench.table),
        &bench.duplicate_pairs(),
        bench.table.len(),
    );
    println!("\nblocking              reduction  completeness  candidates");
    println!(
        "LSH over embeddings    {:.3}      {:.3}         {}",
        lsh_q.reduction_ratio, lsh_q.pair_completeness, lsh_q.candidates
    );
    println!(
        "token blocking (name)  {:.3}      {:.3}         {}",
        tok_q.reduction_ratio, tok_q.pair_completeness, tok_q.candidates
    );
}
