//! Data discovery (§5.1): semantic link surfacing and Google-style
//! table search over a synthetic enterprise lake with planted ground
//! truth.
//!
//! ```sh
//! cargo run --release --example data_discovery
//! ```

use autodc::discovery::{search_documents, SemanticMatcher, SyntacticMatcher};
use autodc::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(11);
    let lake = Lake::generate(12, 40, &mut rng);
    let refs: Vec<&Table> = lake.tables.iter().collect();
    println!(
        "lake: {} tables, {} planted semantic links, {} spurious candidates",
        lake.tables.len(),
        lake.semantic_links().len(),
        lake.spurious_links().len()
    );

    // --- semantic vs syntactic matching ---------------------------------
    let matcher = SemanticMatcher::train(
        &refs,
        &SgnsConfig {
            dim: 24,
            window: 8,
            epochs: 6,
            ..Default::default()
        },
        &mut rng,
    );
    let syntactic = SyntacticMatcher { threshold: 0.3 };

    let mut surfaced = 0;
    let mut renamed_total = 0;
    for l in lake.semantic_links() {
        let (ta, tb) = (&lake.tables[l.a.0], &lake.tables[l.b.0]);
        let (na, nb) = (&ta.schema.attrs[l.a.1].name, &tb.schema.attrs[l.b.1].name);
        if na == nb {
            continue; // trivially found by name equality
        }
        renamed_total += 1;
        if matcher.decide(ta, l.a.1, tb, l.b.1).linked {
            surfaced += 1;
        }
    }
    println!(
        "\nsemantic matcher surfaced {surfaced}/{renamed_total} renamed links \
         (the §5.1 'isoform ↔ Protein' case)"
    );

    let mut rejected = 0;
    let mut accepted_by_syntactic = 0;
    let spurious = lake.spurious_links();
    for l in &spurious {
        let (ta, tb) = (&lake.tables[l.a.0], &lake.tables[l.b.0]);
        let (na, nb) = (&ta.schema.attrs[l.a.1].name, &tb.schema.attrs[l.b.1].name);
        if syntactic.decide(na, nb).linked {
            accepted_by_syntactic += 1;
        }
        if !matcher.decide(ta, l.a.1, tb, l.b.1).linked {
            rejected += 1;
        }
    }
    println!(
        "spurious candidates: syntactic matcher accepts {accepted_by_syntactic}/{}, \
         semantic matcher rejects {rejected}/{}",
        spurious.len(),
        spurious.len()
    );

    // --- search -----------------------------------------------------------
    let emb = Embeddings::train(
        &search_documents(&refs, 15),
        &SgnsConfig {
            dim: 24,
            window: 8,
            epochs: 6,
            ..Default::default()
        },
        &mut rng,
    );
    let search = NeuralSearch::index(emb, &refs, 15);
    println!("\ntable search:");
    for (query, relevant) in lake.search_queries().iter().take(4) {
        let top: Vec<usize> = search
            .search(query)
            .into_iter()
            .take(3)
            .map(|(i, _)| i)
            .collect();
        let hits = top.iter().filter(|i| relevant.contains(i)).count();
        println!(
            "  '{query}' → top-3 {top:?} ({hits} relevant of {})",
            relevant.len()
        );
    }
}
