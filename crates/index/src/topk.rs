//! Exact top-k selection under a total score order.
//!
//! The seed retrieval paths all follow the same shape: score every
//! item, `collect` into a `Vec`, full `sort_by(partial_cmp.expect(..))`
//! — an `O(n log n)` sort for a k-item answer and a panic the moment a
//! NaN score appears (zero vectors make `cosine` return NaN). [`TopK`]
//! replaces that with a bounded binary heap (`O(n log k)`) under a
//! *total* order: higher score is better (or lower, for
//! [`Order::Smallest`]), NaN sinks below every real score, and ties
//! break toward the smaller index — exactly the order a stable
//! descending sort over `(score, index)` would produce, so seed tie
//! semantics are preserved.
//!
//! [`topk_scores`] runs the scan in fixed-grain chunks over the shared
//! worker pool and merges the per-chunk winners in chunk order. Because
//! the order is total, the top-k set *and* its order are unique —
//! identical for every `DC_THREADS` setting and every chunking.

use dc_tensor::kernel;
use dc_tensor::Tensor;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One retrieval result: item index and its score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// Index of the item in the scanned collection.
    pub index: usize,
    /// The item's score, as produced by the scoring function.
    pub score: f32,
}

/// Whether larger or smaller scores win.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Keep the k largest scores (similarities).
    Largest,
    /// Keep the k smallest scores (distances).
    Smallest,
}

/// Map a score to a `u64` "goodness": strictly monotone in the winning
/// direction, with every NaN mapped to 0 (worse than any real score).
/// The f32→u32 step is the standard sign-flip trick (negative floats
/// reverse order when viewed as raw bits).
#[inline]
fn goodness(order: Order, score: f32) -> u64 {
    if score.is_nan() {
        return 0;
    }
    let bits = score.to_bits();
    let monotone = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    } as u64;
    match order {
        Order::Largest => monotone + 1,
        Order::Smallest => (1u64 << 32) - monotone,
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    good: u64,
    index: usize,
    score: f32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.good == other.good && self.index == other.index
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    /// Greater = better: higher goodness, ties toward the lower index.
    fn cmp(&self, other: &Self) -> Ordering {
        self.good
            .cmp(&other.good)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Bounded selector for the k best `(index, score)` pairs seen so far.
pub struct TopK {
    k: usize,
    order: Order,
    /// Min-heap on `Entry`'s "better" order: the root is the current
    /// worst survivor, evicted when a better entry arrives.
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopK {
    /// Selector keeping the `k` best under `order`.
    pub fn new(k: usize, order: Order) -> Self {
        TopK {
            k,
            order,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
        }
    }

    /// Keep the `k` largest scores.
    pub fn largest(k: usize) -> Self {
        Self::new(k, Order::Largest)
    }

    /// Keep the `k` smallest scores.
    pub fn smallest(k: usize) -> Self {
        Self::new(k, Order::Smallest)
    }

    /// Offer one scored item.
    #[inline]
    pub fn push(&mut self, index: usize, score: f32) {
        if self.k == 0 {
            return;
        }
        let entry = Entry {
            good: goodness(self.order, score),
            index,
            score,
        };
        if self.heap.len() < self.k {
            self.heap.push(Reverse(entry));
        } else if entry > self.heap.peek().expect("non-empty at capacity").0 {
            self.heap.pop();
            self.heap.push(Reverse(entry));
        }
    }

    /// Number of survivors held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The survivors, best first.
    pub fn into_sorted(self) -> Vec<Hit> {
        let mut entries: Vec<Entry> = self.heap.into_iter().map(|r| r.0).collect();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        entries
            .into_iter()
            .map(|e| Hit {
                index: e.index,
                score: e.score,
            })
            .collect()
    }
}

/// Items scanned per chunk of the parallel top-k scan. Chunk boundaries
/// are a pure function of `n`, so the merge order — and therefore the
/// result — never depends on the thread count.
const SCAN_GRAIN: usize = 1024;

/// Select the k best of `score(0..n)`, best first. Scans in
/// [`SCAN_GRAIN`]-sized chunks over the shared worker pool when it has
/// threads to offer; the per-chunk winners are merged in chunk order.
/// The total order makes the answer unique, so serial and parallel
/// scans agree bit-for-bit.
pub fn topk_scores(
    n: usize,
    k: usize,
    order: Order,
    score: impl Fn(usize) -> f32 + Sync,
) -> Vec<Hit> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let chunks = n.div_ceil(SCAN_GRAIN);
    if chunks <= 1 || kernel::pool().threads() <= 1 {
        let mut top = TopK::new(k, order);
        for i in 0..n {
            top.push(i, score(i));
        }
        return top.into_sorted();
    }
    let mut partials: Vec<Vec<Hit>> = Vec::with_capacity(chunks);
    partials.resize_with(chunks, Vec::new);
    kernel::parallel_fill(&mut partials, |c| {
        let lo = c * SCAN_GRAIN;
        let hi = ((c + 1) * SCAN_GRAIN).min(n);
        let mut top = TopK::new(k, order);
        for i in lo..hi {
            top.push(i, score(i));
        }
        top.into_sorted()
    });
    let mut merged = TopK::new(k, order);
    for hit in partials.iter().flatten() {
        merged.push(hit.index, hit.score);
    }
    merged.into_sorted()
}

/// Comparator for descending score sorts with NaN sinking last —
/// drop-in replacement for the seed's
/// `b.partial_cmp(a).expect("finite scores")` panic sites.
pub fn desc_nan_last(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.partial_cmp(&a).expect("both finite"),
    }
}

/// Exact cosine top-k over a fixed item matrix: rows are normalized
/// once at build, so each query is a single blocked mat-vec product
/// (one multiply per element instead of the three the naive
/// `cosine`-per-item scan pays) followed by a [`topk_scores`] scan.
///
/// Rows (or queries) with non-finite entries or squared norm ≤
/// `f32::EPSILON` score 0 against everything, matching
/// `dc_tensor::tensor::cosine`'s zero-vector convention.
pub struct CosineIndex {
    rows: Tensor,
}

impl CosineIndex {
    /// Normalize `items` (one row per item) into an index.
    pub fn build(items: &Tensor) -> Self {
        let mut rows = items.clone();
        for i in 0..rows.rows {
            let start = i * rows.cols;
            let row = &mut rows.data[start..start + rows.cols];
            normalize(row);
        }
        CosineIndex { rows }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.rows.rows
    }

    /// True when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.rows.rows == 0
    }

    /// Item dimensionality.
    pub fn dim(&self) -> usize {
        self.rows.cols
    }

    /// Cosine similarity of `query` against every item, via one blocked
    /// mat-vec through the kernel layer.
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(
            query.len(),
            self.rows.cols,
            "CosineIndex: query dim {} vs index dim {}",
            query.len(),
            self.rows.cols
        );
        let mut q = query.to_vec();
        normalize(&mut q);
        let q = Tensor::from_vec(1, self.rows.cols, q);
        kernel::matmul_t(&self.rows, &q).data
    }

    /// The k most cosine-similar items to `query`, best first.
    pub fn nearest(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let scores = self.scores(query);
        topk_scores(self.len(), k, Order::Largest, |i| scores[i])
    }
}

/// Scale to unit norm in place; degenerate vectors (squared norm ≤
/// `f32::EPSILON`, or any non-finite entry) become all-zero so their
/// dot products are 0, like `dc_tensor::tensor::cosine`'s zero-vector
/// guard.
fn normalize(v: &mut [f32]) {
    let norm2: f32 = v.iter().map(|x| x * x).sum();
    if norm2 > f32::EPSILON && norm2.is_finite() {
        let inv = 1.0 / norm2.sqrt();
        for x in v {
            *x *= inv;
        }
    } else {
        v.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_largest_best_first() {
        let scores = [0.2f32, 0.9, -0.5, 0.9, 0.1];
        let mut top = TopK::largest(3);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let hits = top.into_sorted();
        let got: Vec<(usize, f32)> = hits.iter().map(|h| (h.index, h.score)).collect();
        // Tie at 0.9 breaks toward index 1.
        assert_eq!(got, vec![(1, 0.9), (3, 0.9), (0, 0.2)]);
    }

    #[test]
    fn smallest_order_selects_distances() {
        let scores = [3.0f32, -1.0, 2.0, -1.0];
        let mut top = TopK::smallest(2);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let got: Vec<usize> = top.into_sorted().iter().map(|h| h.index).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn nan_sinks_below_every_real_score() {
        let scores = [f32::NAN, -1.0e30, f32::NAN, 0.0];
        let mut top = TopK::largest(3);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let got: Vec<usize> = top.into_sorted().iter().map(|h| h.index).collect();
        // Real scores first, then the earliest NaN.
        assert_eq!(got, vec![3, 1, 0]);
        // Same in Smallest order.
        let mut top = TopK::smallest(1);
        top.push(0, f32::NAN);
        top.push(1, f32::INFINITY);
        assert_eq!(top.into_sorted()[0].index, 1);
    }

    #[test]
    fn zero_k_and_zero_n_are_empty() {
        assert!(topk_scores(10, 0, Order::Largest, |_| 1.0).is_empty());
        assert!(topk_scores(0, 5, Order::Largest, |_| 1.0).is_empty());
        let mut top = TopK::largest(0);
        top.push(0, 1.0);
        assert!(top.is_empty());
    }

    #[test]
    fn negative_zero_ties_positive_zero() {
        let mut top = TopK::largest(2);
        top.push(0, -0.0);
        top.push(1, 0.0);
        let hits = top.into_sorted();
        // -0.0 < 0.0 under the bit order, so +0.0 wins.
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 0);
    }

    #[test]
    fn parallel_scan_matches_serial_reference() {
        // > SCAN_GRAIN items so the chunked path engages when the pool
        // has threads; the result must match a full sort either way.
        let n = 3000;
        let score = |i: usize| ((i as f32) * 0.37).sin();
        let hits = topk_scores(n, 7, Order::Largest, score);
        let mut all: Vec<(usize, f32)> = (0..n).map(|i| (i, score(i))).collect();
        all.sort_by(|a, b| desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0)));
        let expect: Vec<usize> = all[..7].iter().map(|&(i, _)| i).collect();
        let got: Vec<usize> = hits.iter().map(|h| h.index).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn desc_nan_last_orders_for_sorts() {
        let mut v = [0.5f32, f32::NAN, 2.0, -1.0];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(v[0], 2.0);
        assert_eq!(v[1], 0.5);
        assert_eq!(v[2], -1.0);
        assert!(v[3].is_nan());
    }

    #[test]
    fn cosine_index_matches_naive_cosine() {
        let items = Tensor::from_vec(
            4,
            3,
            vec![
                1.0, 0.0, 0.0, //
                0.0, 2.0, 0.0, //
                1.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, // zero row scores 0
            ],
        );
        let idx = CosineIndex::build(&items);
        let query = [1.0f32, 1.0, 0.0];
        let scores = idx.scores(&query);
        for (i, &got) in scores.iter().enumerate() {
            let want = dc_tensor::tensor::cosine(&query, &items.data[i * 3..(i + 1) * 3]);
            assert!((got - want).abs() < 1e-5, "item {i}: {got} vs {want}");
        }
        let hits = idx.nearest(&query, 2);
        assert_eq!(hits[0].index, 2);
    }
}
