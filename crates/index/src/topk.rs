//! Exact top-k selection under a total score order.
//!
//! The seed retrieval paths all follow the same shape: score every
//! item, `collect` into a `Vec`, full `sort_by(partial_cmp.expect(..))`
//! — an `O(n log n)` sort for a k-item answer and a panic the moment a
//! NaN score appears (zero vectors make `cosine` return NaN). [`TopK`]
//! replaces that with a bounded binary heap (`O(n log k)`) under a
//! *total* order: higher score is better (or lower, for
//! [`Order::Smallest`]), NaN sinks below every real score, and ties
//! break toward the smaller index — exactly the order a stable
//! descending sort over `(score, index)` would produce, so seed tie
//! semantics are preserved.
//!
//! [`topk_scores`] runs the scan in fixed-grain chunks over the shared
//! worker pool and merges the per-chunk winners in chunk order. Because
//! the order is total, the top-k set *and* its order are unique —
//! identical for every `DC_THREADS` setting and every chunking. The
//! chunked machinery itself is [`topk_scan`], shared by the f32 scoring
//! path and the quantized i8 funnel tiers.
//!
//! [`CosineIndex`] optionally carries a three-tier retrieval funnel
//! ([`FunnelConfig`]): 1-bit Hamming prefilter → i8 approximate scoring
//! → exact f32 rescore of the survivors, with results identical to the
//! exact scan whenever the true top-k survives the approximate tiers
//! (DESIGN.md §15 sizes the tiers so that holds with huge margin).

use crate::quant::{i32_goodness, QuantizedSet};
use crate::sig::SignatureSet;
use dc_tensor::kernel;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;
use std::ops::Range;

/// One retrieval result: item index and its score.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Hit {
    /// Index of the item in the scanned collection.
    pub index: usize,
    /// The item's score, as produced by the scoring function.
    pub score: f32,
}

/// Whether larger or smaller scores win.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Keep the k largest scores (similarities).
    Largest,
    /// Keep the k smallest scores (distances).
    Smallest,
}

/// Map a score to a `u64` "goodness": strictly monotone in the winning
/// direction, with every NaN mapped to 0 (worse than any real score).
/// The f32→u32 step is the standard sign-flip trick (negative floats
/// reverse order when viewed as raw bits).
#[inline]
fn goodness(order: Order, score: f32) -> u64 {
    if score.is_nan() {
        return 0;
    }
    let bits = score.to_bits();
    let monotone = if bits & 0x8000_0000 != 0 {
        !bits
    } else {
        bits | 0x8000_0000
    } as u64;
    match order {
        Order::Largest => monotone + 1,
        Order::Smallest => (1u64 << 32) - monotone,
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    good: u64,
    index: usize,
    score: f32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.good == other.good && self.index == other.index
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    /// Greater = better: higher goodness, ties toward the lower index.
    fn cmp(&self, other: &Self) -> Ordering {
        self.good
            .cmp(&other.good)
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Bounded selector for the k best `(index, score)` pairs seen so far.
pub struct TopK {
    k: usize,
    order: Order,
    /// Min-heap on `Entry`'s "better" order: the root is the current
    /// worst survivor, evicted when a better entry arrives.
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopK {
    /// Selector keeping the `k` best under `order`.
    pub fn new(k: usize, order: Order) -> Self {
        TopK {
            k,
            order,
            heap: BinaryHeap::with_capacity(k.saturating_add(1).min(1 << 20)),
        }
    }

    /// Keep the `k` largest scores.
    pub fn largest(k: usize) -> Self {
        Self::new(k, Order::Largest)
    }

    /// Keep the `k` smallest scores.
    pub fn smallest(k: usize) -> Self {
        Self::new(k, Order::Smallest)
    }

    /// Offer one scored item.
    #[inline]
    pub fn push(&mut self, index: usize, score: f32) {
        let good = goodness(self.order, score);
        self.push_entry(Entry { good, index, score });
    }

    /// Offer an item under an explicit integer goodness key, carrying
    /// `score` only as a diagnostic payload. The i8 funnel tier selects
    /// on exact i32 dots this way instead of routing them through f32
    /// (which collapses ties above 2²⁴). The key must be monotone in
    /// the winning direction regardless of [`Order`] (e.g.
    /// [`crate::quant::i32_goodness`]).
    #[inline]
    pub fn push_with_goodness(&mut self, index: usize, good: u64, score: f32) {
        self.push_entry(Entry { good, index, score });
    }

    #[inline]
    fn push_entry(&mut self, entry: Entry) {
        if self.k == 0 {
            return;
        }
        if self.heap.len() < self.k {
            self.heap.push(Reverse(entry));
        } else if entry > self.heap.peek().expect("non-empty at capacity").0 {
            self.heap.pop();
            self.heap.push(Reverse(entry));
        }
    }

    /// Number of survivors held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing has been kept.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The survivors, best first.
    pub fn into_sorted(self) -> Vec<Hit> {
        self.into_entries()
            .into_iter()
            .map(|e| Hit {
                index: e.index,
                score: e.score,
            })
            .collect()
    }

    /// The survivors as raw entries, best first — keeps the goodness
    /// key alive across the per-chunk → merge hop of [`topk_scan`]
    /// (a `Hit` only carries the f32 payload, which for integer-keyed
    /// pushes cannot reconstruct the key).
    fn into_entries(self) -> Vec<Entry> {
        let mut entries: Vec<Entry> = self.heap.into_iter().map(|r| r.0).collect();
        entries.sort_unstable_by(|a, b| b.cmp(a));
        entries
    }
}

/// Minimum items scanned per chunk of the parallel top-k scan. Chunk
/// boundaries are a pure function of `(n, k)`, so the merge order — and
/// therefore the result — never depends on the thread count.
const SCAN_GRAIN: usize = 1024;

/// The chunked parallel top-k scan shared by every scoring path (f32
/// [`topk_scores`], the funnel's Hamming and i8 tiers): `fill` offers
/// each item of its chunk to the supplied selector, chunks run over the
/// shared worker pool when it has threads to offer, and the per-chunk
/// survivors are merged in chunk order under the selector's total
/// order. The total order makes the answer unique, so serial and
/// parallel scans agree bit-for-bit for every chunking.
///
/// Chunks grow from [`SCAN_GRAIN`] to `4k` for large `k` so a chunk can
/// actually reject items (a chunk narrower than `k` keeps everything
/// and the merge degenerates into a full rescan).
pub fn topk_scan(
    n: usize,
    k: usize,
    order: Order,
    fill: impl Fn(&mut TopK, Range<usize>) + Sync,
) -> Vec<Hit> {
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let grain = SCAN_GRAIN.max(k.saturating_mul(4));
    let chunks = n.div_ceil(grain);
    if chunks <= 1 || kernel::pool().threads() <= 1 {
        let mut top = TopK::new(k, order);
        fill(&mut top, 0..n);
        return top.into_sorted();
    }
    let mut partials: Vec<Vec<Entry>> = Vec::with_capacity(chunks);
    partials.resize_with(chunks, Vec::new);
    kernel::parallel_fill(&mut partials, |c| {
        let lo = c * grain;
        let hi = ((c + 1) * grain).min(n);
        let mut top = TopK::new(k, order);
        fill(&mut top, lo..hi);
        top.into_entries()
    });
    let mut merged = TopK::new(k, order);
    for entry in partials.iter().flatten() {
        merged.push_entry(*entry);
    }
    merged.into_sorted()
}

/// Select the k best of `score(0..n)`, best first, via [`topk_scan`].
pub fn topk_scores(
    n: usize,
    k: usize,
    order: Order,
    score: impl Fn(usize) -> f32 + Sync,
) -> Vec<Hit> {
    topk_scan(n, k, order, |top, range| {
        for i in range {
            top.push(i, score(i));
        }
    })
}

/// Comparator for descending score sorts with NaN sinking last —
/// drop-in replacement for the seed's
/// `b.partial_cmp(a).expect("finite scores")` panic sites.
pub fn desc_nan_last(a: f32, b: f32) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.partial_cmp(&a).expect("both finite"),
    }
}

// Funnel telemetry (dc-obs): per-tier candidate counts feed selectivity
// dashboards; the rescore-hits histogram records, per query, how many
// of the final top-k the i8 tier had already ranked in ITS top-k
// (per-mille), i.e. how often the exact rescore actually reorders.
static FUNNEL_QUERIES: dc_obs::Counter = dc_obs::Counter::new("index.funnel.queries");
static FUNNEL_T1: dc_obs::Counter = dc_obs::Counter::new("index.funnel.tier1.candidates");
static FUNNEL_T2: dc_obs::Counter = dc_obs::Counter::new("index.funnel.tier2.candidates");
static FUNNEL_T3: dc_obs::Counter = dc_obs::Counter::new("index.funnel.tier3.candidates");
static FUNNEL_RESCORE_HITS: dc_obs::Hist = dc_obs::Hist::new("index.funnel.rescore_hits");

/// Default random-hyperplane seed for funnel prefilter signatures.
pub const FUNNEL_PLANE_SEED: u64 = 0xf7a4_e1b1;

/// Tier sizing for the three-tier retrieval funnel on [`CosineIndex`].
///
/// Each tier only engages when it can actually narrow the candidate
/// set (`n > 2 * hamming_keep`, survivors `> rescore_k`); otherwise the
/// query falls through to the next tier, and ultimately to the exact
/// f32 rescore — so a funnel over a small index degenerates to the
/// exact scan. Defaults are sized for the adversarial case of
/// uniformly random vectors at 100k items / 64 dims, where the true
/// top-10 survives both approximate tiers with ≥ 4σ margin
/// (DESIGN.md §15); clustered real embeddings are easier.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FunnelConfig {
    /// Sign-signature bits for the tier-1 Hamming prefilter
    /// (0 disables tier 1).
    pub prefilter_bits: usize,
    /// Candidates the Hamming tier keeps (clamped up to `k` at query
    /// time); tier 1 engages only when the index holds more than twice
    /// this many items — any less and the signature scan costs more
    /// than the i8 work it would save.
    pub hamming_keep: usize,
    /// Candidates the i8 tier hands to the exact f32 rescore (clamped
    /// up to `k` at query time).
    pub rescore_k: usize,
    /// Seed for the random hyperplanes behind the tier-1 signatures.
    pub seed: u64,
}

impl Default for FunnelConfig {
    fn default() -> Self {
        FunnelConfig {
            prefilter_bits: 256,
            hamming_keep: 8 * 1024,
            rescore_k: 256,
            seed: FUNNEL_PLANE_SEED,
        }
    }
}

impl FunnelConfig {
    /// Override the prefilter signature width (0 disables tier 1).
    pub fn with_prefilter_bits(mut self, bits: usize) -> Self {
        self.prefilter_bits = bits;
        self
    }

    /// Override how many candidates the Hamming tier keeps.
    pub fn with_hamming_keep(mut self, keep: usize) -> Self {
        self.hamming_keep = keep;
        self
    }

    /// Override how many candidates reach the exact f32 rescore.
    pub fn with_rescore_k(mut self, k: usize) -> Self {
        self.rescore_k = k;
        self
    }
}

/// Resident bytes of a [`CosineIndex`], split by funnel tier.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FunnelBytes {
    /// Tier 1: packed sign-signature words.
    pub sig: usize,
    /// Tier 2: i8 codes + column scales.
    pub quant: usize,
    /// Tier 3 / exact scan: the normalized f32 rows.
    pub exact: usize,
}

/// The prebuilt approximate tiers riding on a [`CosineIndex`].
struct Funnel {
    cfg: FunnelConfig,
    /// Tier-1 hyperplanes, kept to signature incoming queries.
    planes: Tensor,
    /// Tier-1 packed sign signatures of the normalized rows.
    sigs: SignatureSet,
    /// Tier-2 per-column symmetric i8 codes of the normalized rows.
    quant: QuantizedSet,
}

impl Funnel {
    /// True when at least one approximate tier can narrow `n`
    /// candidates enough to pay for itself: the Hamming tier needs the
    /// index to hold more than twice its keep budget, and without a
    /// prefilter the i8 tier needs more items than it would hand to
    /// the rescore anyway. Anything less and the tiers cost more than
    /// the exact scan they guard — small n keeps the f32 rows cache
    /// resident, where the blocked mat-vec beats the i8 path — so the
    /// query routes straight to [`CosineIndex::nearest_exact`].
    fn engages(&self, n: usize, k: usize) -> bool {
        if self.cfg.prefilter_bits > 0 {
            n > 2 * self.cfg.hamming_keep.max(k)
        } else {
            n > self.cfg.rescore_k.max(k)
        }
    }
}

/// Exact cosine top-k over a fixed item matrix: rows are normalized
/// once at build, so each query is a single blocked mat-vec product
/// (one multiply per element instead of the three the naive
/// `cosine`-per-item scan pays) followed by a [`topk_scores`] scan.
///
/// [`CosineIndex::with_funnel`] attaches a three-tier retrieval funnel
/// (1-bit Hamming prefilter → i8 approximate scoring → exact f32
/// rescore). [`CosineIndex::nearest`] then routes through the funnel;
/// the rescore tier reuses the same dispatched dot product as the full
/// scan ([`dc_tensor::kernel::dot_f32`]) and the same total order, so
/// results — scores included — are **bitwise identical** to
/// [`CosineIndex::nearest_exact`] whenever the true top-k survives the
/// approximate tiers (tier sizing argument in DESIGN.md §15;
/// `tests/quant_equiv.rs` pins equality).
///
/// Rows (or queries) with non-finite entries or squared norm ≤
/// `f32::EPSILON` score 0 against everything, matching
/// `dc_tensor::tensor::cosine`'s zero-vector convention.
pub struct CosineIndex {
    rows: Tensor,
    funnel: Option<Funnel>,
}

impl CosineIndex {
    /// Normalize `items` (one row per item) into an index (exact scans
    /// only; see [`Self::with_funnel`]).
    pub fn build(items: &Tensor) -> Self {
        let mut rows = items.clone();
        for i in 0..rows.rows {
            let start = i * rows.cols;
            let row = &mut rows.data[start..start + rows.cols];
            normalize(row);
        }
        CosineIndex { rows, funnel: None }
    }

    /// Attach the quantized retrieval funnel: build tier-1 sign
    /// signatures and tier-2 i8 codes from the normalized rows, once.
    pub fn with_funnel(mut self, cfg: FunnelConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let planes = Tensor::randn(cfg.prefilter_bits, self.rows.cols, 1.0, &mut rng);
        let sigs = SignatureSet::compute(&self.rows, &planes);
        let quant = QuantizedSet::build(&self.rows);
        self.funnel = Some(Funnel {
            cfg,
            planes,
            sigs,
            quant,
        });
        self
    }

    /// [`Self::build`] + [`Self::with_funnel`] in one step.
    pub fn build_funnel(items: &Tensor, cfg: FunnelConfig) -> Self {
        Self::build(items).with_funnel(cfg)
    }

    /// True when a funnel is attached.
    pub fn has_funnel(&self) -> bool {
        self.funnel.is_some()
    }

    /// Resident bytes per tier (sig/quant are 0 without a funnel).
    pub fn resident_bytes(&self) -> FunnelBytes {
        let exact = self.rows.data.len() * std::mem::size_of::<f32>();
        match &self.funnel {
            Some(f) => FunnelBytes {
                sig: f.sigs.len() * f.sigs.words_per_sig() * std::mem::size_of::<u64>(),
                quant: f.quant.resident_bytes(),
                exact,
            },
            None => FunnelBytes {
                sig: 0,
                quant: 0,
                exact,
            },
        }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.rows.rows
    }

    /// True when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.rows.rows == 0
    }

    /// Item dimensionality.
    pub fn dim(&self) -> usize {
        self.rows.cols
    }

    fn normalized_query(&self, query: &[f32]) -> Vec<f32> {
        assert_eq!(
            query.len(),
            self.rows.cols,
            "CosineIndex: query dim {} vs index dim {}",
            query.len(),
            self.rows.cols
        );
        let mut q = query.to_vec();
        normalize(&mut q);
        q
    }

    /// Cosine similarity of `query` against every item, via one blocked
    /// mat-vec through the kernel layer.
    pub fn scores(&self, query: &[f32]) -> Vec<f32> {
        let q = Tensor::from_vec(1, self.rows.cols, self.normalized_query(query));
        kernel::matmul_t(&self.rows, &q).data
    }

    /// The k most cosine-similar items to `query`, best first — through
    /// the funnel when one is attached, the exact scan otherwise.
    pub fn nearest(&self, query: &[f32], k: usize) -> Vec<Hit> {
        match &self.funnel {
            Some(f) if f.engages(self.len(), k) => {
                let qn = self.normalized_query(query);
                self.nearest_funnel(f, &qn, k)
            }
            _ => self.nearest_exact(query, k),
        }
    }

    /// The k most cosine-similar items by full f32 scan, ignoring any
    /// attached funnel (baseline for equivalence tests and benches).
    pub fn nearest_exact(&self, query: &[f32], k: usize) -> Vec<Hit> {
        let scores = self.scores(query);
        topk_scores(self.len(), k, Order::Largest, |i| scores[i])
    }

    /// Three-tier funnel scan. Every tier narrows a candidate list that
    /// is itself deterministic (unique under a total order), and the
    /// final rescore pushes real item indices under the same
    /// `(score, index)` order as the exact scan with bitwise-identical
    /// per-row scores ([`kernel::dot_f32`] is the `matmul_t`
    /// microkernel's dot) — so whenever the true top-k survives tiers
    /// 1–2, the output is bitwise the exact scan's.
    fn nearest_funnel(&self, f: &Funnel, qn: &[f32], k: usize) -> Vec<Hit> {
        let n = self.len();
        if n == 0 || k == 0 {
            return Vec::new();
        }
        FUNNEL_QUERIES.incr();
        FUNNEL_T1.add(n as u64);

        // Tier 1: Hamming prefilter over packed sign signatures.
        // Distances live on a bounded integer alphabet (≤ nbits), so
        // the keep-smallest selection is one counting pass instead of a
        // heap — at tier-1 keeps (~n/6) a `keep`-sized binary heap
        // costs several times the distances themselves. The selected
        // set is exactly `TopK::smallest`'s (ties at the threshold keep
        // the lower index), and the chunked distance computation is a
        // pure per-item function, so every thread count and chunking
        // yields the same candidates.
        let t1_keep = f.cfg.hamming_keep.max(k);
        let tier1: Option<Vec<usize>> = if f.cfg.prefilter_bits > 0 && n > 2 * t1_keep {
            let q = Tensor::from_vec(1, self.rows.cols, qn.to_vec());
            let qsig = SignatureSet::compute(&q, &f.planes);
            let qwords: Vec<u64> = qsig.sig(0).to_vec();
            let nbits = f.sigs.nbits();
            // Coarser grain than the score scans: the per-item work is
            // a handful of XOR+popcounts, so 1k-item chunks would spend
            // a visible share of the tier on Vec/histogram churn.
            const T1_GRAIN: usize = 4 * SCAN_GRAIN;
            let chunks = n.div_ceil(T1_GRAIN);
            // Each chunk carries its own distance histogram, so the
            // threshold needs only a cheap merge over `chunks * nbits`
            // counters instead of a second full pass over the distances.
            let mut parts: Vec<(Vec<u16>, Vec<u32>)> = Vec::with_capacity(chunks);
            parts.resize_with(chunks, Default::default);
            kernel::parallel_fill(&mut parts, |c| {
                let lo = c * T1_GRAIN;
                let hi = ((c + 1) * T1_GRAIN).min(n);
                let mut dists = Vec::new();
                f.sigs.hamming_range_into(lo, hi, &qwords, &mut dists);
                // Two interleaved histograms: random-plane distances
                // concentrate in a few bins, and a single histogram
                // serializes on the repeated same-bin increments.
                let mut hist = vec![0u32; nbits + 1];
                let mut odd = vec![0u32; nbits + 1];
                let mut pairs = dists.chunks_exact(2);
                for p in &mut pairs {
                    hist[p[0] as usize] += 1;
                    odd[p[1] as usize] += 1;
                }
                for &d in pairs.remainder() {
                    hist[d as usize] += 1;
                }
                for (a, b) in hist.iter_mut().zip(&odd) {
                    *a += b;
                }
                (dists, hist)
            });
            Some(smallest_dists(&parts, nbits, t1_keep))
        } else {
            None
        };

        // Tier 2: i8 approximate scoring keeps the top rescore_k.
        let t2_input = tier1.as_ref().map_or(n, Vec::len);
        FUNNEL_T2.add(t2_input as u64);
        let rescore = f.cfg.rescore_k.max(k);
        let tier2: Vec<usize> = if t2_input > rescore {
            let mut qq = Vec::new();
            let t = f.quant.quantize_query_into(qn, &mut qq);
            let hits = match &tier1 {
                Some(cands) => topk_scan(cands.len(), rescore, Order::Largest, |top, range| {
                    // Tier-1 survivors sit ~1 cache line apart at
                    // irregular strides; prefetching a few rows ahead
                    // keeps the gather bandwidth- instead of
                    // latency-bound. Hint only — results are identical.
                    const PF_AHEAD: usize = 8;
                    let end = range.end;
                    for p in range {
                        if p + PF_AHEAD < end {
                            kernel::prefetch_read(f.quant.row(cands[p + PF_AHEAD]).as_ptr());
                        }
                        let idx = cands[p];
                        let d = kernel::dot_i8(f.quant.row(idx), &qq);
                        top.push_with_goodness(idx, i32_goodness(d), t * d as f32);
                    }
                }),
                None => {
                    let mut dots = vec![0i32; n];
                    kernel::i8_dot_rows(f.quant.data(), self.rows.cols, &qq, &mut dots);
                    topk_scan(n, rescore, Order::Largest, |top, range| {
                        for i in range {
                            top.push_with_goodness(i, i32_goodness(dots[i]), t * dots[i] as f32);
                        }
                    })
                }
            };
            hits.into_iter().map(|h| h.index).collect()
        } else {
            tier1.unwrap_or_else(|| (0..n).collect())
        };

        // Tier 3: exact f32 rescore of the survivors, pushed under the
        // item index so tie order matches the exact scan.
        FUNNEL_T3.add(tier2.len() as u64);
        let out = topk_scan(tier2.len(), k, Order::Largest, |top, range| {
            for p in range {
                let idx = tier2[p];
                top.push(idx, kernel::dot_f32(self.rows.row_slice(idx), qn));
            }
        });
        if dc_obs::enabled() && t2_input > rescore {
            // tier2 is best-first under the i8 order; count how many of
            // the final k its own top-k had already surfaced.
            let head = &tier2[..k.min(tier2.len())];
            let hits = out.iter().filter(|h| head.contains(&h.index)).count();
            let denom = out.len().max(1);
            FUNNEL_RESCORE_HITS.record_ns((hits * 1000 / denom) as u64);
        }
        out
    }
}

/// Indices of the `keep` smallest distances across chunked
/// `(distances, histogram)` parts (ties at the threshold distance keep
/// the lower index) by counting over the bounded alphabet
/// `0..=max_dist`: the pre-binned chunk histograms merge into the
/// threshold, then one collection pass over the chunks emits the
/// survivors in ascending index order. The selected set is identical
/// to `TopK::smallest(keep)` over the concatenated distances; when
/// `keep` covers every distance, every index survives.
fn smallest_dists(parts: &[(Vec<u16>, Vec<u32>)], max_dist: usize, keep: usize) -> Vec<usize> {
    if keep == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; max_dist + 2];
    for (_, part_hist) in parts {
        for (d, &c) in part_hist.iter().enumerate() {
            hist[d] += c as usize;
        }
    }
    // Smallest distance where the cumulative count reaches `keep`;
    // everything strictly below survives outright.
    let mut below = 0usize;
    let mut threshold = max_dist + 1;
    for (d, &c) in hist.iter().enumerate() {
        if below + c >= keep {
            threshold = d;
            break;
        }
        below += c;
    }
    // Branchless collection: always store the index, conditionally
    // advance the cursor. Survivor count is exactly `below` strict
    // winners plus `keep - below` threshold ties (the threshold bin
    // holds at least that many by construction), so `len` never
    // exceeds `keep` and the one slack slot absorbs the dead stores.
    let mut out = vec![0usize; keep + 1];
    let mut len = 0usize;
    let mut ties = keep - below;
    let mut base = 0usize;
    for (dists, _) in parts {
        for (off, &d) in dists.iter().enumerate() {
            let d = d as usize;
            let take_eq = usize::from(d == threshold) & usize::from(ties > 0);
            out[len] = base + off;
            len += usize::from(d < threshold) | take_eq;
            ties -= take_eq;
        }
        base += dists.len();
    }
    out.truncate(len);
    out
}

/// Scale to unit norm in place; degenerate vectors (squared norm ≤
/// `f32::EPSILON`, or any non-finite entry) become all-zero so their
/// dot products are 0, like `dc_tensor::tensor::cosine`'s zero-vector
/// guard.
fn normalize(v: &mut [f32]) {
    let norm2: f32 = v.iter().map(|x| x * x).sum();
    if norm2 > f32::EPSILON && norm2.is_finite() {
        let inv = 1.0 / norm2.sqrt();
        for x in v {
            *x *= inv;
        }
    } else {
        v.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_largest_best_first() {
        let scores = [0.2f32, 0.9, -0.5, 0.9, 0.1];
        let mut top = TopK::largest(3);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let hits = top.into_sorted();
        let got: Vec<(usize, f32)> = hits.iter().map(|h| (h.index, h.score)).collect();
        // Tie at 0.9 breaks toward index 1.
        assert_eq!(got, vec![(1, 0.9), (3, 0.9), (0, 0.2)]);
    }

    #[test]
    fn smallest_order_selects_distances() {
        let scores = [3.0f32, -1.0, 2.0, -1.0];
        let mut top = TopK::smallest(2);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let got: Vec<usize> = top.into_sorted().iter().map(|h| h.index).collect();
        assert_eq!(got, vec![1, 3]);
    }

    #[test]
    fn nan_sinks_below_every_real_score() {
        let scores = [f32::NAN, -1.0e30, f32::NAN, 0.0];
        let mut top = TopK::largest(3);
        for (i, &s) in scores.iter().enumerate() {
            top.push(i, s);
        }
        let got: Vec<usize> = top.into_sorted().iter().map(|h| h.index).collect();
        // Real scores first, then the earliest NaN.
        assert_eq!(got, vec![3, 1, 0]);
        // Same in Smallest order.
        let mut top = TopK::smallest(1);
        top.push(0, f32::NAN);
        top.push(1, f32::INFINITY);
        assert_eq!(top.into_sorted()[0].index, 1);
    }

    #[test]
    fn zero_k_and_zero_n_are_empty() {
        assert!(topk_scores(10, 0, Order::Largest, |_| 1.0).is_empty());
        assert!(topk_scores(0, 5, Order::Largest, |_| 1.0).is_empty());
        let mut top = TopK::largest(0);
        top.push(0, 1.0);
        assert!(top.is_empty());
    }

    #[test]
    fn negative_zero_ties_positive_zero() {
        let mut top = TopK::largest(2);
        top.push(0, -0.0);
        top.push(1, 0.0);
        let hits = top.into_sorted();
        // -0.0 < 0.0 under the bit order, so +0.0 wins.
        assert_eq!(hits[0].index, 1);
        assert_eq!(hits[1].index, 0);
    }

    #[test]
    fn parallel_scan_matches_serial_reference() {
        // > SCAN_GRAIN items so the chunked path engages when the pool
        // has threads; the result must match a full sort either way.
        let n = 3000;
        let score = |i: usize| ((i as f32) * 0.37).sin();
        let hits = topk_scores(n, 7, Order::Largest, score);
        let mut all: Vec<(usize, f32)> = (0..n).map(|i| (i, score(i))).collect();
        all.sort_by(|a, b| desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0)));
        let expect: Vec<usize> = all[..7].iter().map(|&(i, _)| i).collect();
        let got: Vec<usize> = hits.iter().map(|h| h.index).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn desc_nan_last_orders_for_sorts() {
        let mut v = [0.5f32, f32::NAN, 2.0, -1.0];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(v[0], 2.0);
        assert_eq!(v[1], 0.5);
        assert_eq!(v[2], -1.0);
        assert!(v[3].is_nan());
    }

    #[test]
    fn funnel_fallthrough_is_bitwise_exact() {
        // Index far smaller than every tier: tiers 1–2 disengage and the
        // funnel is the exact scan computed via dot_f32 — bitwise equal
        // unconditionally.
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let items = Tensor::randn(100, 16, 1.0, &mut rng);
        let idx = CosineIndex::build_funnel(&items, FunnelConfig::default());
        let q: Vec<f32> = items.row_slice(3).to_vec();
        let exact = idx.nearest_exact(&q, 7);
        let funnel = idx.nearest(&q, 7);
        assert_eq!(exact.len(), funnel.len());
        for (e, f) in exact.iter().zip(&funnel) {
            assert_eq!(e.index, f.index);
            assert_eq!(e.score.to_bits(), f.score.to_bits());
        }
    }

    #[test]
    fn engaged_funnel_matches_exact_on_planted_winners() {
        // Tight tiers that actually engage (n=500 > keep=40 > rescore=20
        // > k=3), with the true winners planted as near-duplicates of
        // the query so they survive both approximate tiers by a huge
        // margin; output must then be bitwise the exact scan's.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut items = Tensor::randn(500, 16, 1.0, &mut rng);
        let query: Vec<f32> = items.row_slice(250).to_vec();
        for (slot, &i) in [7usize, 123, 400].iter().enumerate() {
            for (j, &q) in query.iter().enumerate() {
                let v = 2.0 * q + 1e-3 * (slot as f32 + 1.0) * (j as f32).cos();
                items.set(i, j, v);
            }
        }
        let cfg = FunnelConfig::default()
            .with_prefilter_bits(64)
            .with_hamming_keep(40)
            .with_rescore_k(20);
        let idx = CosineIndex::build_funnel(&items, cfg);
        let exact = idx.nearest_exact(&query, 3);
        let funnel = idx.nearest(&query, 3);
        let planted: std::collections::HashSet<usize> = [7, 123, 400, 250].into_iter().collect();
        assert!(exact.iter().all(|h| planted.contains(&h.index)));
        for (e, f) in exact.iter().zip(&funnel) {
            assert_eq!(e.index, f.index);
            assert_eq!(e.score.to_bits(), f.score.to_bits());
        }
        let bytes = idx.resident_bytes();
        assert!(bytes.quant < bytes.exact / 3, "{bytes:?}");
        assert!(bytes.sig > 0);
    }

    #[test]
    fn cosine_index_matches_naive_cosine() {
        let items = Tensor::from_vec(
            4,
            3,
            vec![
                1.0, 0.0, 0.0, //
                0.0, 2.0, 0.0, //
                1.0, 1.0, 0.0, //
                0.0, 0.0, 0.0, // zero row scores 0
            ],
        );
        let idx = CosineIndex::build(&items);
        let query = [1.0f32, 1.0, 0.0];
        let scores = idx.scores(&query);
        for (i, &got) in scores.iter().enumerate() {
            let want = dc_tensor::tensor::cosine(&query, &items.data[i * 3..(i + 1) * 3]);
            assert!((got - want).abs() < 1e-5, "item {i}: {got} vs {want}");
        }
        let hits = idx.nearest(&query, 2);
        assert_eq!(hits[0].index, 2);
    }
}
