//! Symmetric int8 quantized embeddings — tier 2 of the retrieval funnel.
//!
//! A [`QuantizedSet`] stores each embedding row as `i8` codes with f32
//! scales fixed at build time, cutting resident bytes ~4× against the
//! f32 rows and letting candidate scoring run through the integer
//! [`dc_tensor::kernel::dot_i8`] kernel (AVX2 widening multiply-add,
//! bitwise identical to its scalar lane — integer addition is
//! associative, so there is no thread-count or chunking story to prove).
//!
//! # Quantization scheme (DESIGN.md §15)
//!
//! Quantization is **symmetric** (no zero-point): code `q = round(v/s)`
//! clamped to `[-127, 127]`, so the integer dot needs no correction
//! terms. Two scale layouts:
//!
//! * **Per-column** ([`QuantizedSet::build`]) — `s[j] = maxabs_col[j] /
//!   127`. Embedding columns have wildly different dynamic ranges
//!   (early SGNS dims saturate, late dims hover near 0); one scale per
//!   column keeps ~7 significant bits in *every* column instead of
//!   letting the widest column consume the whole code range. Per-column
//!   scales still reduce query scoring to a **single integer dot**: the
//!   column scales fold into the query side
//!   (`w[j] = query[j] * s[j]`, one query-wide scale `t = maxabs(w) /
//!   127`, codes `qq[j] = round(w[j]/t)`), giving
//!   `dot(query, v_i) ≈ t · Σ_j qq[j]·q_i[j]`.
//! * **Uniform** ([`QuantizedSet::build_uniform`]) — one global scale.
//!   Required when *stored rows are scored against each other*
//!   ([`QuantizedSet::pair_dot`], used by the blocking candidate cap):
//!   with per-column scales the raw integer pair dot would weight
//!   column `j` by `1/s[j]²`, which is not monotone in the true dot.
//!   Under a uniform scale the integer pair dot is `dot(v_i, v_j)/s²` up
//!   to rounding — a faithful ranking key.
//!
//! Scores out of this tier are *approximate by construction*; the
//! funnel keeps API results exact by rescoring the surviving
//! `rescore_k` candidates with the full-precision rows (see
//! `topk::CosineIndex`).

use dc_tensor::kernel;
use dc_tensor::Tensor;

/// `n` embeddings stored as i8 codes plus f32 scales (per-column or
/// uniform), quantized once at build.
#[derive(Clone, Debug)]
pub struct QuantizedSet {
    n: usize,
    dim: usize,
    /// Row-major codes: row `i` is `data[i*dim .. (i+1)*dim]`.
    data: Vec<i8>,
    /// One scale per column (all equal when `uniform`).
    scales: Vec<f32>,
    uniform: bool,
}

impl QuantizedSet {
    /// Quantize `items` (one row per item) with per-column scales
    /// `s[j] = maxabs_col[j] / 127`.
    pub fn build(items: &Tensor) -> Self {
        let scales = column_scales(items);
        Self::with_scales(items, scales, false)
    }

    /// Quantize `items` with one global scale `s = maxabs / 127`. Use
    /// this layout when stored rows must be scored against *each other*
    /// ([`QuantizedSet::pair_dot`]); per-column scales are not monotone
    /// for row-row dots (see the module docs).
    pub fn build_uniform(items: &Tensor) -> Self {
        let mut maxabs = 0.0f32;
        for &v in &items.data {
            let a = v.abs();
            // NaN comparisons are false, so poisoned entries are simply
            // ignored here and quantize to 0 below.
            if a.is_finite() && a > maxabs {
                maxabs = a;
            }
        }
        let scales = vec![maxabs / 127.0; items.cols];
        Self::with_scales(items, scales, true)
    }

    fn with_scales(items: &Tensor, scales: Vec<f32>, uniform: bool) -> Self {
        let (n, dim) = (items.rows, items.cols);
        debug_assert_eq!(scales.len(), dim);
        let mut data = vec![0i8; n * dim];
        for i in 0..n {
            let codes = &mut data[i * dim..(i + 1) * dim];
            for ((code, &v), &s) in codes.iter_mut().zip(items.row_slice(i)).zip(&scales) {
                *code = quantize_one(v, s);
            }
        }
        QuantizedSet {
            n,
            dim,
            data,
            scales,
            uniform,
        }
    }

    /// Number of quantized rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Row dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// True when all columns share one scale (pair dots are valid).
    pub fn is_uniform(&self) -> bool {
        self.uniform
    }

    /// The i8 codes of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[i8] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// All codes, row-major (for batch kernels).
    pub fn data(&self) -> &[i8] {
        &self.data
    }

    /// The per-column scales (all equal when [`Self::is_uniform`]).
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Bytes resident for this tier: codes + scales.
    pub fn resident_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<i8>() + self.scales.len() * std::mem::size_of::<f32>()
    }

    /// Reconstruct row `i` as f32 (`q[j] * s[j]`): within `s[j]/2` of
    /// the original entry per column (proptest-pinned).
    pub fn dequantize(&self, i: usize) -> Vec<f32> {
        self.row(i)
            .iter()
            .zip(&self.scales)
            .map(|(&q, &s)| f32::from(q) * s)
            .collect()
    }

    /// Quantize a query against this set's column scales, writing the
    /// codes to `out` and returning the query-side scale `t` such that
    /// `t * dot_i8(out, row(i)) ≈ dot(query, item_i)`. A degenerate
    /// query (all-zero or non-finite after folding) returns `t = 0`
    /// with all-zero codes, scoring 0 against everything.
    pub fn quantize_query_into(&self, query: &[f32], out: &mut Vec<i8>) -> f32 {
        assert_eq!(
            query.len(),
            self.dim,
            "QuantizedSet: query dim {} vs set dim {}",
            query.len(),
            self.dim
        );
        out.clear();
        out.resize(self.dim, 0);
        let mut maxabs = 0.0f32;
        for (&q, &s) in query.iter().zip(&self.scales) {
            let a = (q * s).abs();
            if a.is_finite() && a > maxabs {
                maxabs = a;
            }
        }
        if maxabs == 0.0 {
            return 0.0;
        }
        let t = maxabs / 127.0;
        for (code, (&q, &s)) in out.iter_mut().zip(query.iter().zip(&self.scales)) {
            *code = quantize_one(q * s, t);
        }
        t
    }

    /// Allocating convenience wrapper over
    /// [`Self::quantize_query_into`].
    pub fn quantize_query(&self, query: &[f32]) -> (f32, Vec<i8>) {
        let mut out = Vec::new();
        let t = self.quantize_query_into(query, &mut out);
        (t, out)
    }

    /// Integer dot of stored rows `i` and `j` — a faithful ranking key
    /// for the true `dot(v_i, v_j)` only under a uniform scale, so this
    /// panics on per-column sets (see the module docs).
    pub fn pair_dot(&self, i: usize, j: usize) -> i32 {
        assert!(
            self.uniform,
            "QuantizedSet::pair_dot requires build_uniform (per-column \
             scales are not monotone for row-row dots)"
        );
        kernel::dot_i8(self.row(i), self.row(j))
    }
}

/// Per-column symmetric scales `maxabs_col[j] / 127` (0 for all-zero or
/// all-non-finite columns; those columns quantize to 0 everywhere).
fn column_scales(items: &Tensor) -> Vec<f32> {
    let dim = items.cols;
    let mut maxabs = vec![0.0f32; dim];
    for row in 0..items.rows {
        for (m, &v) in maxabs.iter_mut().zip(items.row_slice(row)) {
            let a = v.abs();
            if a.is_finite() && a > *m {
                *m = a;
            }
        }
    }
    for m in &mut maxabs {
        *m /= 127.0;
    }
    maxabs
}

/// One symmetric quantization step: `round(v/s)` clamped to
/// `[-127, 127]`; degenerate scales or non-finite values code as 0.
#[inline]
fn quantize_one(v: f32, s: f32) -> i8 {
    if s == 0.0 || !v.is_finite() {
        return 0;
    }
    (v / s).round().clamp(-127.0, 127.0) as i8
}

/// Map an i32 tier-2 score to the `u64` goodness keyspace of
/// [`crate::TopK`]: strictly monotone (offset into non-negative range),
/// exact for every representable dot — unlike routing the integer
/// through f32, which collapses ties above 2²⁴.
#[inline]
pub fn i32_goodness(v: i32) -> u64 {
    (i64::from(v) + (1i64 << 31)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_stays_within_half_scale() {
        let items = Tensor::from_vec(
            3,
            2,
            vec![1.0, 100.0, -0.5, -3.0, 0.25, 50.0], // very unequal columns
        );
        let q = QuantizedSet::build(&items);
        for i in 0..3 {
            let deq = q.dequantize(i);
            for (j, (&d, &v)) in deq.iter().zip(items.row_slice(i)).enumerate() {
                let s = q.scales()[j];
                assert!((d - v).abs() <= 0.5 * s + f32::EPSILON, "row {i} col {j}");
            }
        }
    }

    #[test]
    fn per_column_scales_keep_resolution_in_narrow_columns() {
        // Column 1 is 200× wider than column 0; a uniform scale would
        // collapse column 0 to at most one code step.
        let items = Tensor::from_vec(2, 2, vec![0.5, 100.0, -0.5, -100.0]);
        let q = QuantizedSet::build(&items);
        assert_eq!(q.row(0)[0], 127);
        assert_eq!(q.row(1)[0], -127);
        let u = QuantizedSet::build_uniform(&items);
        assert!(u.row(0)[0].abs() <= 1);
    }

    #[test]
    fn folded_query_dot_approximates_f32_dot() {
        let items = Tensor::from_vec(2, 3, vec![1.0, 20.0, 0.1, -1.0, 10.0, 0.3]);
        let q = QuantizedSet::build(&items);
        let query = [0.5f32, 0.1, 2.0];
        let (t, qq) = q.quantize_query(&query);
        for i in 0..2 {
            let exact: f32 = query
                .iter()
                .zip(items.row_slice(i))
                .map(|(&a, &b)| a * b)
                .sum();
            let approx = t * kernel::dot_i8(&qq, q.row(i)) as f32;
            assert!(
                (approx - exact).abs() <= 0.05 * exact.abs().max(1.0),
                "row {i}: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn degenerate_inputs_code_to_zero() {
        let items = Tensor::from_vec(2, 2, vec![0.0, f32::NAN, 0.0, f32::INFINITY]);
        let q = QuantizedSet::build(&items);
        assert!(q.data().iter().all(|&c| c == 0));
        let (t, qq) = q.quantize_query(&[1.0, 1.0]);
        assert_eq!(t, 0.0);
        assert!(qq.iter().all(|&c| c == 0));
    }

    #[test]
    fn pair_dot_ranks_uniform_rows() {
        let items = Tensor::from_vec(3, 2, vec![1.0, 0.0, 0.9, 0.1, -1.0, 0.0]);
        let u = QuantizedSet::build_uniform(&items);
        assert!(u.pair_dot(0, 1) > u.pair_dot(0, 2));
        assert_eq!(u.pair_dot(0, 0), 127 * 127);
    }

    #[test]
    #[should_panic(expected = "pair_dot requires build_uniform")]
    fn pair_dot_rejects_per_column_scales() {
        let items = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        QuantizedSet::build(&items).pair_dot(0, 1);
    }

    #[test]
    fn goodness_is_monotone_over_i32() {
        let vals = [i32::MIN, -1, 0, 1, i32::MAX];
        for w in vals.windows(2) {
            assert!(i32_goodness(w[0]) < i32_goodness(w[1]));
        }
    }
}
