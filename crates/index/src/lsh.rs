//! Banded LSH candidate retrieval over bit-packed signatures.
//!
//! The classic banding scheme (and the seed's): split each signature
//! into `bands` bands of `rows_per_band` bits; two items are candidates
//! when *any* band matches exactly. The seed materialized a
//! `HashMap<Vec<bool>, Vec<usize>>` per band and a `HashSet` of every
//! pair; here each band is a sorted `(key, item)` table of `u64` band
//! words, candidates come out of an iterator-based [`CandidateStream`]
//! (nothing materialized for the common consumer), and callers that
//! need an exact pair set run the stream through [`dedup_pairs`] — a
//! sort/dedup over packed `u64` pair codes, far cheaper than hashing
//! every occurrence.
//!
//! **Multi-probe**: with [`LshConfig::probes`] > 0, each item
//! additionally looks up, per band, the band keys obtained by flipping
//! its lowest-margin bits (the hyperplane scores closest to zero — the
//! bits most likely to disagree across near-duplicates). This recovers
//! pair completeness at fewer bands, trading a little probe work for a
//! smaller index.

use crate::sig::{sign_scores, SignatureSet};
use dc_tensor::Tensor;
use std::ops::Range;

// Retrieval telemetry (dc-obs): candidate generation vs survival and
// multi-probe effectiveness. Single load+branch each when DC_OBS is off.
static IDX_SIGNATURES: dc_obs::Counter = dc_obs::Counter::new("index.signatures");
static IDX_STREAM_PAIRS: dc_obs::Counter = dc_obs::Counter::new("index.stream_pairs");
static IDX_PROBE_LOOKUPS: dc_obs::Counter = dc_obs::Counter::new("index.probe_lookups");
static IDX_PROBE_CANDIDATES: dc_obs::Counter = dc_obs::Counter::new("index.probe_candidates");
static IDX_CANDIDATES_RAW: dc_obs::Counter = dc_obs::Counter::new("index.candidates_raw");
static IDX_CANDIDATES_UNIQUE: dc_obs::Counter = dc_obs::Counter::new("index.candidates_unique");
static IDX_DEDUP_IN: dc_obs::Counter = dc_obs::Counter::new("index.dedup_in");
static IDX_DEDUP_OUT: dc_obs::Counter = dc_obs::Counter::new("index.dedup_out");
static IDX_BUILD: dc_obs::Hist = dc_obs::Hist::new("index.build");

/// Banding/probing parameters for an [`LshIndex`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LshConfig {
    /// Number of bands.
    pub bands: usize,
    /// Bits per band.
    pub rows_per_band: usize,
    /// Near-boundary bits probed per item per band (0 = exact banding).
    pub probes: usize,
}

impl LshConfig {
    /// Replace the band count (chainable builder; see DESIGN.md §10 for
    /// the `with_*` convention).
    pub fn with_bands(mut self, bands: usize) -> Self {
        self.bands = bands;
        self
    }

    /// Replace the bits-per-band width (chainable builder).
    pub fn with_rows_per_band(mut self, rows_per_band: usize) -> Self {
        self.rows_per_band = rows_per_band;
        self
    }

    /// Replace the multi-probe depth (chainable builder).
    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }
}

/// One band's inverted buckets: items sorted by band key, equal keys
/// adjacent. Multi-word keys (bands wider than 64 bits) compare
/// lexicographically word-by-word. `pub(crate)` so the incremental
/// index ([`crate::IncrementalLshIndex`]) can reuse it for both its
/// sorted tier and its query-time overflow merges.
pub(crate) struct BandTable {
    /// `u64` words per key.
    stride: usize,
    /// Keys in sorted order, `stride` words each.
    keys: Vec<u64>,
    /// Item ids in key-sorted order; ties sort by item id, so bucket
    /// members are ascending and in-bucket pairs come out `(min, max)`.
    pub(crate) items: Vec<u32>,
}

impl BandTable {
    pub(crate) fn build(sigs: &SignatureSet, lo: usize, width: usize) -> BandTable {
        let members: Vec<u32> = (0..sigs.len() as u32).collect();
        Self::build_subset(sigs, lo, width, &members)
    }

    /// Build over an arbitrary ascending subset of the signature set's
    /// items (the incremental index's alive lists). Sort order matches
    /// [`Self::build`]: key ascending, item id ascending within a key.
    pub(crate) fn build_subset(
        sigs: &SignatureSet,
        lo: usize,
        width: usize,
        members: &[u32],
    ) -> BandTable {
        debug_assert!(members.windows(2).all(|w| w[0] < w[1]), "members ascend");
        let n = members.len();
        let stride = width.div_ceil(64).max(1);
        if width <= 16 && n >= 64 {
            // Byte-wise LSB radix sort for narrow bands (the common
            // blocking regime): two stable passes over `(key << 32) |
            // item` with L1-resident 256-entry counters. Stability on
            // the initial ascending-item order means equal keys keep
            // ascending item order — identical to the sort paths below.
            let mut packed: Vec<u64> = members
                .iter()
                .map(|&i| {
                    let mut k = [0u64; 1];
                    sigs.band_key_into(i as usize, lo, width, &mut k);
                    (k[0] << 32) | i as u64
                })
                .collect();
            let mut tmp = vec![0u64; n];
            for pass in 0..2 {
                let shift = 32 + pass * 8;
                let mut counts = [0u32; 257];
                for &p in &packed {
                    counts[(p >> shift & 0xff) as usize + 1] += 1;
                }
                for c in 1..257 {
                    counts[c] += counts[c - 1];
                }
                for &p in &packed {
                    let b = (p >> shift & 0xff) as usize;
                    tmp[counts[b] as usize] = p;
                    counts[b] += 1;
                }
                std::mem::swap(&mut packed, &mut tmp);
            }
            let mut keys = Vec::with_capacity(n);
            let mut items = Vec::with_capacity(n);
            for p in packed {
                keys.push(p >> 32);
                items.push(p as u32);
            }
            return BandTable {
                stride: 1,
                keys,
                items,
            };
        }
        if stride == 1 && width <= 32 {
            // Fast path for bands of ≤ 32 bits: pack `(key << 32) | item`
            // into one u64 and sort comparator-free — same order as the
            // general path (key ascending, item ascending within key).
            let mut packed: Vec<u64> = members
                .iter()
                .map(|&i| {
                    let mut k = [0u64; 1];
                    sigs.band_key_into(i as usize, lo, width, &mut k);
                    (k[0] << 32) | i as u64
                })
                .collect();
            packed.sort_unstable();
            let mut keys = Vec::with_capacity(n);
            let mut items = Vec::with_capacity(n);
            for p in packed {
                keys.push(p >> 32);
                items.push(p as u32);
            }
            return BandTable {
                stride: 1,
                keys,
                items,
            };
        }
        // General path: keys are indexed by *position* in `members`
        // (`raw[p]` is member p's key), sorted by (key, item id).
        let mut raw = vec![0u64; n * stride];
        for (p, &i) in members.iter().enumerate() {
            sigs.band_key_into(
                i as usize,
                lo,
                width,
                &mut raw[p * stride..(p + 1) * stride],
            );
        }
        let mut pos: Vec<u32> = (0..n as u32).collect();
        pos.sort_unstable_by(|&a, &b| {
            let ka = &raw[a as usize * stride..][..stride];
            let kb = &raw[b as usize * stride..][..stride];
            ka.cmp(kb)
                .then(members[a as usize].cmp(&members[b as usize]))
        });
        let mut keys = vec![0u64; n * stride];
        let mut items = Vec::with_capacity(n);
        for (r, &p) in pos.iter().enumerate() {
            keys[r * stride..(r + 1) * stride]
                .copy_from_slice(&raw[p as usize * stride..][..stride]);
            items.push(members[p as usize]);
        }
        BandTable {
            stride,
            keys,
            items,
        }
    }

    #[inline]
    pub(crate) fn key(&self, r: usize) -> &[u64] {
        &self.keys[r * self.stride..(r + 1) * self.stride]
    }

    /// Rows whose key equals `probe` (binary search on the sorted keys).
    pub(crate) fn equal_run(&self, probe: &[u64]) -> Range<usize> {
        let n = self.items.len();
        let lower = partition(n, |r| self.key(r) < probe);
        let upper = partition(n, |r| self.key(r) <= probe);
        lower..upper
    }
}

/// Validate banding parameters against an item/score shape — the
/// shared guard of [`LshIndex::try_from_scores`] and the incremental
/// index's constructors.
pub(crate) fn validate_lsh_shape(
    rows: usize,
    score_cols: usize,
    cfg: LshConfig,
) -> dc_core::DcResult<()> {
    use dc_core::DcError;
    if cfg.bands < 1 {
        return Err(DcError::invalid("LshIndex: at least one band"));
    }
    if cfg.rows_per_band < 1 {
        return Err(DcError::invalid("LshIndex: at least one row per band"));
    }
    if score_cols != cfg.bands * cfg.rows_per_band {
        return Err(DcError::invalid(format!(
            "LshIndex: {score_cols} score columns for {} bands × {} rows",
            cfg.bands, cfg.rows_per_band
        )));
    }
    if rows > u32::MAX as usize {
        return Err(DcError::limit("LshIndex: item count exceeds u32 range"));
    }
    Ok(())
}

/// Append item `row`'s multi-probe bit orders — per band, the `ppb`
/// band-relative bits with the smallest |margin| (ties by bit index, so
/// probe order is fully deterministic). Shared between the bulk build
/// and the incremental index's inserts, which keeps their probe sets
/// identical for identical score rows.
pub(crate) fn push_row_flips(
    row: &[f32],
    bands: usize,
    width: usize,
    ppb: usize,
    order: &mut Vec<u16>,
    out: &mut Vec<u16>,
) {
    for b in 0..bands {
        let band = &row[b * width..(b + 1) * width];
        order.clear();
        order.extend(0..width as u16);
        order.sort_unstable_by(|&x, &y| {
            band[x as usize]
                .abs()
                .total_cmp(&band[y as usize].abs())
                .then(x.cmp(&y))
        });
        out.extend_from_slice(&order[..ppb]);
    }
}

/// First `r` in `0..n` where `pred(r)` turns false (`pred` monotone).
fn partition(n: usize, pred: impl Fn(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (0, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// A banded LSH index over one set of vectors (self-join retrieval).
pub struct LshIndex {
    cfg: LshConfig,
    sigs: SignatureSet,
    tables: Vec<BandTable>,
    /// Per `(item, band, probe)`: the band-relative bit to flip,
    /// ordered by ascending score margin. Present iff `cfg.probes > 0`.
    flips: Option<Vec<u16>>,
    /// Effective probes per band (`cfg.probes` clamped to the band width).
    probes_per_band: usize,
}

impl LshIndex {
    /// Build from `n×d` item vectors and `(bands·rows_per_band)×d`
    /// hyperplanes. Signature bits are the signs of one blocked kernel
    /// matmul, so they are identical for every `DC_THREADS` setting.
    pub fn build(vectors: &Tensor, planes: &Tensor, cfg: LshConfig) -> Self {
        assert_eq!(
            planes.rows,
            cfg.bands * cfg.rows_per_band,
            "LshIndex::build: {} planes for {} bands × {} rows",
            planes.rows,
            cfg.bands,
            cfg.rows_per_band
        );
        Self::from_scores(&sign_scores(vectors, planes), cfg)
    }

    /// Build from a precomputed `n×nbits` score matrix (the margins of
    /// `vectors · planesᵀ`). Panics on a malformed configuration;
    /// service code should use [`LshIndex::try_from_scores`].
    pub fn from_scores(scores: &Tensor, cfg: LshConfig) -> Self {
        Self::try_from_scores(scores, cfg).unwrap_or_else(|e| panic!("LshIndex::from_scores: {e}"))
    }

    /// [`LshIndex::from_scores`] with configuration validation instead
    /// of panics.
    pub fn try_from_scores(scores: &Tensor, cfg: LshConfig) -> dc_core::DcResult<Self> {
        let _build = IDX_BUILD.start();
        IDX_SIGNATURES.add(scores.rows as u64);
        validate_lsh_shape(scores.rows, scores.cols, cfg)?;
        let sigs = SignatureSet::from_scores(scores);
        let tables: Vec<BandTable> = (0..cfg.bands)
            .map(|b| BandTable::build(&sigs, b * cfg.rows_per_band, cfg.rows_per_band))
            .collect();
        let probes_per_band = cfg.probes.min(cfg.rows_per_band);
        let flips = (probes_per_band > 0).then(|| {
            let n = scores.rows;
            let mut flips = Vec::with_capacity(n * cfg.bands * probes_per_band);
            let mut order: Vec<u16> = Vec::new();
            for i in 0..n {
                push_row_flips(
                    scores.row_slice(i),
                    cfg.bands,
                    cfg.rows_per_band,
                    probes_per_band,
                    &mut order,
                    &mut flips,
                );
            }
            flips
        });
        Ok(LshIndex {
            cfg,
            sigs,
            tables,
            flips,
            probes_per_band,
        })
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.sigs.len()
    }

    /// True when no items are indexed.
    pub fn is_empty(&self) -> bool {
        self.sigs.is_empty()
    }

    /// The banding configuration.
    pub fn config(&self) -> LshConfig {
        self.cfg
    }

    /// The packed signatures backing the index.
    pub fn signatures(&self) -> &SignatureSet {
        &self.sigs
    }

    /// Stream of exact-band candidate pairs, ordered `(min, max)`.
    ///
    /// The common-consumer path: nothing is materialized, but a pair
    /// sharing several bands appears once per shared band. Run it
    /// through [`dedup_pairs`] (or use [`LshIndex::candidate_pairs`])
    /// when an exact set is needed. Multi-probe pairs are *not* in the
    /// stream; they come from [`LshIndex::probe_pairs`].
    pub fn candidate_stream(&self) -> CandidateStream<'_> {
        CandidateStream {
            tables: &self.tables,
            band: 0,
            run_end: 0,
            x: 0,
            y: 0,
        }
    }

    /// Multi-probe candidate pairs: for each item and band, the buckets
    /// reached by flipping its lowest-margin bits. Empty when
    /// [`LshConfig::probes`] is 0. May repeat pairs; dedup downstream.
    pub fn probe_pairs(&self) -> Vec<(usize, usize)> {
        let Some(flips) = &self.flips else {
            return Vec::new();
        };
        let width = self.cfg.rows_per_band;
        let ppb = self.probes_per_band;
        let mut out = Vec::new();
        let mut key = vec![0u64; width.div_ceil(64).max(1)];
        for i in 0..self.len() {
            for (b, table) in self.tables.iter().enumerate() {
                let lo = b * width;
                for p in 0..ppb {
                    let rel = flips[(i * self.cfg.bands + b) * ppb + p] as usize;
                    self.sigs.band_key_into(i, lo, width, &mut key);
                    key[rel / 64] ^= 1u64 << (rel % 64);
                    IDX_PROBE_LOOKUPS.incr();
                    for r in table.equal_run(&key) {
                        let j = table.items[r] as usize;
                        out.push((i.min(j), i.max(j)));
                    }
                }
            }
        }
        IDX_PROBE_CANDIDATES.add(out.len() as u64);
        out
    }

    /// The exact deduplicated candidate pair set (banding plus
    /// multi-probe), sorted ascending.
    ///
    /// Equivalent to `dedup_pairs(candidate_stream().chain(
    /// probe_pairs()))` but walks the band tables directly: in-bucket
    /// items are already ascending, so pair codes are emitted in one
    /// tight loop without the stream's per-pair state machine.
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let mut codes: Vec<u64> = Vec::new();
        for t in &self.tables {
            let n = t.items.len();
            let mut start = 0;
            while start < n {
                let mut end = start + 1;
                while end < n && t.key(end) == t.key(start) {
                    end += 1;
                }
                for x in start..end {
                    let i = (t.items[x] as u64) << 32;
                    for y in x + 1..end {
                        codes.push(i | t.items[y] as u64);
                    }
                }
                start = end;
            }
        }
        codes.extend(
            self.probe_pairs()
                .into_iter()
                .map(|(i, j)| ((i as u64) << 32) | j as u64),
        );
        IDX_CANDIDATES_RAW.add(codes.len() as u64);
        codes.sort_unstable();
        codes.dedup();
        IDX_CANDIDATES_UNIQUE.add(codes.len() as u64);
        codes
            .into_iter()
            .map(|c| ((c >> 32) as usize, (c & 0xffff_ffff) as usize))
            .collect()
    }
}

/// Iterator over in-bucket pairs of every band (see
/// [`LshIndex::candidate_stream`]).
pub struct CandidateStream<'a> {
    tables: &'a [BandTable],
    band: usize,
    /// End row of the current equal-key run (0 = no run loaded).
    run_end: usize,
    /// Next pair to emit: rows `x < y` within the current run.
    x: usize,
    y: usize,
}

impl Iterator for CandidateStream<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.band < self.tables.len() {
            let t = &self.tables[self.band];
            if self.y < self.run_end {
                let pair = (t.items[self.x] as usize, t.items[self.y] as usize);
                IDX_STREAM_PAIRS.incr();
                self.y += 1;
                if self.y == self.run_end {
                    self.x += 1;
                    self.y = self.x + 1;
                }
                return Some(pair);
            }
            // Scan forward for the next run of >= 2 equal keys.
            let n = t.items.len();
            let mut start = self.run_end.max(self.x);
            let mut found = false;
            while start < n {
                let mut end = start + 1;
                while end < n && t.key(end) == t.key(start) {
                    end += 1;
                }
                if end - start >= 2 {
                    self.run_end = end;
                    self.x = start;
                    self.y = start + 1;
                    found = true;
                    break;
                }
                start = end;
            }
            if !found {
                self.band += 1;
                self.run_end = 0;
                self.x = 0;
                self.y = 0;
            }
        }
        None
    }
}

/// Deduplicate a pair stream into a sorted `(min, max)` pair list —
/// packed `u64` codes, sort, dedup: one allocation, no hashing.
pub fn dedup_pairs(pairs: impl IntoIterator<Item = (usize, usize)>) -> Vec<(usize, usize)> {
    let mut codes: Vec<u64> = pairs
        .into_iter()
        .map(|(i, j)| {
            debug_assert!(i < j && j <= u32::MAX as usize, "pair ({i}, {j})");
            ((i as u64) << 32) | j as u64
        })
        .collect();
    IDX_DEDUP_IN.add(codes.len() as u64);
    codes.sort_unstable();
    codes.dedup();
    IDX_DEDUP_OUT.add(codes.len() as u64);
    codes
        .into_iter()
        .map(|c| ((c >> 32) as usize, (c & 0xffff_ffff) as usize))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Score matrix whose signs are given directly (±1), so bucket
    /// membership is transparent.
    fn scores_from_bits(rows: &[&[u8]]) -> Tensor {
        let n = rows.len();
        let nbits = rows[0].len();
        let data = rows
            .iter()
            .flat_map(|r| r.iter().map(|&b| if b == 1 { 1.0 } else { -1.0 }))
            .collect();
        Tensor::from_vec(n, nbits, data)
    }

    #[test]
    fn exact_band_collisions_stream_once_per_band() {
        // Items 0 and 1 share band 0; items 0, 1, 2 share band 1.
        let scores = scores_from_bits(&[&[1, 1, 0, 0], &[1, 1, 0, 0], &[0, 0, 0, 0]]);
        let idx = LshIndex::from_scores(
            &scores,
            LshConfig {
                bands: 2,
                rows_per_band: 2,
                probes: 0,
            },
        );
        let streamed: Vec<_> = idx.candidate_stream().collect();
        // Band 0: (0,1). Band 1: (0,1), (0,2), (1,2).
        assert_eq!(streamed, vec![(0, 1), (0, 1), (0, 2), (1, 2)]);
        assert_eq!(idx.candidate_pairs(), vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn dedup_pairs_sorts_and_dedups() {
        let pairs = vec![(3, 9), (0, 1), (3, 9), (0, 2)];
        assert_eq!(dedup_pairs(pairs), vec![(0, 1), (0, 2), (3, 9)]);
        assert!(dedup_pairs(Vec::new()).is_empty());
    }

    #[test]
    fn empty_index_streams_nothing() {
        let idx = LshIndex::from_scores(
            &Tensor::zeros(0, 4),
            LshConfig {
                bands: 2,
                rows_per_band: 2,
                probes: 1,
            },
        );
        assert!(idx.is_empty());
        assert_eq!(idx.candidate_stream().count(), 0);
        assert!(idx.candidate_pairs().is_empty());
    }

    #[test]
    fn multi_probe_recovers_near_boundary_neighbours() {
        // Items 0/1 differ only on bit 1, where item 0's margin is
        // tiny: one band of 2 bits never collides exactly, but one
        // probe flips exactly that bit.
        let scores = Tensor::from_vec(2, 2, vec![1.0, 0.001, 1.0, -1.0]);
        let cfg = |probes| LshConfig {
            bands: 1,
            rows_per_band: 2,
            probes,
        };
        let exact = LshIndex::from_scores(&scores, cfg(0));
        assert!(exact.candidate_pairs().is_empty());
        let probed = LshIndex::from_scores(&scores, cfg(1));
        assert_eq!(probed.candidate_pairs(), vec![(0, 1)]);
    }

    #[test]
    fn probe_pairs_are_a_superset_preserving_exact_pairs() {
        // Random-ish deterministic scores; probing may only add pairs.
        let n = 40;
        let nbits = 12;
        let data: Vec<f32> = (0..n * nbits)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
            })
            .collect();
        let scores = Tensor::from_vec(n, nbits, data);
        let cfg = |probes| LshConfig {
            bands: 3,
            rows_per_band: 4,
            probes,
        };
        let exact: HashSet<_> = LshIndex::from_scores(&scores, cfg(0))
            .candidate_pairs()
            .into_iter()
            .collect();
        let probed: HashSet<_> = LshIndex::from_scores(&scores, cfg(2))
            .candidate_pairs()
            .into_iter()
            .collect();
        assert!(exact.is_subset(&probed));
        assert!(probed.len() > exact.len(), "probing added nothing");
    }

    #[test]
    fn wide_bands_use_multi_word_keys() {
        // 2 bands × 70 bits: keys straddle u64 words.
        let n = 6;
        let nbits = 140;
        let mut rows: Vec<Vec<u8>> = (0..n)
            .map(|i| {
                (0..nbits)
                    .map(|j| ((i * 31 + j * 7) % 3 == 0) as u8)
                    .collect()
            })
            .collect();
        rows[4] = rows[1].clone(); // plant an exact duplicate
        let refs: Vec<&[u8]> = rows.iter().map(|r| r.as_slice()).collect();
        let idx = LshIndex::from_scores(
            &scores_from_bits(&refs),
            LshConfig {
                bands: 2,
                rows_per_band: 70,
                probes: 0,
            },
        );
        let pairs = idx.candidate_pairs();
        assert!(pairs.contains(&(1, 4)), "{pairs:?}");
    }
}
