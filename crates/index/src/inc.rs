//! Incremental banded LSH: insert/delete without a full rebuild.
//!
//! [`crate::LshIndex`]'s radix-sorted band tables are immutable — the
//! right trade for batch blocking, the wrong one for a long-lived
//! service where tenants stream inserts and deletes. The incremental
//! index keeps the same banding math but splits each band's items into
//! two tiers:
//!
//! * a **sorted tier** — the last compaction's alive items in a
//!   [`BandTable`] (radix/packed-sorted, binary-searchable), exactly as
//!   in the batch index;
//! * an **overflow tier** — every item inserted since, kept as one
//!   shared append-only list and sorted *at query time* into a small
//!   per-band [`BandTable`] (sorting only the overflow, not the world).
//!
//! Deletes are tombstones (`alive` bitmap) filtered during candidate
//! emission. [`IncrementalLshIndex::compact`] folds the overflow and
//! tombstones back into fresh sorted tables; dc-serve runs it from a
//! background maintenance thread once the overflow crosses a threshold.
//!
//! Candidate generation merges three pair sources per band — within the
//! sorted tier, within the overflow, and across the two — plus
//! multi-probe lookups against *both* tiers, then dedups packed pair
//! codes. The result is the **same pair set a full rebuild over the
//! alive items would produce** (modulo the rebuild's renumbering):
//! signatures and probe-flip orders are computed by the same shared
//! code ([`SignatureSet::push_scores`], the flip helper in `lsh.rs`),
//! and every alive item is in exactly one tier. `inc_equiv.rs` proves
//! the equality by proptest over insert/delete/compact interleavings.

use crate::lsh::{push_row_flips, validate_lsh_shape, BandTable, LshConfig};
use crate::sig::{sign_scores, SignatureSet};
use dc_core::{DcError, DcResult};
use dc_tensor::Tensor;

static INC_INSERTS: dc_obs::Counter = dc_obs::Counter::new("index.inc.inserts");
static INC_DELETES: dc_obs::Counter = dc_obs::Counter::new("index.inc.deletes");
static INC_COMPACTIONS: dc_obs::Counter = dc_obs::Counter::new("index.inc.compactions");
static INC_OVERFLOW: dc_obs::Gauge = dc_obs::Gauge::new("index.inc.overflow");
static INC_QUERY: dc_obs::Hist = dc_obs::Hist::new("index.inc.query");

/// A mutable banded LSH index: the service-side sibling of
/// [`crate::LshIndex`]. See the module docs for the tier design.
pub struct IncrementalLshIndex {
    cfg: LshConfig,
    probes_per_band: usize,
    /// Hyperplanes for [`Self::insert_vector`]; score-row inserts work
    /// without them.
    planes: Option<Tensor>,
    /// Signatures of every item ever inserted (tombstones included —
    /// ids are stable for the index's lifetime).
    sigs: SignatureSet,
    /// Per `(item, band, probe)` flip orders, same layout as the batch
    /// index. Empty when `probes == 0`.
    flips: Vec<u16>,
    alive: Vec<bool>,
    n_alive: usize,
    /// Sorted tier: one table per band over the last compaction's
    /// alive items.
    tables: Vec<BandTable>,
    /// Overflow tier: ids inserted since the last compaction, ascending
    /// (may contain tombstoned ids; filtered at query/compaction).
    recent: Vec<u32>,
}

impl IncrementalLshIndex {
    /// An empty index accepting [`Self::insert_scores`].
    pub fn new(cfg: LshConfig) -> DcResult<Self> {
        let nbits = cfg.bands.saturating_mul(cfg.rows_per_band);
        validate_lsh_shape(0, nbits, cfg)?;
        let sigs = SignatureSet::with_bits(nbits);
        let tables = (0..cfg.bands)
            .map(|b| BandTable::build(&sigs, b * cfg.rows_per_band, cfg.rows_per_band))
            .collect();
        Ok(IncrementalLshIndex {
            cfg,
            probes_per_band: cfg.probes.min(cfg.rows_per_band),
            planes: None,
            sigs,
            flips: Vec::new(),
            alive: Vec::new(),
            n_alive: 0,
            tables,
            recent: Vec::new(),
        })
    }

    /// An empty index carrying `(bands·rows_per_band)×d` hyperplanes so
    /// raw `d`-dim vectors can be inserted directly.
    pub fn with_planes(planes: Tensor, cfg: LshConfig) -> DcResult<Self> {
        let nbits = cfg.bands.saturating_mul(cfg.rows_per_band);
        if planes.rows != nbits {
            return Err(DcError::invalid(format!(
                "IncrementalLshIndex: {} planes for {} bands × {} rows",
                planes.rows, cfg.bands, cfg.rows_per_band
            )));
        }
        let mut idx = Self::new(cfg)?;
        idx.planes = Some(planes);
        Ok(idx)
    }

    /// Bulk-build from a score matrix (all items land in the sorted
    /// tier, as after a compaction).
    pub fn from_scores(scores: &Tensor, cfg: LshConfig) -> DcResult<Self> {
        validate_lsh_shape(scores.rows, scores.cols, cfg)?;
        let mut idx = Self::new(cfg)?;
        for i in 0..scores.rows {
            idx.insert_scores(scores.row_slice(i))?;
        }
        idx.compact();
        Ok(idx)
    }

    /// The banding configuration.
    pub fn config(&self) -> LshConfig {
        self.cfg
    }

    /// Total ids ever issued (tombstones included).
    pub fn len(&self) -> usize {
        self.alive.len()
    }

    /// True when no item was ever inserted.
    pub fn is_empty(&self) -> bool {
        self.alive.is_empty()
    }

    /// Number of live (non-tombstoned) items.
    pub fn alive_count(&self) -> usize {
        self.n_alive
    }

    /// True when `id` exists and is not tombstoned.
    pub fn is_alive(&self, id: usize) -> bool {
        self.alive.get(id).copied().unwrap_or(false)
    }

    /// Items currently in the overflow tier (tombstoned ones included);
    /// the background-compaction trigger.
    pub fn overflow_len(&self) -> usize {
        self.recent.len()
    }

    /// Insert one item by its `nbits` hyperplane margins; returns the
    /// new item's id. O(overflow) — no sorted-tier rebuild.
    pub fn insert_scores(&mut self, row: &[f32]) -> DcResult<usize> {
        let nbits = self.cfg.bands * self.cfg.rows_per_band;
        if row.len() != nbits {
            return Err(DcError::invalid(format!(
                "insert: {} scores for {nbits}-bit signatures",
                row.len()
            )));
        }
        if self.alive.len() >= u32::MAX as usize {
            return Err(DcError::limit("IncrementalLshIndex: id space exhausted"));
        }
        let id = self.sigs.push_scores(row);
        if self.probes_per_band > 0 {
            let mut order = Vec::new();
            push_row_flips(
                row,
                self.cfg.bands,
                self.cfg.rows_per_band,
                self.probes_per_band,
                &mut order,
                &mut self.flips,
            );
        }
        self.alive.push(true);
        self.n_alive += 1;
        self.recent.push(id as u32);
        INC_INSERTS.incr();
        INC_OVERFLOW.set(self.recent.len() as u64);
        Ok(id)
    }

    /// Insert a raw `d`-dim vector (requires construction via
    /// [`Self::with_planes`]); its margins are one kernel matvec.
    pub fn insert_vector(&mut self, v: &[f32]) -> DcResult<usize> {
        let planes = self
            .planes
            .as_ref()
            .ok_or_else(|| DcError::invalid("insert_vector: index built without hyperplanes"))?;
        if v.len() != planes.cols {
            return Err(DcError::invalid(format!(
                "insert_vector: {}-dim vector for {}-dim planes",
                v.len(),
                planes.cols
            )));
        }
        let row = sign_scores(&Tensor::from_vec(1, v.len(), v.to_vec()), planes);
        self.insert_scores(row.row_slice(0))
    }

    /// Tombstone an item. Its id stays allocated; candidates stop
    /// including it immediately.
    pub fn delete(&mut self, id: usize) -> DcResult<()> {
        match self.alive.get_mut(id) {
            Some(a) if *a => {
                *a = false;
                self.n_alive -= 1;
                INC_DELETES.incr();
                Ok(())
            }
            Some(_) => Err(DcError::not_found(format!("item {id} already deleted"))),
            None => Err(DcError::not_found(format!("item {id} does not exist"))),
        }
    }

    /// Fold the overflow tier and tombstones into fresh sorted band
    /// tables. Ids are preserved; only the tier assignment changes, so
    /// [`Self::candidate_pairs`] is unaffected (proven by proptest).
    pub fn compact(&mut self) {
        let members: Vec<u32> = (0..self.alive.len() as u32)
            .filter(|&i| self.alive[i as usize])
            .collect();
        let width = self.cfg.rows_per_band;
        self.tables = (0..self.cfg.bands)
            .map(|b| BandTable::build_subset(&self.sigs, b * width, width, &members))
            .collect();
        self.recent.clear();
        INC_COMPACTIONS.incr();
        INC_OVERFLOW.set(0);
    }

    /// The exact deduplicated candidate pair set over live items —
    /// banding plus multi-probe, sorted ascending `(min, max)`. Same
    /// pair set as a full [`crate::LshIndex`] rebuild over the live
    /// score rows (with rebuild ids mapped back through the live list).
    pub fn candidate_pairs(&self) -> Vec<(usize, usize)> {
        let _q = INC_QUERY.start();
        let width = self.cfg.rows_per_band;
        let ppb = self.probes_per_band;
        let recent_alive: Vec<u32> = self
            .recent
            .iter()
            .copied()
            .filter(|&i| self.alive[i as usize])
            .collect();
        let mut codes: Vec<u64> = Vec::new();
        let mut key = vec![0u64; width.div_ceil(64).max(1)];
        for (b, sorted) in self.tables.iter().enumerate() {
            let lo = b * width;
            let ovf = BandTable::build_subset(&self.sigs, lo, width, &recent_alive);
            // In-bucket pairs within each tier (sorted tier filtered
            // through the tombstone bitmap; overflow is pre-filtered).
            self.run_pairs(sorted, true, &mut codes);
            self.run_pairs(&ovf, false, &mut codes);
            // Cross-tier: each overflow key run against the sorted
            // tier's equal run. The tiers are disjoint, so no self
            // pairs can appear.
            let mut start = 0;
            while start < ovf.items.len() {
                let mut end = start + 1;
                while end < ovf.items.len() && ovf.key(end) == ovf.key(start) {
                    end += 1;
                }
                for r in sorted.equal_run(ovf.key(start)) {
                    let j = sorted.items[r] as usize;
                    if !self.alive[j] {
                        continue;
                    }
                    for x in start..end {
                        let i = ovf.items[x] as usize;
                        codes.push(((i.min(j) as u64) << 32) | i.max(j) as u64);
                    }
                }
                start = end;
            }
            // Multi-probe: flipped keys of every live item against both
            // tiers (a flipped key never equals the item's own key, so
            // no self pairs here either).
            if ppb > 0 {
                for i in 0..self.alive.len() {
                    if !self.alive[i] {
                        continue;
                    }
                    for p in 0..ppb {
                        let rel = self.flips[(i * self.cfg.bands + b) * ppb + p] as usize;
                        self.sigs.band_key_into(i, lo, width, &mut key);
                        key[rel / 64] ^= 1u64 << (rel % 64);
                        for r in sorted.equal_run(&key) {
                            let j = sorted.items[r] as usize;
                            if self.alive[j] {
                                codes.push(((i.min(j) as u64) << 32) | i.max(j) as u64);
                            }
                        }
                        for r in ovf.equal_run(&key) {
                            let j = ovf.items[r] as usize;
                            codes.push(((i.min(j) as u64) << 32) | i.max(j) as u64);
                        }
                    }
                }
            }
        }
        codes.sort_unstable();
        codes.dedup();
        codes
            .into_iter()
            .map(|c| ((c >> 32) as usize, (c & 0xffff_ffff) as usize))
            .collect()
    }

    /// Emit in-bucket pairs of one table; `filter` applies the
    /// tombstone bitmap (the overflow tables are built alive-only).
    fn run_pairs(&self, t: &BandTable, filter: bool, codes: &mut Vec<u64>) {
        let n = t.items.len();
        let mut start = 0;
        while start < n {
            let mut end = start + 1;
            while end < n && t.key(end) == t.key(start) {
                end += 1;
            }
            for x in start..end {
                let i = t.items[x] as usize;
                if filter && !self.alive[i] {
                    continue;
                }
                let hi = (i as u64) << 32;
                for y in x + 1..end {
                    let j = t.items[y] as usize;
                    if filter && !self.alive[j] {
                        continue;
                    }
                    codes.push(hi | j as u64);
                }
            }
            start = end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LshIndex;

    fn cfg(probes: usize) -> LshConfig {
        LshConfig {
            bands: 3,
            rows_per_band: 4,
            probes,
        }
    }

    fn det_scores(n: usize, nbits: usize, salt: u64) -> Vec<Vec<f32>> {
        (0..n)
            .map(|i| {
                (0..nbits)
                    .map(|j| {
                        let x = ((i * nbits + j) as u64)
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(salt);
                        ((x >> 33) as f32 / (1u64 << 31) as f32) - 0.5
                    })
                    .collect()
            })
            .collect()
    }

    /// Pair set of a fresh batch index over the live rows, mapped back
    /// to incremental ids.
    fn rebuild_pairs(inc: &IncrementalLshIndex, rows: &[Vec<f32>]) -> Vec<(usize, usize)> {
        let live: Vec<usize> = (0..rows.len()).filter(|&i| inc.is_alive(i)).collect();
        let nbits = rows.first().map(|r| r.len()).unwrap_or(0);
        let data: Vec<f32> = live.iter().flat_map(|&i| rows[i].iter().copied()).collect();
        let t = Tensor::from_vec(live.len(), nbits, data);
        let mut pairs: Vec<(usize, usize)> = LshIndex::from_scores(&t, inc.config())
            .candidate_pairs()
            .into_iter()
            .map(|(a, b)| {
                let (x, y) = (live[a], live[b]);
                (x.min(y), x.max(y))
            })
            .collect();
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn insert_delete_compact_matches_rebuild() {
        for probes in [0, 2] {
            let rows = det_scores(60, 12, 99);
            let mut inc = IncrementalLshIndex::new(cfg(probes)).unwrap();
            for r in &rows[..40] {
                inc.insert_scores(r).unwrap();
            }
            assert_eq!(inc.candidate_pairs(), rebuild_pairs(&inc, &rows));
            inc.compact();
            assert_eq!(inc.overflow_len(), 0);
            assert_eq!(inc.candidate_pairs(), rebuild_pairs(&inc, &rows));
            for r in &rows[40..] {
                inc.insert_scores(r).unwrap();
            }
            for id in [3, 17, 41, 59] {
                inc.delete(id).unwrap();
            }
            assert_eq!(inc.candidate_pairs(), rebuild_pairs(&inc, &rows));
            inc.compact();
            assert_eq!(inc.candidate_pairs(), rebuild_pairs(&inc, &rows));
            assert_eq!(inc.alive_count(), 56);
        }
    }

    #[test]
    fn errors_are_structured() {
        let mut inc = IncrementalLshIndex::new(cfg(1)).unwrap();
        assert_eq!(
            inc.insert_scores(&[0.0; 5]).unwrap_err().kind(),
            "invalid_input"
        );
        assert_eq!(inc.delete(0).unwrap_err().kind(), "not_found");
        let id = inc.insert_scores(&[1.0; 12]).unwrap();
        inc.delete(id).unwrap();
        assert_eq!(inc.delete(id).unwrap_err().kind(), "not_found");
        assert!(IncrementalLshIndex::new(LshConfig {
            bands: 0,
            rows_per_band: 4,
            probes: 0
        })
        .is_err());
        assert!(inc.insert_vector(&[1.0; 4]).is_err(), "no planes");
    }

    #[test]
    fn vector_inserts_go_through_planes() {
        let planes = Tensor::from_vec(12, 4, det_scores(12, 4, 7).into_iter().flatten().collect());
        let mut inc = IncrementalLshIndex::with_planes(planes.clone(), cfg(0)).unwrap();
        let vs = det_scores(10, 4, 21);
        for v in &vs {
            inc.insert_vector(v).unwrap();
        }
        // Same pair set as the batch index built from the same vectors.
        let data: Vec<f32> = vs.iter().flatten().copied().collect();
        let batch = LshIndex::build(&Tensor::from_vec(10, 4, data), &planes, cfg(0));
        assert_eq!(inc.candidate_pairs(), batch.candidate_pairs());
        assert_eq!(
            inc.insert_vector(&[0.0; 3]).unwrap_err().kind(),
            "invalid_input"
        );
    }
}
