//! Bit-packed sign signatures.
//!
//! A random-hyperplane signature assigns item `i` one bit per plane:
//! `sign(vᵢ · pⱼ)`. The seed representation (`Vec<bool>`, one dot loop
//! per plane) costs a heap allocation per item and defeats
//! vectorization; here the whole score matrix is one blocked
//! [`dc_tensor::kernel::matmul_t`] call (SIMD-dispatched, pool-parallel
//! above the kernel threshold, bitwise identical for every thread
//! count) and the signs are packed 64 per `u64` word, so Hamming
//! distance is `XOR` + `count_ones` over a handful of words.

use dc_tensor::kernel;
use dc_tensor::Tensor;

/// Raw hyperplane scores: `vectors · planesᵀ` for `n×d` item vectors
/// and `nbits×d` planes, through the blocked kernel. Row `i` holds the
/// `nbits` margins of item `i`; bit `j` of its signature is
/// `scores[i][j] >= 0`.
///
/// Runs as `matmul(vectors, planesᵀ)` rather than `matmul_t`: the
/// packed register-tiled GEMM sustains far higher throughput on the
/// skinny inner dimension typical of signatures (d « nbits « n), and
/// the one-off transpose of the small plane matrix is noise.
pub fn sign_scores(vectors: &Tensor, planes: &Tensor) -> Tensor {
    assert_eq!(
        vectors.cols, planes.cols,
        "sign_scores: item dim {} vs plane dim {}",
        vectors.cols, planes.cols
    );
    kernel::matmul(vectors, &kernel::transpose(planes))
}

/// `n` bit-packed signatures of `nbits` sign bits each.
#[derive(Clone, Debug)]
pub struct SignatureSet {
    n: usize,
    nbits: usize,
    words_per_sig: usize,
    /// Row-major packed bits: signature `i` occupies
    /// `words[i*words_per_sig .. (i+1)*words_per_sig]`; bit `j` lives
    /// in word `j / 64` at position `j % 64`. Tail bits are zero.
    words: Vec<u64>,
}

impl SignatureSet {
    /// Pack the signs of a precomputed score matrix (`n×nbits`).
    /// A score of exactly `0.0` packs as a set bit, matching the seed's
    /// `>= 0.0` convention.
    pub fn from_scores(scores: &Tensor) -> Self {
        let (n, nbits) = (scores.rows, scores.cols);
        let words_per_sig = nbits.div_ceil(64).max(1);
        let mut words = vec![0u64; n * words_per_sig];
        for i in 0..n {
            let row = scores.row_slice(i);
            let sig = &mut words[i * words_per_sig..(i + 1) * words_per_sig];
            // Branchless word-at-a-time build (the comparison lowers to
            // a SIMD/cmov mask) — the per-bit `if` + indexed `|=` was
            // the single hottest loop of index construction.
            for (slot, chunk) in sig.iter_mut().zip(row.chunks(64)) {
                let mut word = 0u64;
                for (j, &s) in chunk.iter().enumerate() {
                    word |= u64::from(s >= 0.0) << j;
                }
                *slot = word;
            }
        }
        SignatureSet {
            n,
            nbits,
            words_per_sig,
            words,
        }
    }

    /// Compute scores through the blocked kernel and pack their signs.
    pub fn compute(vectors: &Tensor, planes: &Tensor) -> Self {
        Self::from_scores(&sign_scores(vectors, planes))
    }

    /// An empty set of `nbits`-bit signatures, ready for
    /// [`Self::push_scores`] — the growable backing of the incremental
    /// index.
    pub fn with_bits(nbits: usize) -> Self {
        SignatureSet {
            n: 0,
            nbits,
            words_per_sig: nbits.div_ceil(64).max(1),
            words: Vec::new(),
        }
    }

    /// Append one signature packed from a score row (`nbits` margins,
    /// same `>= 0.0` sign convention as [`Self::from_scores`]). Returns
    /// the new signature's index.
    pub fn push_scores(&mut self, row: &[f32]) -> usize {
        assert_eq!(row.len(), self.nbits, "push_scores: score width mismatch");
        let start = self.words.len();
        self.words.resize(start + self.words_per_sig, 0);
        let sig = &mut self.words[start..];
        for (slot, chunk) in sig.iter_mut().zip(row.chunks(64)) {
            let mut word = 0u64;
            for (j, &s) in chunk.iter().enumerate() {
                word |= u64::from(s >= 0.0) << j;
            }
            *slot = word;
        }
        self.n += 1;
        self.n - 1
    }

    /// Number of signatures.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the set holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Bits per signature.
    pub fn nbits(&self) -> usize {
        self.nbits
    }

    /// `u64` words per signature.
    pub fn words_per_sig(&self) -> usize {
        self.words_per_sig
    }

    /// The packed words of signature `i`.
    #[inline]
    pub fn sig(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_sig..(i + 1) * self.words_per_sig]
    }

    /// Bit `j` of signature `i`.
    #[inline]
    pub fn bit(&self, i: usize, j: usize) -> bool {
        debug_assert!(j < self.nbits);
        self.sig(i)[j / 64] >> (j % 64) & 1 == 1
    }

    /// Hamming distance between signatures `i` and `j`.
    #[inline]
    pub fn hamming(&self, i: usize, j: usize) -> u32 {
        self.sig(i)
            .iter()
            .zip(self.sig(j))
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distance between signature `i` and a foreign packed
    /// signature (e.g. a query from another [`SignatureSet`] with the
    /// same plane count).
    #[inline]
    pub fn hamming_to(&self, i: usize, other: &[u64]) -> u32 {
        debug_assert_eq!(other.len(), self.words_per_sig);
        self.sig(i)
            .iter()
            .zip(other)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// Hamming distances of signatures `lo..hi` against a foreign
    /// packed signature, appended to `out` as `u16` (funnel signatures
    /// stay far below `u16::MAX` bits). Equivalent to calling
    /// [`Self::hamming_to`] per index; on x86-64 the 256-bit (4-word)
    /// layout dispatches to an AVX2 vpshufb nibble-LUT popcount — one
    /// ymm XOR + two table lookups per signature instead of four
    /// sequential POPCNTs — and other widths get the loop recompiled
    /// inside a `#[target_feature(enable = "popcnt")]` wrapper so
    /// `count_ones` lowers to the POPCNT instruction instead of the
    /// baseline bit-twiddling expansion. Popcount is an integer op, so
    /// every lane is exactly equal and the funnel's candidate set
    /// cannot depend on the host CPU.
    pub fn hamming_range_into(&self, lo: usize, hi: usize, other: &[u64], out: &mut Vec<u16>) {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            if self.words_per_sig == 4 && std::arch::is_x86_feature_detected!("avx2") {
                // SAFETY: AVX2 support was verified at runtime on the
                // line above.
                unsafe { self.hamming_range_avx2(lo, hi, other, out) };
                return;
            }
            if std::arch::is_x86_feature_detected!("popcnt") {
                // SAFETY: POPCNT support was verified at runtime on the
                // line above; the wrapper body is otherwise safe code.
                unsafe { self.hamming_range_popcnt(lo, hi, other, out) };
                return;
            }
        }
        self.hamming_range_body(lo, hi, other, out);
    }

    /// 256-bit signatures as one ymm row each: XOR against the query,
    /// count bits per byte via the classic vpshufb nibble lookup, and
    /// reduce with `psadbw`. Bitwise the same distances as
    /// [`Self::hamming_to`].
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[target_feature(enable = "avx2")]
    unsafe fn hamming_range_avx2(&self, lo: usize, hi: usize, other: &[u64], out: &mut Vec<u16>) {
        use std::arch::x86_64::*;
        debug_assert_eq!(self.words_per_sig, 4);
        debug_assert_eq!(other.len(), 4);
        let words = &self.words[lo * 4..hi * 4];
        out.reserve(hi - lo);
        // SAFETY: `other` holds exactly 4 u64 = 32 bytes; unaligned load.
        let q = unsafe { _mm256_loadu_si256(other.as_ptr().cast()) };
        #[rustfmt::skip]
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_nibbles = _mm256_set1_epi8(0x0f);
        for row in words.chunks_exact(4) {
            // SAFETY: `chunks_exact(4)` guarantees 4 u64 = 32 readable
            // bytes at `row`; unaligned load.
            let v = unsafe { _mm256_loadu_si256(row.as_ptr().cast()) };
            let x = _mm256_xor_si256(v, q);
            let lo4 = _mm256_and_si256(x, low_nibbles);
            let hi4 = _mm256_and_si256(_mm256_srli_epi16::<4>(x), low_nibbles);
            // Per-byte bit counts (each ≤ 8, sums ≤ 16: no byte overflow),
            // then psadbw folds the 32 bytes into four u64 lanes.
            let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo4), _mm256_shuffle_epi8(lut, hi4));
            let sad = _mm256_sad_epu8(cnt, _mm256_setzero_si256());
            let s = _mm_add_epi64(
                _mm256_castsi256_si128(sad),
                _mm256_extracti128_si256::<1>(sad),
            );
            let d = _mm_cvtsi128_si64(s) + _mm_extract_epi64::<1>(s);
            out.push(d as u16);
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[target_feature(enable = "popcnt")]
    unsafe fn hamming_range_popcnt(&self, lo: usize, hi: usize, other: &[u64], out: &mut Vec<u16>) {
        self.hamming_range_body(lo, hi, other, out);
    }

    #[inline(always)]
    fn hamming_range_body(&self, lo: usize, hi: usize, other: &[u64], out: &mut Vec<u16>) {
        let w = self.words_per_sig;
        debug_assert_eq!(other.len(), w);
        let words = &self.words[lo * w..hi * w];
        out.reserve(hi - lo);
        // The default funnel width (256 bits = 4 words) gets a
        // fixed-width loop: converting `other` to an array up front
        // lets the compiler drop every per-word bounds check.
        if let Ok(o) = <[u64; 4]>::try_from(other) {
            for row in words.chunks_exact(4) {
                let d = (row[0] ^ o[0]).count_ones()
                    + (row[1] ^ o[1]).count_ones()
                    + (row[2] ^ o[2]).count_ones()
                    + (row[3] ^ o[3]).count_ones();
                out.push(d as u16);
            }
        } else if w == 0 {
            out.resize(out.len() + (hi - lo), 0);
        } else {
            for row in words.chunks_exact(w) {
                let d: u32 = row
                    .iter()
                    .zip(other)
                    .map(|(a, b)| (a ^ b).count_ones())
                    .sum();
                out.push(d as u16);
            }
        }
    }

    /// Signature `i` unpacked to the seed's `Vec<bool>` layout.
    pub fn to_bools(&self, i: usize) -> Vec<bool> {
        (0..self.nbits).map(|j| self.bit(i, j)).collect()
    }

    /// Gather bits `lo..lo+width` of signature `i` into `out`
    /// (`width.div_ceil(64)` words, little-endian within the band).
    /// Bands need not align to word boundaries.
    pub fn band_key_into(&self, i: usize, lo: usize, width: usize, out: &mut [u64]) {
        debug_assert!(lo + width <= self.nbits, "band beyond signature");
        debug_assert_eq!(out.len(), width.div_ceil(64));
        let sig = self.sig(i);
        for (w, slot) in out.iter_mut().enumerate() {
            let start = lo + w * 64;
            let len = (width - w * 64).min(64);
            *slot = extract_bits(sig, start, len);
        }
    }
}

/// `len <= 64` bits of `words` starting at bit `start`, right-aligned.
#[inline]
fn extract_bits(words: &[u64], start: usize, len: usize) -> u64 {
    let wi = start / 64;
    let off = start % 64;
    let mut v = words[wi] >> off;
    if off != 0 && wi + 1 < words.len() {
        v |= words[wi + 1] << (64 - off);
    }
    if len < 64 {
        v &= (1u64 << len) - 1;
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planes_2d() -> Tensor {
        // Four axis/diagonal planes in 2-D.
        Tensor::from_vec(4, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, -1.0])
    }

    #[test]
    fn packing_matches_score_signs() {
        let v = Tensor::from_vec(3, 2, vec![2.0, 1.0, -1.0, 0.5, -0.25, -4.0]);
        let p = planes_2d();
        let scores = sign_scores(&v, &p);
        let sigs = SignatureSet::compute(&v, &p);
        assert_eq!(sigs.len(), 3);
        assert_eq!(sigs.nbits(), 4);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(sigs.bit(i, j), scores.get(i, j) >= 0.0, "item {i} bit {j}");
            }
        }
    }

    #[test]
    fn hamming_counts_differing_bits() {
        let v = Tensor::from_vec(2, 2, vec![1.0, 0.5, -1.0, -0.5]);
        let sigs = SignatureSet::compute(&v, &planes_2d());
        // Opposite vectors differ on every plane.
        assert_eq!(sigs.hamming(0, 1), 4);
        assert_eq!(sigs.hamming(0, 0), 0);
        assert_eq!(sigs.hamming_to(1, sigs.sig(0)), 4);
    }

    #[test]
    fn hamming_range_matches_per_index_path() {
        // Cover both the 256-bit AVX2/popcnt fast lane (4 words) and
        // the generic width arm (100 bits = 2 words) against the
        // scalar per-index `hamming_to` on deterministic signatures.
        for nbits in [256usize, 100] {
            let n = 73;
            let scores = Tensor::from_vec(
                n + 1,
                nbits,
                (0..(n + 1) * nbits)
                    .map(|v| {
                        let h = (v as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                        if h >> 63 == 0 {
                            1.0
                        } else {
                            -1.0
                        }
                    })
                    .collect(),
            );
            let sigs = SignatureSet::from_scores(&scores);
            let query: Vec<u64> = sigs.sig(n).to_vec();
            let mut got: Vec<u16> = Vec::new();
            sigs.hamming_range_into(5, n, &query, &mut got);
            let want: Vec<u16> = (5..n).map(|i| sigs.hamming_to(i, &query) as u16).collect();
            assert_eq!(got, want, "nbits={nbits}");
        }
    }

    #[test]
    fn band_keys_straddle_word_boundaries() {
        // 100 bits: alternating pattern, extract a band crossing bit 64.
        let scores = Tensor::from_vec(
            1,
            100,
            (0..100)
                .map(|j| if j % 3 == 0 { 1.0 } else { -1.0 })
                .collect(),
        );
        let sigs = SignatureSet::from_scores(&scores);
        let mut key = [0u64; 1];
        sigs.band_key_into(0, 60, 10, &mut key);
        let expect: u64 = (0..10)
            .map(|b| u64::from((60 + b) % 3 == 0) << b)
            .fold(0, |a, x| a | x);
        assert_eq!(key[0], expect);
        // Full multi-word gather round-trips through to_bools.
        let mut wide = [0u64; 2];
        sigs.band_key_into(0, 0, 100, &mut wide);
        let bools = sigs.to_bools(0);
        for (j, &b) in bools.iter().enumerate() {
            assert_eq!(wide[j / 64] >> (j % 64) & 1 == 1, b, "bit {j}");
        }
    }

    #[test]
    fn zero_scores_pack_as_set_bits() {
        let scores = Tensor::zeros(2, 3);
        let sigs = SignatureSet::from_scores(&scores);
        assert_eq!(sigs.to_bools(0), vec![true; 3]);
        assert_eq!(sigs.hamming(0, 1), 0);
    }
}
