//! dc-index self-test: checks the packed-signature, banded-candidate
//! and top-k paths against naive in-file references. Silent on success
//! (per-check tallies go to dc-obs counters; set `DC_OBS` to dump the
//! final `ObsReport`, which also carries the index-layer candidate
//! counters the checks exercised); exits non-zero with the failed
//! check names on stderr otherwise, so `scripts/lint.sh` can gate on
//! it under every `DC_THREADS` setting.

use dc_index::{
    dedup_pairs, topk_scores, CosineIndex, FunnelConfig, LshConfig, LshIndex, Order, SignatureSet,
};
use dc_tensor::Tensor;
use std::collections::{HashMap, HashSet};

/// Deterministic quantized values on the grid k/8, |k| ≤ 32: small
/// dims keep every dot product exact in f32, so sign bits cannot
/// differ between the blocked kernel and a sequential reference.
fn quantized(n: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed | 1;
    let data = (0..n * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((state >> 33) % 65) as i64 - 32;
            k as f32 / 8.0
        })
        .collect();
    Tensor::from_vec(n, cols, data)
}

/// The seed's signature path: one sequential dot per plane, `>= 0.0`.
fn naive_signature(v: &[f32], planes: &Tensor) -> Vec<bool> {
    (0..planes.rows)
        .map(|p| {
            let row = planes.row_slice(p);
            let dot: f32 = v.iter().zip(row).map(|(a, b)| a * b).sum();
            dot >= 0.0
        })
        .collect()
}

/// The seed's banded bucketer over `Vec<bool>` signatures.
fn naive_pairs(sigs: &[Vec<bool>], bands: usize, rows_per_band: usize) -> HashSet<(usize, usize)> {
    let mut out = HashSet::new();
    for b in 0..bands {
        let mut buckets: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
        for (i, sig) in sigs.iter().enumerate() {
            let key = sig[b * rows_per_band..(b + 1) * rows_per_band].to_vec();
            buckets.entry(key).or_default().push(i);
        }
        for members in buckets.values() {
            for x in 0..members.len() {
                for y in x + 1..members.len() {
                    out.insert((members[x], members[y]));
                }
            }
        }
    }
    out
}

fn main() {
    // Always tally checks, whatever the DC_OBS environment says; the
    // env only controls whether the report is dumped at the end.
    dc_obs::set_enabled(true);
    let mut failures: Vec<String> = Vec::new();
    let mut check = |name: &str, ok: bool| {
        dc_obs::counter_add("selftest", "checks", 1);
        if !ok {
            dc_obs::counter_add("selftest", "failures", 1);
            failures.push(name.to_string());
        }
    };

    let cfg = LshConfig {
        bands: 6,
        rows_per_band: 5,
        probes: 0,
    };
    let nbits = cfg.bands * cfg.rows_per_band;
    let vectors = quantized(300, 6, 0x5eed);
    let planes = quantized(nbits, 6, 0x71a_e5ab);
    let naive_sigs: Vec<Vec<bool>> = (0..vectors.rows)
        .map(|i| naive_signature(vectors.row_slice(i), &planes))
        .collect();

    // 1. Packed signatures agree bit-for-bit with the seed path.
    let sigs = SignatureSet::compute(&vectors, &planes);
    let pack_ok = (0..vectors.rows).all(|i| sigs.to_bools(i) == naive_sigs[i]);
    check("packed signatures match seed Vec<bool> path", pack_ok);

    // 2. Hamming via count_ones agrees with bit-by-bit counting.
    let ham_ok = (0..20).all(|i| {
        let j = vectors.rows - 1 - i;
        let naive: u32 = naive_sigs[i]
            .iter()
            .zip(&naive_sigs[j])
            .map(|(a, b)| u32::from(a != b))
            .sum();
        sigs.hamming(i, j) == naive
    });
    check("packed hamming matches naive count", ham_ok);

    // 3. Banded candidates equal the seed HashMap/HashSet bucketer.
    let index = LshIndex::build(&vectors, &planes, cfg);
    let expect = naive_pairs(&naive_sigs, cfg.bands, cfg.rows_per_band);
    let got: HashSet<(usize, usize)> = index.candidate_pairs().into_iter().collect();
    check(
        &format!(
            "candidate pairs match seed bucketer ({} pairs)",
            expect.len()
        ),
        got == expect && !expect.is_empty(),
    );

    // 4. The dedup adapter agrees with streaming into a HashSet.
    let streamed: HashSet<(usize, usize)> = index.candidate_stream().collect();
    let deduped: HashSet<(usize, usize)> =
        dedup_pairs(index.candidate_stream()).into_iter().collect();
    check("dedup_pairs equals streamed set", streamed == deduped);

    // 5. Multi-probe only ever adds pairs.
    let probed = LshIndex::build(&vectors, &planes, LshConfig { probes: 2, ..cfg });
    let probed_set: HashSet<(usize, usize)> = probed.candidate_pairs().into_iter().collect();
    check(
        "multi-probe candidates are a superset",
        got.is_subset(&probed_set),
    );

    // 6. topk_scores equals a full stable sort, ties and NaN included.
    let n = 5000;
    let score = |i: usize| {
        if i.is_multiple_of(997) {
            f32::NAN
        } else {
            ((i % 37) as f32 - 18.0) * 0.25
        }
    };
    for (k, order) in [(10, Order::Largest), (25, Order::Smallest)] {
        let got: Vec<usize> = topk_scores(n, k, order, score)
            .iter()
            .map(|h| h.index)
            .collect();
        let mut all: Vec<usize> = (0..n).collect();
        all.sort_by(|&a, &b| {
            let (sa, sb) = (score(a), score(b));
            let ord = match (sa.is_nan(), sb.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => match order {
                    Order::Largest => sb.partial_cmp(&sa).unwrap(),
                    Order::Smallest => sa.partial_cmp(&sb).unwrap(),
                },
            };
            ord.then(a.cmp(&b))
        });
        check(
            &format!("topk_scores({k}, {order:?}) matches full sort"),
            got == all[..k],
        );
    }

    // 7. CosineIndex top-k equals the naive cosine scan.
    let items = quantized(2000, 16, 0x00c0_517e);
    let cos_index = CosineIndex::build(&items);
    let query = quantized(1, 16, 0x9_1e57).data;
    let hits: Vec<usize> = cos_index
        .nearest(&query, 12)
        .iter()
        .map(|h| h.index)
        .collect();
    let mut all: Vec<(usize, f32)> = (0..items.rows)
        .map(|i| (i, dc_tensor::tensor::cosine(&query, items.row_slice(i))))
        .collect();
    all.sort_by(|a, b| dc_index::desc_nan_last(a.1, b.1).then(a.0.cmp(&b.0)));
    let brute: Vec<usize> = all[..12].iter().map(|&(i, _)| i).collect();
    check("CosineIndex top-k matches naive cosine scan", hits == brute);

    // 8. The engaged three-tier funnel (1-bit Hamming → i8 → f32
    //    rescore) returns the exact scan's hits bitwise on this fixed
    //    input, and the quantized tier is ≥3× smaller than f32 rows.
    let funnel = CosineIndex::build_funnel(
        &items,
        FunnelConfig::default()
            .with_prefilter_bits(128)
            .with_hamming_keep(items.rows / 4)
            .with_rescore_k(64),
    );
    let exact_hits = cos_index.nearest_exact(&query, 12);
    let funnel_hits = funnel.nearest(&query, 12);
    check(
        "funnel top-k is bitwise identical to the exact scan",
        exact_hits.len() == funnel_hits.len()
            && exact_hits
                .iter()
                .zip(&funnel_hits)
                .all(|(a, b)| a.index == b.index && a.score.to_bits() == b.score.to_bits()),
    );
    let bytes = funnel.resident_bytes();
    check(
        "quantized tier resident bytes are ≥3× below f32 rows",
        bytes.quant * 3 < bytes.exact && bytes.sig > 0,
    );

    if !failures.is_empty() {
        for name in &failures {
            eprintln!("FAIL {name}");
        }
        eprintln!("{} dc-index self-test(s) failed", failures.len());
        std::process::exit(1);
    }
    if std::env::var_os("DC_OBS").is_some() {
        println!("{}", dc_obs::report().to_json());
    }
}
