//! # dc-index
//!
//! The shared retrieval layer of AutoDC (DESIGN.md §9): every consumer
//! that needs "which items are close to this one" — LSH blocking for
//! entity resolution (§5.2 of the paper), nearest-neighbour queries
//! over embeddings, and data-lake discovery search (§5.1) — routes
//! through the three pieces of this crate instead of growing its own
//! naive scan:
//!
//! * [`sig`] — bit-packed random-hyperplane sign signatures: `u64`
//!   words instead of `Vec<bool>`, computed as one blocked matrix
//!   product through [`dc_tensor::kernel`] and compared by
//!   `XOR`/`count_ones` Hamming distance.
//! * [`lsh`] — banded inverted buckets over those signatures, keyed by
//!   `u64` band words, with an iterator-based candidate stream (no
//!   materialized pair set for the common consumer), a dedup adapter
//!   for callers that need exact pair sets, and optional multi-probe on
//!   near-boundary bits to recover pair completeness at fewer bands.
//! * [`topk`] — a binary-heap [`topk::TopK`] selector under a *total*
//!   score order (NaN sinks last, ties break toward the lower index)
//!   plus a chunked parallel scan over the shared worker pool and a
//!   pre-normalized [`topk::CosineIndex`] for exact cosine top-k.
//! * [`quant`] — symmetric int8 quantized rows ([`quant::QuantizedSet`],
//!   per-column or uniform scales) scored through the integer
//!   [`dc_tensor::kernel::dot_i8`] kernel. Together with [`sig`] and the
//!   exact scan this forms the three-tier retrieval funnel on
//!   [`topk::CosineIndex`] (1-bit Hamming prefilter → i8 approximate
//!   scoring → exact f32 rescore): ~4× less resident memory than f32
//!   rows for the scored tier, with API results bitwise identical to
//!   the exact scan (DESIGN.md §15).
//!
//! # Determinism
//!
//! Every path is deterministic for every `DC_THREADS` setting:
//! signature bits come from kernel matmuls that are bitwise identical
//! across thread counts, bucket membership is a pure function of those
//! bits, and top-k selection under the total `(score, index)` order has
//! a unique answer regardless of how the scan was chunked.
//! `scripts/lint.sh` runs the equivalence suites under `DC_THREADS=1`,
//! `=2`, and the default to enforce this.

pub mod inc;
pub mod lsh;
pub mod quant;
pub mod sig;
pub mod topk;

pub use inc::IncrementalLshIndex;
pub use lsh::{dedup_pairs, CandidateStream, LshConfig, LshIndex};
pub use quant::{i32_goodness, QuantizedSet};
pub use sig::{sign_scores, SignatureSet};
pub use topk::{
    desc_nan_last, topk_scan, topk_scores, CosineIndex, FunnelBytes, FunnelConfig, Hit, Order, TopK,
};
