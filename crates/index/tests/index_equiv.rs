//! Index equivalence suite (ISSUE 3).
//!
//! Properties, each run by `scripts/lint.sh` under `DC_THREADS=1`,
//! `=2`, and the default:
//!
//! 1. **Packed signatures vs the seed `Vec<bool>` path, bit-for-bit.**
//!    The packed path computes scores through the blocked kernel, which
//!    may associate sums differently from the seed's sequential dots —
//!    on a near-zero margin that rounding difference could flip a sign
//!    bit. The test therefore draws *quantized* dyadic inputs (grid
//!    `k/8`, small dims) so every dot product is exact in f32 and the
//!    sign is association-independent; a belt-and-braces f64 margin
//!    guard skips the (never observed) case where a margin still lands
//!    too close to zero.
//! 2. **Banded candidates vs the seed bucketer, exact set equality.**
//! 3. **Top-k vs a full stable sort, same order including ties and
//!    injected NaN scores.**

use dc_index::{dedup_pairs, topk_scores, LshConfig, LshIndex, Order, SignatureSet};
use dc_tensor::Tensor;
use proptest::prelude::*;
use std::collections::{HashMap, HashSet};

/// Deterministic quantized tensor on the dyadic grid `k/8`, |k| ≤ 32:
/// with dims this small every dot product is exactly representable, so
/// blocked and sequential sums agree bit-for-bit.
fn quantized(rows: usize, cols: usize, seed: u64) -> Tensor {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        | 1;
    let data = (0..rows * cols)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = ((state >> 33) % 65) as i64 - 32;
            k as f32 / 8.0
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Seed signature path: one sequential dot per plane, `>= 0.0`.
fn naive_signature(v: &[f32], planes: &Tensor) -> Vec<bool> {
    (0..planes.rows)
        .map(|p| {
            let dot: f32 = v.iter().zip(planes.row_slice(p)).map(|(a, b)| a * b).sum();
            dot >= 0.0
        })
        .collect()
}

/// True when any f64-computed margin is too close to zero to trust the
/// f32 sign to be association-independent.
fn near_boundary(vectors: &Tensor, planes: &Tensor) -> bool {
    (0..vectors.rows).any(|i| {
        let v = vectors.row_slice(i);
        (0..planes.rows).any(|p| {
            let dot: f64 = v
                .iter()
                .zip(planes.row_slice(p))
                .map(|(a, b)| f64::from(*a) * f64::from(*b))
                .sum();
            dot.abs() < 1e-4 && dot != 0.0
        })
    })
}

/// Seed banded bucketer over `Vec<bool>` signatures.
fn naive_pairs(sigs: &[Vec<bool>], bands: usize, rows: usize) -> HashSet<(usize, usize)> {
    let mut out = HashSet::new();
    for b in 0..bands {
        let mut buckets: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
        for (i, sig) in sigs.iter().enumerate() {
            buckets
                .entry(sig[b * rows..(b + 1) * rows].to_vec())
                .or_default()
                .push(i);
        }
        for members in buckets.values() {
            for x in 0..members.len() {
                for y in x + 1..members.len() {
                    out.insert((members[x], members[y]));
                }
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn packed_signatures_match_seed_bools(
        n in 1usize..120,
        dim in 1usize..8,
        bands in 1usize..5,
        rows in 1usize..20,
        seed in 0u64..u64::MAX,
    ) {
        let nbits = bands * rows;
        let vectors = quantized(n, dim, seed);
        let planes = quantized(nbits, dim, seed ^ 0x9e3779b97f4a7c15);
        if near_boundary(&vectors, &planes) {
            return Ok(()); // sign not association-independent; skip
        }
        let packed = SignatureSet::compute(&vectors, &planes);
        prop_assert_eq!(packed.len(), n);
        prop_assert_eq!(packed.nbits(), nbits);
        for i in 0..n {
            let naive = naive_signature(vectors.row_slice(i), &planes);
            prop_assert_eq!(&packed.to_bools(i), &naive, "item {}", i);
            for (j, &bit) in naive.iter().enumerate() {
                prop_assert_eq!(packed.bit(i, j), bit);
            }
        }
    }

    #[test]
    fn banded_candidates_match_seed_bucketer(
        n in 1usize..100,
        dim in 1usize..6,
        bands in 1usize..5,
        rows in 1usize..9,
        seed in 0u64..u64::MAX,
    ) {
        let vectors = quantized(n, dim, seed);
        let planes = quantized(bands * rows, dim, seed ^ 0x517cc1b727220a95);
        if near_boundary(&vectors, &planes) {
            return Ok(());
        }
        let sigs: Vec<Vec<bool>> = (0..n)
            .map(|i| naive_signature(vectors.row_slice(i), &planes))
            .collect();
        let expect = naive_pairs(&sigs, bands, rows);
        let index = LshIndex::build(&vectors, &planes, LshConfig { bands, rows_per_band: rows, probes: 0 });
        let got: HashSet<(usize, usize)> = index.candidate_pairs().into_iter().collect();
        prop_assert_eq!(&got, &expect);
        // The stream deduped by hand agrees with the adapter.
        let streamed: HashSet<(usize, usize)> = index.candidate_stream().collect();
        prop_assert_eq!(&streamed, &expect);
        let adapter: Vec<(usize, usize)> = dedup_pairs(index.candidate_stream());
        prop_assert!(adapter.windows(2).all(|w| w[0] < w[1]), "sorted unique");
        prop_assert_eq!(adapter.len(), expect.len());
    }

    #[test]
    fn multi_probe_is_a_candidate_superset(
        n in 2usize..60,
        bands in 1usize..4,
        rows in 2usize..8,
        probes in 1usize..4,
        seed in 0u64..u64::MAX,
    ) {
        let vectors = quantized(n, 5, seed);
        let planes = quantized(bands * rows, 5, seed ^ 0x2545f4914f6cdd1d);
        let cfg = |p| LshConfig { bands, rows_per_band: rows, probes: p };
        let exact: HashSet<(usize, usize)> =
            LshIndex::build(&vectors, &planes, cfg(0)).candidate_pairs().into_iter().collect();
        let probed: HashSet<(usize, usize)> =
            LshIndex::build(&vectors, &planes, cfg(probes)).candidate_pairs().into_iter().collect();
        prop_assert!(exact.is_subset(&probed));
    }

    #[test]
    fn topk_matches_full_sort_with_ties_and_nan(
        n in 1usize..4000,
        k in 1usize..40,
        tie_mod in 2u32..50,
        nan_mod in 2usize..80,
        largest in 0u32..2,
        seed in 0u64..u64::MAX,
    ) {
        let largest = largest == 1;
        let order = if largest { Order::Largest } else { Order::Smallest };
        // Coarse score grid forces heavy ties; every nan_mod-th score is NaN.
        let score = move |i: usize| {
            if i.is_multiple_of(nan_mod) {
                f32::NAN
            } else {
                let h = (i as u64).wrapping_mul(seed | 1) >> 33;
                ((h % tie_mod as u64) as f32 - tie_mod as f32 / 2.0) * 0.5
            }
        };
        let got: Vec<(usize, u32)> = topk_scores(n, k, order, score)
            .iter()
            .map(|h| (h.index, h.score.to_bits()))
            .collect();
        let mut all: Vec<usize> = (0..n).collect();
        all.sort_by(|&a, &b| {
            let (sa, sb) = (score(a), score(b));
            match (sa.is_nan(), sb.is_nan()) {
                (true, true) => std::cmp::Ordering::Equal,
                (true, false) => std::cmp::Ordering::Greater,
                (false, true) => std::cmp::Ordering::Less,
                (false, false) => if largest {
                    sb.partial_cmp(&sa).unwrap()
                } else {
                    sa.partial_cmp(&sb).unwrap()
                },
            }
            .then(a.cmp(&b))
        });
        let expect: Vec<(usize, u32)> = all[..k.min(n)]
            .iter()
            .map(|&i| (i, score(i).to_bits()))
            .collect();
        prop_assert_eq!(got, expect);
    }
}
