//! Incremental LSH equivalence suite (ISSUE 9).
//!
//! Property: after an arbitrary interleaving of inserts, deletes and
//! compactions, [`IncrementalLshIndex::candidate_pairs`] equals the
//! pair set of a fresh [`LshIndex::from_scores`] rebuild over the live
//! score rows (rebuild ids mapped back through the monotone live-id
//! list). This is the contract dc-serve's mutable per-tenant blocking
//! endpoints rely on: tombstones and the unsorted overflow tier must be
//! invisible to candidate quality.
//!
//! Score rows are drawn on a dyadic grid, but no precision argument is
//! needed here: both sides consume the *same* stored score rows through
//! the same shared signature/flip helpers, so equality is structural,
//! not numeric. The grid just keeps |margins| tying often enough to
//! exercise multi-probe tie-breaking.

use dc_index::{IncrementalLshIndex, LshConfig, LshIndex};
use dc_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic dyadic score row (`k/8`, |k| ≤ 32).
fn score_row(nbits: usize, seed: u64) -> Vec<f32> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        | 1;
    (0..nbits)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 33) % 65) as i64 - 32) as f32 / 8.0
        })
        .collect()
}

/// Pair set of a fresh batch index over the live rows, with the
/// rebuild's dense ids mapped back to incremental ids. The live list is
/// ascending, so the map is monotone and `(min, max)` order survives.
fn rebuild_pairs(inc: &IncrementalLshIndex, rows: &[Vec<f32>]) -> Vec<(usize, usize)> {
    let live: Vec<usize> = (0..rows.len()).filter(|&i| inc.is_alive(i)).collect();
    let nbits = inc.config().bands * inc.config().rows_per_band;
    let data: Vec<f32> = live.iter().flat_map(|&i| rows[i].iter().copied()).collect();
    let scores = Tensor::from_vec(live.len(), nbits, data);
    let mut pairs: Vec<(usize, usize)> = LshIndex::from_scores(&scores, inc.config())
        .candidate_pairs()
        .into_iter()
        .map(|(a, b)| (live[a], live[b]))
        .collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    // The mutation script is a vec of `(kind, arg)` codes: kind 0..=3
    // is an insert (weighted ×4 so scripts grow), 4..=5 deletes the
    // live item at rank `arg % live_count`, 6 compacts.
    #[test]
    fn interleaved_mutations_match_full_rebuild(
        bands in 1usize..4,
        rows_per_band in 1usize..6,
        probes in 0usize..3,
        seed in 0u64..1_000_000,
        ops in collection::vec((0u8..7, 0usize..64), 1..48),
    ) {
        let cfg = LshConfig { bands, rows_per_band, probes };
        let nbits = bands * rows_per_band;
        let mut inc = IncrementalLshIndex::new(cfg).unwrap();
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut checks = 0usize;
        for (step, &(kind, arg)) in ops.iter().enumerate() {
            match kind {
                0..=3 => {
                    let row = score_row(nbits, seed ^ ((rows.len() as u64) << 20));
                    let id = inc.insert_scores(&row).unwrap();
                    prop_assert_eq!(id, rows.len());
                    rows.push(row);
                }
                4..=5 => {
                    let live: Vec<usize> =
                        (0..rows.len()).filter(|&i| inc.is_alive(i)).collect();
                    if !live.is_empty() {
                        inc.delete(live[arg % live.len()]).unwrap();
                    }
                }
                _ => {
                    inc.compact();
                    prop_assert_eq!(inc.overflow_len(), 0);
                }
            }
            // Checking after every step is O(ops · rebuild); thin to
            // every third step plus the end to keep the suite fast
            // while still covering mid-script states.
            if step % 3 == 0 {
                prop_assert_eq!(inc.candidate_pairs(), rebuild_pairs(&inc, &rows));
                checks += 1;
            }
        }
        prop_assert_eq!(inc.candidate_pairs(), rebuild_pairs(&inc, &rows));
        prop_assert!(checks > 0);
        prop_assert_eq!(
            inc.alive_count(),
            (0..rows.len()).filter(|&i| inc.is_alive(i)).count()
        );
    }
}
