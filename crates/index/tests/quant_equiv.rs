//! Quantized funnel equivalence suite (ISSUE 8).
//!
//! Properties, each run by `scripts/lint.sh` under `DC_THREADS=1`,
//! `=2`, and the default:
//!
//! 1. **Quantize/dequantize round trip** stays within half a
//!    quantization step per element (the symmetric-scheme bound).
//! 2. **Integer scoring is exact on the i8 grid**: rows and queries
//!    whose entries already sit on an integer grid with scale 1 lose
//!    nothing to quantization, so `t · dot_i8` reproduces the true dot.
//! 3. **Funnel fall-through is bitwise exact**: with tier budgets ≥ n
//!    the funnel cannot narrow, and [`CosineIndex::nearest`] must equal
//!    [`CosineIndex::nearest_exact`] bit for bit on *arbitrary* inputs
//!    — this needs no quantization-precision argument, only the shared
//!    `dot_f32` kernel and top-k order.
//! 4. **Engaged tiers keep planted winners**: with margins far above
//!    the quantization noise floor, the full three-tier funnel returns
//!    the exact scan's answer bitwise (seeded sweep, not proptest — the
//!    margin argument is constructive, not statistical).

use dc_index::{CosineIndex, FunnelConfig, QuantizedSet};
use dc_tensor::Tensor;
use proptest::prelude::*;

/// Deterministic LCG stream of f32 values in roughly [−4, 4].
fn lcg_f32(count: usize, seed: u64) -> Vec<f32> {
    let mut state = seed | 1;
    (0..count)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 8192) as f32 / 1024.0 - 4.0
        })
        .collect()
}

proptest! {
    #[test]
    fn round_trip_error_within_half_step(
        rows in 1usize..40,
        cols in 1usize..24,
        uniform in 0u32..2,
        seed in 0u64..u64::MAX,
    ) {
        let t = Tensor::from_vec(rows, cols, lcg_f32(rows * cols, seed));
        let q = if uniform == 1 {
            QuantizedSet::build_uniform(&t)
        } else {
            QuantizedSet::build(&t)
        };
        for i in 0..rows {
            let deq = q.dequantize(i);
            for (j, (&orig, &back)) in t.row_slice(i).iter().zip(&deq).enumerate() {
                let s = if uniform == 1 { q.scales()[0] } else { q.scales()[j] };
                // Half a step of rounding error plus f32 slack for the
                // scale division itself.
                let bound = f64::from(s) * 0.5 + f64::from(s) * 1e-4 + 1e-12;
                prop_assert!(
                    (f64::from(orig) - f64::from(back)).abs() <= bound,
                    "row {} col {}: {} vs {} (scale {})", i, j, orig, back, s
                );
            }
        }
    }

    #[test]
    fn grid_inputs_score_exactly(
        rows in 1usize..30,
        cols in 1usize..16,
        seed in 0u64..u64::MAX,
    ) {
        // Integer entries in [−127, 127]; the first row and the query
        // pin every column's maxabs at 127, so all scales are exactly
        // 1.0 and quantization is lossless end to end.
        let mut state = seed | 1;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 255) as i64 - 127
        };
        let mut data: Vec<f32> = (0..rows * cols).map(|_| next() as f32).collect();
        for (j, cell) in data.iter_mut().enumerate().take(cols) {
            *cell = if j % 2 == 0 { 127.0 } else { -127.0 };
        }
        let t = Tensor::from_vec(rows, cols, data);
        let q = QuantizedSet::build(&t);
        prop_assert!(q.scales().iter().all(|&s| s == 1.0));
        let mut query: Vec<f32> = (0..cols).map(|_| next() as f32).collect();
        query[0] = 127.0;
        let (tq, qq) = q.quantize_query(&query);
        prop_assert_eq!(tq, 1.0);
        for i in 0..rows {
            let exact: f64 = t
                .row_slice(i)
                .iter()
                .zip(&query)
                .map(|(a, b)| f64::from(*a) * f64::from(*b))
                .sum();
            let approx = f64::from(tq) * f64::from(dc_tensor::kernel::dot_i8(q.row(i), &qq));
            prop_assert_eq!(approx, exact, "row {}", i);
        }
    }

    #[test]
    fn fallthrough_funnel_is_bitwise_exact(
        n in 1usize..150,
        dim in 1usize..16,
        k in 1usize..12,
        seed in 0u64..u64::MAX,
    ) {
        let rows = Tensor::from_vec(n, dim, lcg_f32(n * dim, seed));
        let cfg = FunnelConfig::default()
            .with_hamming_keep(n)
            .with_rescore_k(n);
        let exact = CosineIndex::build(&rows);
        let funnel = CosineIndex::build_funnel(&rows, cfg);
        prop_assert!(funnel.has_funnel());
        let query = lcg_f32(dim, seed ^ 0x9e3779b97f4a7c15);
        let want = exact.nearest_exact(&query, k);
        let got = funnel.nearest(&query, k);
        prop_assert_eq!(want.len(), got.len());
        for (w, g) in want.iter().zip(&got) {
            prop_assert_eq!(w.index, g.index);
            prop_assert_eq!(w.score.to_bits(), g.score.to_bits());
        }
    }
}

#[test]
fn engaged_funnel_matches_exact_across_seeds() {
    for seed in [3u64, 17, 101, 2024] {
        let (n, dim, k) = (600, 24, 8);
        let mut data = lcg_f32(n * dim, seed);
        let query = lcg_f32(dim, seed ^ 0x2545f4914f6cdd1d);
        // Plant k overwhelming winners: aligned with the query up to a
        // per-slot perturbation orders of magnitude above quantization
        // noise but far below the alignment margin.
        let winners: Vec<usize> = (0..k).map(|s| (s * 71 + 13) % n).collect();
        for (slot, &w) in winners.iter().enumerate() {
            for j in 0..dim {
                data[w * dim + j] = 2.0 * query[j] + 1e-3 * (slot + 1) as f32 * (j as f32).cos();
            }
        }
        let rows = Tensor::from_vec(n, dim, data);
        let cfg = FunnelConfig::default()
            .with_prefilter_bits(128)
            .with_hamming_keep(n / 4)
            .with_rescore_k(4 * k);
        let exact = CosineIndex::build(&rows);
        let funnel = CosineIndex::build_funnel(&rows, cfg);
        let want = exact.nearest_exact(&query, k);
        let got = funnel.nearest(&query, k);
        assert_eq!(want.len(), got.len(), "seed {seed}");
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.index, g.index, "seed {seed}");
            assert_eq!(w.score.to_bits(), g.score.to_bits(), "seed {seed}");
        }
        let bytes = funnel.resident_bytes();
        assert!(bytes.quant * 3 < bytes.exact, "seed {seed}: {bytes:?}");
    }
}
