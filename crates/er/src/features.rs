//! Pair feature construction: distributed (DeepER) and hand-crafted
//! (the "traditional machine learning based approaches which require
//! handcrafted features, and similarity functions along with their
//! associated thresholds" that §5.2 contrasts against).

use dc_embed::{tuple2vec, Embeddings};
use dc_relational::tokenize::{edit_similarity, jaccard, tokenize};
use dc_relational::{Table, Value};
use dc_tensor::tensor::cosine;
use dc_tensor::Tensor;

/// Composed tuple vectors for every row of a table (mean-of-word-
/// embeddings composition). Rows with no in-vocabulary token get a zero
/// vector, which downstream cosine treats as dissimilar to everything.
pub fn tuple_vectors(emb: &Embeddings, table: &Table) -> Vec<Vec<f32>> {
    table
        .rows
        .iter()
        .map(|row| tuple2vec(emb, row, None).unwrap_or_else(|| vec![0.0; emb.dim()]))
        .collect()
}

/// DeepER similarity vector for one pair of tuple embeddings:
/// `[ |a−b| ; a⊙b ; cos(a,b) ]` — dimension `2d + 1`.
pub fn embedding_pair_features(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "pair features: dim mismatch");
    let mut out = Vec::with_capacity(2 * a.len() + 1);
    for (&x, &y) in a.iter().zip(b) {
        out.push((x - y).abs());
    }
    for (&x, &y) in a.iter().zip(b) {
        out.push(x * y);
    }
    out.push(cosine(a, b));
    out
}

/// Build the full `n_pairs × (2d+1)` feature matrix for labelled pairs.
pub fn embedding_feature_matrix(vectors: &[Vec<f32>], pairs: &[(usize, usize)]) -> Tensor {
    let d = vectors.first().map(|v| 2 * v.len() + 1).unwrap_or(1);
    let mut x = Tensor::zeros(pairs.len(), d);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let f = embedding_pair_features(&vectors[a], &vectors[b]);
        x.row_slice_mut(i).copy_from_slice(&f);
    }
    x
}

/// Hand-crafted per-attribute features for one tuple pair: for every
/// column, `[edit similarity, token jaccard, exact match, both-null]` —
/// the magellan-style feature family.
pub fn classical_pair_features(a: &[Value], b: &[Value]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "classical features: arity mismatch");
    let mut out = Vec::with_capacity(a.len() * 4);
    for (va, vb) in a.iter().zip(b) {
        match (va.is_null(), vb.is_null()) {
            (true, true) => out.extend([0.0, 0.0, 0.0, 1.0]),
            (true, false) | (false, true) => out.extend([0.0, 0.0, 0.0, 0.0]),
            (false, false) => {
                let sa = va.canonical();
                let sb = vb.canonical();
                let ta = tokenize(&sa);
                let tb = tokenize(&sb);
                out.push(edit_similarity(&sa, &sb) as f32);
                out.push(jaccard(&ta, &tb) as f32);
                out.push(if va == vb { 1.0 } else { 0.0 });
                out.push(0.0);
            }
        }
    }
    out
}

/// Classical feature matrix for labelled pairs over a table.
pub fn classical_feature_matrix(table: &Table, pairs: &[(usize, usize)]) -> Tensor {
    let d = table.schema.arity() * 4;
    let mut x = Tensor::zeros(pairs.len(), d);
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let f = classical_pair_features(&table.rows[a], &table.rows[b]);
        x.row_slice_mut(i).copy_from_slice(&f);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_embed::SgnsConfig;
    use dc_relational::table::employee_example;
    use dc_relational::tokenize_tuple;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn emb() -> Embeddings {
        let docs: Vec<Vec<String>> = employee_example()
            .rows
            .iter()
            .map(|r| tokenize_tuple(r))
            .collect();
        Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 6,
                epochs: 5,
                ..Default::default()
            },
            &mut StdRng::seed_from_u64(1),
        )
    }

    #[test]
    fn embedding_features_shape_and_identity() {
        let a = vec![1.0, 2.0, 3.0];
        let f = embedding_pair_features(&a, &a);
        assert_eq!(f.len(), 7);
        assert!(f[..3].iter().all(|&v| v == 0.0)); // |a−a| = 0
        assert!((f[6] - 1.0).abs() < 1e-6); // cos(a,a) = 1
    }

    #[test]
    fn tuple_vectors_cover_all_rows() {
        let t = employee_example();
        let vs = tuple_vectors(&emb(), &t);
        assert_eq!(vs.len(), 4);
        assert!(vs.iter().all(|v| v.len() == 6));
    }

    #[test]
    fn feature_matrix_rows_match_pairs() {
        let t = employee_example();
        let vs = tuple_vectors(&emb(), &t);
        let x = embedding_feature_matrix(&vs, &[(0, 1), (0, 2)]);
        assert_eq!((x.rows, x.cols), (2, 13));
    }

    #[test]
    fn classical_features_detect_exact_match() {
        let t = employee_example();
        let f = classical_pair_features(&t.rows[0], &t.rows[0]);
        assert_eq!(f.len(), 16);
        // Every column: edit sim 1, jaccard 1, exact 1, both-null 0.
        for c in 0..4 {
            assert_eq!(&f[c * 4..c * 4 + 4], &[1.0, 1.0, 1.0, 0.0]);
        }
    }

    #[test]
    fn classical_features_handle_nulls() {
        use dc_relational::Value;
        let a = vec![Value::Null, Value::text("x")];
        let b = vec![Value::Null, Value::Null];
        let f = classical_pair_features(&a, &b);
        assert_eq!(&f[0..4], &[0.0, 0.0, 0.0, 1.0]); // both null
        assert_eq!(&f[4..8], &[0.0, 0.0, 0.0, 0.0]); // one null
    }

    #[test]
    fn similar_strings_score_high() {
        use dc_relational::Value;
        let a = vec![Value::text("john smith")];
        let b = vec![Value::text("jon smith")];
        let f = classical_pair_features(&a, &b);
        assert!(f[0] > 0.8, "edit sim {}", f[0]);
        assert!(f[1] > 0.3, "jaccard {}", f[1]);
        assert_eq!(f[2], 0.0);
    }
}
