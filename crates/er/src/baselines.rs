//! Classical ER baselines DeepER is compared against (experiment E3):
//! exact matching, a threshold rule matcher, and feature-engineered
//! logistic regression ("traditional machine learning based approaches
//! which require handcrafted features, and similarity functions along
//! with their associated thresholds", §5.2).

use crate::features::{classical_feature_matrix, classical_pair_features};
use dc_nn::linear::Activation;
use dc_nn::loss::{class_weights, LossKind};
use dc_nn::mlp::Mlp;
use dc_nn::optim::Adam;
use dc_nn::train::{run_epochs, MlpTrainer, TrainOpts};
use dc_relational::{Table, Value};
use dc_tensor::Tensor;
use rand::rngs::StdRng;

/// Declares a pair a match only when every non-null attribute is equal.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactMatcher;

impl ExactMatcher {
    /// Predict labels for pairs.
    pub fn predict(&self, table: &Table, pairs: &[(usize, usize)]) -> Vec<bool> {
        pairs
            .iter()
            .map(|&(a, b)| {
                table.rows[a]
                    .iter()
                    .zip(&table.rows[b])
                    .all(|(x, y)| x.is_null() || y.is_null() || x == y)
            })
            .collect()
    }
}

/// Rule matcher: average attribute similarity (edit similarity over
/// canonical strings, nulls contribute 0) must exceed a threshold — the
/// hand-tuned-threshold style of pre-DL matchers.
#[derive(Clone, Copy, Debug)]
pub struct RuleMatcher {
    /// Decision threshold on mean attribute similarity.
    pub threshold: f64,
}

impl RuleMatcher {
    /// With the given threshold.
    pub fn new(threshold: f64) -> Self {
        RuleMatcher { threshold }
    }

    /// Mean attribute similarity of one pair.
    pub fn score(&self, a: &[Value], b: &[Value]) -> f64 {
        use dc_relational::tokenize::edit_similarity;
        let mut total = 0.0;
        for (x, y) in a.iter().zip(b) {
            if !x.is_null() && !y.is_null() {
                total += edit_similarity(&x.canonical(), &y.canonical());
            }
        }
        total / a.len() as f64
    }

    /// Predict labels for pairs.
    pub fn predict(&self, table: &Table, pairs: &[(usize, usize)]) -> Vec<bool> {
        pairs
            .iter()
            .map(|&(a, b)| self.score(&table.rows[a], &table.rows[b]) >= self.threshold)
            .collect()
    }

    /// Match scores (for AUC-style evaluation).
    pub fn scores(&self, table: &Table, pairs: &[(usize, usize)]) -> Vec<f32> {
        pairs
            .iter()
            .map(|&(a, b)| self.score(&table.rows[a], &table.rows[b]) as f32)
            .collect()
    }
}

/// Feature-engineered logistic regression (magellan-style): classical
/// per-attribute features into a single-layer sigmoid classifier.
pub struct FeatureLogReg {
    model: Mlp,
}

impl FeatureLogReg {
    /// Train on labelled pairs.
    pub fn train(
        table: &Table,
        pairs: &[(usize, usize)],
        labels: &[bool],
        epochs: usize,
        rng: &mut StdRng,
    ) -> Self {
        let x = classical_feature_matrix(table, pairs);
        let y = Tensor::from_vec(
            labels.len(),
            1,
            labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect(),
        );
        let mut model = Mlp::new(
            &[x.cols, 1],
            Activation::Identity,
            Activation::Identity,
            rng,
        );
        let (w_neg, w_pos) = class_weights(labels);
        let opts = TrainOpts::default()
            .with_epochs(epochs)
            .with_lr(0.05)
            .with_batch_size(32);
        let mut opt = Adam::new(opts.lr);
        let mut trainer = MlpTrainer {
            model: &mut model,
            loss: LossKind::Bce { w_neg, w_pos },
            opt: &mut opt,
        };
        run_epochs("er.logreg", &mut trainer, &x, Some(&y), &opts, rng);
        FeatureLogReg { model }
    }

    /// Match probabilities.
    pub fn predict(&self, table: &Table, pairs: &[(usize, usize)]) -> Vec<f32> {
        let x = classical_feature_matrix(table, pairs);
        self.model.predict_proba(&x)
    }

    /// Binary decisions at a threshold.
    pub fn predict_labels(
        &self,
        table: &Table,
        pairs: &[(usize, usize)],
        threshold: f32,
    ) -> Vec<bool> {
        self.predict(table, pairs)
            .into_iter()
            .map(|p| p >= threshold)
            .collect()
    }

    /// Number of hand-crafted features per pair for `table`.
    pub fn feature_count(table: &Table) -> usize {
        classical_pair_features(&table.rows[0], &table.rows[0]).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{ErBenchmark, ErSuite};
    use dc_nn::metrics::f1_score;
    use rand::SeedableRng;

    #[test]
    fn exact_matcher_only_catches_identical() {
        let mut rng = StdRng::seed_from_u64(1);
        let bench = ErBenchmark::generate(ErSuite::Dirty, 40, 3, &mut rng);
        let pairs = bench.labeled_pairs(1, &mut rng);
        let p: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
        let gold: Vec<bool> = pairs.iter().map(|p| p.label).collect();
        let pred = ExactMatcher.predict(&bench.table, &p);
        // High precision, poor recall on dirty data.
        let c = dc_nn::metrics::confusion(&pred, &gold);
        assert!(c.precision() >= c.recall());
    }

    #[test]
    fn rule_matcher_threshold_tradeoff() {
        let mut rng = StdRng::seed_from_u64(2);
        let bench = ErBenchmark::generate(ErSuite::Clean, 50, 3, &mut rng);
        let pairs = bench.labeled_pairs(2, &mut rng);
        let p: Vec<(usize, usize)> = pairs.iter().map(|x| (x.a, x.b)).collect();
        let gold: Vec<bool> = pairs.iter().map(|x| x.label).collect();
        let loose = RuleMatcher::new(0.1).predict(&bench.table, &p);
        let strict = RuleMatcher::new(0.95).predict(&bench.table, &p);
        let loose_pos = loose.iter().filter(|&&b| b).count();
        let strict_pos = strict.iter().filter(|&&b| b).count();
        assert!(loose_pos >= strict_pos);
        // A mid threshold should do decently on clean data.
        let mid = RuleMatcher::new(0.6).predict(&bench.table, &p);
        assert!(f1_score(&mid, &gold) > 0.5);
    }

    #[test]
    fn logreg_learns_clean_benchmark() {
        let mut rng = StdRng::seed_from_u64(3);
        let bench = ErBenchmark::generate(ErSuite::Clean, 60, 3, &mut rng);
        let pairs = bench.labeled_pairs(3, &mut rng);
        let (train, test) = ErBenchmark::split_pairs(&pairs, 0.7, &mut rng);
        let tp: Vec<(usize, usize)> = train.iter().map(|x| (x.a, x.b)).collect();
        let tl: Vec<bool> = train.iter().map(|x| x.label).collect();
        let model = FeatureLogReg::train(&bench.table, &tp, &tl, 60, &mut rng);
        let ep: Vec<(usize, usize)> = test.iter().map(|x| (x.a, x.b)).collect();
        let el: Vec<bool> = test.iter().map(|x| x.label).collect();
        let pred = model.predict_labels(&bench.table, &ep, 0.5);
        let f1 = f1_score(&pred, &el);
        assert!(f1 > 0.75, "logreg F1 {f1}");
    }

    #[test]
    fn feature_count_is_4_per_attribute() {
        let mut rng = StdRng::seed_from_u64(4);
        let bench = ErBenchmark::generate(ErSuite::Clean, 5, 1, &mut rng);
        assert_eq!(
            FeatureLogReg::feature_count(&bench.table),
            bench.table.schema.arity() * 4
        );
    }
}
