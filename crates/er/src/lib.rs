//! # dc-er
//!
//! Deep entity resolution — the paper's DeepER system (§5.2, Figure 5).
//!
//! "DeepER pushes the boundaries of existing ER solutions in terms of
//! accuracy, efficiency, and ease-of-use":
//!
//! * **accuracy** — tuples become distributed representations via
//!   composition ([`deeper::Composition::Average`] over word embeddings,
//!   or a trained LSTM, §3.1's "more sophisticated approach"), compared
//!   through a similarity vector and classified by a dense network
//!   ([`deeper::DeepEr`]);
//! * **efficiency** — [`blocking::LshBlocker`] hashes tuple embeddings
//!   with random hyperplanes so that only candidate pairs sharing a
//!   band bucket are classified ("it takes all attributes of a tuple
//!   into consideration and produces much smaller blocks");
//! * **ease-of-use** — no hand-crafted features; the classical
//!   [`baselines`] (feature-engineered logistic regression, rule
//!   matcher) exist precisely to quantify that difference.
//!
//! The §6.1 skew warnings are addressed with inverse-frequency class
//! weights and bounded negative sampling (see `dc-datagen`'s pair
//! sampler and [`dc_nn::loss`]).

pub mod baselines;
pub mod blocking;
pub mod deeper;
pub mod eval;
pub mod features;

pub use baselines::{ExactMatcher, FeatureLogReg, RuleMatcher};
pub use blocking::{blocking_quality, BlockingQuality, KeyBlocker, LshBlocker, TokenBlocker};
pub use deeper::{Composition, DeepEr, DeepErConfig};
pub use eval::{best_threshold, evaluate_at, MatchEval};
pub use features::{classical_pair_features, embedding_pair_features, tuple_vectors};
