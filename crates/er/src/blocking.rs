//! Blocking: shrink the O(n²) pair space before matching.
//!
//! DeepER's efficiency claim (§5.2): "we propose a locality sensitive
//! hashing (LSH) based approach that uses distributed representations
//! of tuples; it takes all attributes of a tuple into consideration and
//! produces much smaller blocks, compared with traditional methods that
//! consider only few attributes." Experiment E4 measures exactly that
//! trade-off: reduction ratio vs pair completeness, LSH over embeddings
//! against token blocking and single-attribute key blocking.

use dc_index::{LshConfig, LshIndex, QuantizedSet};
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};

/// Candidate pair set produced by a blocker (ordered `(min, max)`).
pub type Candidates = HashSet<(usize, usize)>;

/// Random-hyperplane LSH over tuple embedding vectors, with banding.
///
/// Each vector gets `bands × rows_per_band` sign bits; two tuples are
/// candidates when *any* band of bits matches exactly, plus — when
/// [`LshBlocker::with_probes`] is used — when a band matches after
/// flipping one of a tuple's lowest-margin bits (multi-probe, which
/// buys back pair completeness at fewer bands).
///
/// Since ISSUE 3 this is a thin wrapper over [`dc_index`]: signatures
/// are computed as one blocked kernel matmul and bit-packed into `u64`
/// words, and candidates come from sorted band tables instead of a
/// `HashMap<Vec<bool>, _>` per band. The seed implementation survives
/// verbatim as [`reference::LshBlocker`]; `tests/blocking_equiv.rs`
/// proves pair-set equality between the two on random inputs.
#[derive(Clone, Debug)]
pub struct LshBlocker {
    planes: Vec<Vec<f32>>,
    /// Number of bands.
    pub bands: usize,
    /// Hyperplanes (bits) per band.
    pub rows_per_band: usize,
    /// Near-boundary bits probed per tuple per band (0 = exact banding).
    pub probes: usize,
    /// Optional cap on the candidate set size: when the banded pair set
    /// exceeds it, pairs are ranked by the int8 quantized dot of their
    /// centered tuple embeddings and only the most similar survive
    /// (see [`LshBlocker::with_max_candidates`]).
    pub max_candidates: Option<usize>,
}

impl LshBlocker {
    /// Sample `bands × rows_per_band` random hyperplanes in `dim`
    /// dimensions.
    pub fn new(dim: usize, bands: usize, rows_per_band: usize, rng: &mut StdRng) -> Self {
        let planes = (0..bands * rows_per_band)
            .map(|_| Tensor::randn(1, dim, 1.0, rng).data)
            .collect();
        Self::from_planes(planes, bands, rows_per_band)
    }

    /// Build from explicit hyperplanes (row `p` is plane `p`); used by
    /// the equivalence tests to drive the new and [`reference`] paths
    /// from identical planes.
    pub fn from_planes(planes: Vec<Vec<f32>>, bands: usize, rows_per_band: usize) -> Self {
        assert_eq!(planes.len(), bands * rows_per_band, "plane count");
        LshBlocker {
            planes,
            bands,
            rows_per_band,
            probes: 0,
            max_candidates: None,
        }
    }

    /// Enable multi-probe: additionally look up, per band, the buckets
    /// reached by flipping each of a tuple's `probes` lowest-|margin|
    /// sign bits. Candidates become a superset of the exact-band set.
    pub fn with_probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }

    /// Cap the candidate set at `cap` pairs. When banding emits more,
    /// pairs are ranked by the integer dot of the tuples' int8
    /// quantized centered embeddings — a *uniform* scale quantization
    /// ([`QuantizedSet::build_uniform`]), since per-column scales
    /// reweight dimensions and would not order row–row dots faithfully
    /// — and only the `cap` most similar pairs survive (ties break
    /// toward the lexicographically smaller pair, so the result is
    /// deterministic). Matcher cost downstream becomes bounded even on
    /// skewed inputs where a hot bucket would otherwise emit O(n²).
    pub fn with_max_candidates(mut self, cap: usize) -> Self {
        self.max_candidates = Some(cap);
        self
    }

    /// The signature (one bit per hyperplane) of a vector.
    pub fn signature(&self, v: &[f32]) -> Vec<bool> {
        self.planes
            .iter()
            .map(|p| p.iter().zip(v).map(|(a, b)| a * b).sum::<f32>() >= 0.0)
            .collect()
    }

    /// Candidate pairs among `vectors`.
    ///
    /// Vectors are centred on their mean first: tuple embeddings from a
    /// single domain cluster in one orthant, where raw sign bits carry
    /// no information.
    pub fn candidates(&self, vectors: &[Vec<f32>]) -> Candidates {
        if vectors.is_empty() {
            return Candidates::new();
        }
        let dim = vectors[0].len();
        let mut mean = vec![0.0f32; dim];
        for v in vectors {
            for (m, &x) in mean.iter_mut().zip(v) {
                *m += x;
            }
        }
        let inv = 1.0 / vectors.len() as f32;
        mean.iter_mut().for_each(|m| *m *= inv);
        // Centre straight into the flat tensor buffer — element for
        // element the same arithmetic as [`center`], without its
        // per-row Vec allocations.
        let mut flat = Vec::with_capacity(vectors.len() * dim);
        for v in vectors {
            flat.extend(v.iter().zip(&mean).map(|(x, m)| x - m));
        }
        let items = Tensor::from_vec(vectors.len(), dim, flat);
        // Plane rows are truncated/zero-padded to the vector dim,
        // matching the seed signature's `zip` semantics when lengths
        // disagree (extra plane components never meet a vector entry).
        let mut plane_data = Vec::with_capacity(self.planes.len() * dim);
        for (r, p) in self.planes.iter().enumerate() {
            plane_data.extend(p.iter().copied().take(dim));
            plane_data.resize((r + 1) * dim, 0.0);
        }
        let planes = Tensor::from_vec(self.planes.len(), dim, plane_data);
        let index = LshIndex::build(
            &items,
            &planes,
            LshConfig {
                bands: self.bands,
                rows_per_band: self.rows_per_band,
                probes: self.probes,
            },
        );
        let pairs = index.candidate_pairs();
        match self.max_candidates {
            Some(cap) if pairs.len() > cap => {
                let quant = QuantizedSet::build_uniform(&items);
                let mut scored: Vec<(usize, usize, i32)> = pairs
                    .into_iter()
                    .map(|(i, j)| (i, j, quant.pair_dot(i, j)))
                    .collect();
                scored.sort_unstable_by_key(|&(i, j, d)| (std::cmp::Reverse(d), i, j));
                scored.truncate(cap);
                scored.into_iter().map(|(i, j, _)| (i, j)).collect()
            }
            _ => pairs.into_iter().collect(),
        }
    }
}

/// The seed (pre-ISSUE 3) LSH blocker, kept verbatim — like
/// [`dc_tensor::kernel::reference`] — as the ground truth that
/// `tests/blocking_equiv.rs` holds the [`dc_index`]-backed
/// [`LshBlocker`](super::LshBlocker) to.
pub mod reference {
    use super::{center, Candidates};
    use std::collections::HashMap;

    /// Seed implementation: `Vec<bool>` signatures from one sequential
    /// dot per plane, bucketed through a `HashMap` per band.
    #[derive(Clone, Debug)]
    pub struct LshBlocker {
        /// Hyperplanes, one per signature bit.
        pub planes: Vec<Vec<f32>>,
        /// Number of bands.
        pub bands: usize,
        /// Hyperplanes (bits) per band.
        pub rows_per_band: usize,
    }

    impl LshBlocker {
        /// Build from explicit hyperplanes.
        pub fn from_planes(planes: Vec<Vec<f32>>, bands: usize, rows_per_band: usize) -> Self {
            assert_eq!(planes.len(), bands * rows_per_band, "plane count");
            LshBlocker {
                planes,
                bands,
                rows_per_band,
            }
        }

        /// The signature (one bit per hyperplane) of a vector.
        pub fn signature(&self, v: &[f32]) -> Vec<bool> {
            self.planes
                .iter()
                .map(|p| p.iter().zip(v).map(|(a, b)| a * b).sum::<f32>() >= 0.0)
                .collect()
        }

        /// Candidate pairs among `vectors` (seed bucketer).
        pub fn candidates(&self, vectors: &[Vec<f32>]) -> Candidates {
            let centered = center(vectors);
            let sigs: Vec<Vec<bool>> = centered.iter().map(|v| self.signature(v)).collect();
            let mut out = Candidates::new();
            for band in 0..self.bands {
                let lo = band * self.rows_per_band;
                let hi = lo + self.rows_per_band;
                let mut buckets: HashMap<Vec<bool>, Vec<usize>> = HashMap::new();
                for (i, sig) in sigs.iter().enumerate() {
                    buckets.entry(sig[lo..hi].to_vec()).or_default().push(i);
                }
                for members in buckets.values() {
                    for (x, &i) in members.iter().enumerate() {
                        for &j in &members[x + 1..] {
                            out.insert((i.min(j), i.max(j)));
                        }
                    }
                }
            }
            out
        }
    }
}

pub(crate) fn center(vectors: &[Vec<f32>]) -> Vec<Vec<f32>> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let d = vectors[0].len();
    let mut mean = vec![0.0f32; d];
    for v in vectors {
        for (m, &x) in mean.iter_mut().zip(v) {
            *m += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    mean.iter_mut().for_each(|m| *m *= inv);
    vectors
        .iter()
        .map(|v| v.iter().zip(&mean).map(|(x, m)| x - m).collect())
        .collect()
}

/// Token blocking: two tuples are candidates when they share at least
/// one token in the chosen key column — a "traditional method that
/// considers only few attributes".
#[derive(Clone, Copy, Debug)]
pub struct TokenBlocker {
    /// The column whose tokens form blocks.
    pub column: usize,
}

impl TokenBlocker {
    /// Candidate pairs over a table.
    pub fn candidates(&self, table: &dc_relational::Table) -> Candidates {
        use dc_relational::tokenize::tokenize;
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, row) in table.rows.iter().enumerate() {
            if row[self.column].is_null() {
                continue;
            }
            for tok in tokenize(&row[self.column].canonical()) {
                buckets.entry(tok).or_default().push(i);
            }
        }
        let mut out = Candidates::new();
        for members in buckets.values() {
            for (x, &i) in members.iter().enumerate() {
                for &j in &members[x + 1..] {
                    if i != j {
                        out.insert((i.min(j), i.max(j)));
                    }
                }
            }
        }
        out
    }
}

/// Key blocking: exact match on a normalised key prefix of one column —
/// the crudest traditional blocker.
#[derive(Clone, Copy, Debug)]
pub struct KeyBlocker {
    /// The blocking column.
    pub column: usize,
    /// Number of leading characters of the normalised value to key on.
    pub prefix: usize,
}

impl KeyBlocker {
    /// Candidate pairs over a table.
    pub fn candidates(&self, table: &dc_relational::Table) -> Candidates {
        use dc_relational::tokenize::normalize;
        let mut buckets: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, row) in table.rows.iter().enumerate() {
            if row[self.column].is_null() {
                continue;
            }
            let norm = normalize(&row[self.column].canonical());
            let key: String = norm.chars().take(self.prefix).collect();
            buckets.entry(key).or_default().push(i);
        }
        let mut out = Candidates::new();
        for members in buckets.values() {
            for (x, &i) in members.iter().enumerate() {
                for &j in &members[x + 1..] {
                    out.insert((i.min(j), i.max(j)));
                }
            }
        }
        out
    }
}

/// Quality of a candidate set against ground-truth duplicate pairs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockingQuality {
    /// `1 − |candidates| / |all pairs|` — how much work blocking saves.
    pub reduction_ratio: f64,
    /// Fraction of true duplicate pairs surviving blocking (recall).
    pub pair_completeness: f64,
    /// Candidate count.
    pub candidates: usize,
}

/// Score a candidate set. `n` is the table size; `truth` the set of
/// ground-truth duplicate pairs (ordered `(min, max)`).
pub fn blocking_quality(
    candidates: &Candidates,
    truth: &[(usize, usize)],
    n: usize,
) -> BlockingQuality {
    let all_pairs = n * (n - 1) / 2;
    let found = truth
        .iter()
        .filter(|&&(a, b)| candidates.contains(&(a.min(b), a.max(b))))
        .count();
    BlockingQuality {
        reduction_ratio: if all_pairs == 0 {
            0.0
        } else {
            1.0 - candidates.len() as f64 / all_pairs as f64
        },
        pair_completeness: if truth.is_empty() {
            1.0
        } else {
            found as f64 / truth.len() as f64
        },
        candidates: candidates.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::tuple_vectors;
    use dc_datagen::{ErBenchmark, ErSuite};
    use dc_embed::{Embeddings, SgnsConfig};
    use dc_relational::tokenize_tuple;
    use rand::SeedableRng;

    fn setup() -> (ErBenchmark, Vec<Vec<f32>>, StdRng) {
        let mut rng = StdRng::seed_from_u64(200);
        let bench = ErBenchmark::generate(ErSuite::Dirty, 80, 3, &mut rng);
        let docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
        let emb = Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 16,
                epochs: 5,
                ..Default::default()
            },
            &mut rng,
        );
        let vectors = tuple_vectors(&emb, &bench.table);
        (bench, vectors, rng)
    }

    #[test]
    fn lsh_blocks_reduce_pairs_and_keep_duplicates() {
        let (bench, vectors, mut rng) = setup();
        let blocker = LshBlocker::new(16, 8, 4, &mut rng);
        let cands = blocker.candidates(&vectors);
        let q = blocking_quality(&cands, &bench.duplicate_pairs(), bench.table.len());
        assert!(q.reduction_ratio > 0.3, "reduction {q:?}");
        assert!(q.pair_completeness > 0.7, "completeness {q:?}");
    }

    #[test]
    fn identical_vectors_always_collide() {
        let mut rng = StdRng::seed_from_u64(1);
        let blocker = LshBlocker::new(4, 4, 3, &mut rng);
        let v = vec![vec![0.5, -0.2, 0.8, 0.1]; 2];
        let cands = blocker.candidates(&v);
        assert!(cands.contains(&(0, 1)));
    }

    #[test]
    fn more_rows_per_band_is_stricter() {
        let (_, vectors, mut rng) = setup();
        let loose = LshBlocker::new(16, 4, 1, &mut rng).candidates(&vectors);
        let strict = LshBlocker::new(16, 4, 6, &mut rng).candidates(&vectors);
        assert!(
            loose.len() > strict.len(),
            "{} vs {}",
            loose.len(),
            strict.len()
        );
    }

    #[test]
    fn token_blocker_finds_shared_name_tokens() {
        let (bench, _, _) = setup();
        let cands = TokenBlocker { column: 0 }.candidates(&bench.table);
        let q = blocking_quality(&cands, &bench.duplicate_pairs(), bench.table.len());
        // Token blocking on names is high-recall (most dups share a
        // token) but admits many shared-last-name false candidates.
        assert!(q.pair_completeness > 0.5, "{q:?}");
        assert!(q.reduction_ratio > 0.0, "{q:?}");
    }

    #[test]
    fn key_blocker_prefix_tradeoff() {
        let (bench, _, _) = setup();
        let coarse = KeyBlocker {
            column: 0,
            prefix: 1,
        }
        .candidates(&bench.table);
        let fine = KeyBlocker {
            column: 0,
            prefix: 6,
        }
        .candidates(&bench.table);
        assert!(coarse.len() >= fine.len());
    }

    #[test]
    fn multi_probe_widens_candidates_and_completeness() {
        let (bench, vectors, mut rng) = setup();
        let exact = LshBlocker::new(16, 4, 8, &mut rng);
        let probed = exact.clone().with_probes(2);
        let exact_cands = exact.candidates(&vectors);
        let probed_cands = probed.candidates(&vectors);
        assert!(
            exact_cands.is_subset(&probed_cands),
            "probing must only add pairs"
        );
        let truth = bench.duplicate_pairs();
        let n = bench.table.len();
        let q_exact = blocking_quality(&exact_cands, &truth, n);
        let q_probed = blocking_quality(&probed_cands, &truth, n);
        assert!(
            q_probed.pair_completeness >= q_exact.pair_completeness,
            "{q_exact:?} vs {q_probed:?}"
        );
    }

    #[test]
    fn max_candidates_caps_deterministically_within_banded_set() {
        let (_, vectors, mut rng) = setup();
        let blocker = LshBlocker::new(16, 8, 4, &mut rng);
        let full = blocker.candidates(&vectors);
        assert!(full.len() > 4, "need a non-trivial pair set to cap");
        let cap = full.len() / 2;
        let capped = blocker
            .clone()
            .with_max_candidates(cap)
            .candidates(&vectors);
        assert_eq!(capped.len(), cap);
        assert!(capped.is_subset(&full), "cap must only drop pairs");
        let again = blocker
            .clone()
            .with_max_candidates(cap)
            .candidates(&vectors);
        assert_eq!(capped, again, "quantized ranking must be deterministic");
        // A cap at (or above) the banded size changes nothing.
        let loose = blocker.with_max_candidates(full.len()).candidates(&vectors);
        assert_eq!(loose, full);
    }

    #[test]
    fn empty_and_singleton_inputs_yield_no_pairs() {
        let mut rng = StdRng::seed_from_u64(3);
        let blocker = LshBlocker::new(4, 2, 2, &mut rng);
        assert!(blocker.candidates(&[]).is_empty());
        assert!(blocker.candidates(&[vec![1.0, 0.0, 0.0, 0.0]]).is_empty());
    }

    #[test]
    fn quality_edges() {
        let empty = Candidates::new();
        let q = blocking_quality(&empty, &[], 10);
        assert_eq!(q.pair_completeness, 1.0);
        assert_eq!(q.reduction_ratio, 1.0);
        let q2 = blocking_quality(&empty, &[(0, 1)], 10);
        assert_eq!(q2.pair_completeness, 0.0);
    }
}
