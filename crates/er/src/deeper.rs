//! The DeepER matcher (Figure 5): tuple → distributed representation →
//! similarity vector → dense classifier.
//!
//! Two compositions are provided, mirroring §3.1 and §5.2:
//! * **Average** — mean of the tuple's word embeddings (fast; the
//!   similarity vector includes cosine);
//! * **Lstm** — a trained LSTM reads the tuple's token-embedding
//!   sequence and its final hidden state represents the tuple
//!   ("uni- and bi-directional recurrent neural networks (RNNs) with
//!   long short term memory (LSTM) hidden units to convert each tuple
//!   to a distributed representation").
//!
//! Word embeddings are *frozen* during matcher training, exactly as
//! DeepER froze its GloVe vectors: "built a light-weight DL model that
//! can be trained in a matter of minutes even on a CPU" (§6.1).

use crate::features::{embedding_feature_matrix, tuple_vectors};
use dc_core::{check_pairs, DcResult};
use dc_embed::Embeddings;
use dc_nn::linear::Activation;
use dc_nn::loss::{class_weights, LossKind};
use dc_nn::lstm::LstmEncoder;
use dc_nn::mlp::Mlp;
use dc_nn::optim::{Adam, Optimizer};
use dc_nn::train::{run_epochs, Batch, MlpTrainer, StepStats, TrainCtx, TrainOpts, Trainer};
use dc_relational::{tokenize_tuple, Table};
use dc_tensor::{Tape, Tensor, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// How tuples are composed into distributed representations.
#[derive(Clone, Debug)]
pub enum Composition {
    /// Mean of word embeddings (no trained parameters).
    Average,
    /// Trained LSTM over the token-embedding sequence, with the given
    /// hidden width. Token sequences are truncated to `max_tokens`.
    Lstm {
        /// Hidden-state width of the encoder.
        hidden: usize,
        /// Truncation length for tuple token sequences.
        max_tokens: usize,
    },
}

/// Hyper-parameters for DeepER training.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeepErConfig {
    /// Widths of the classifier's hidden layers.
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Minibatch size (average composition only; the LSTM path trains
    /// pair-by-pair).
    pub batch: usize,
    /// Use inverse-frequency class weights (§6.1 skew remedy).
    pub class_weighting: bool,
}

impl Default for DeepErConfig {
    fn default() -> Self {
        DeepErConfig {
            hidden: vec![32],
            epochs: 30,
            lr: 0.01,
            batch: 32,
            class_weighting: true,
        }
    }
}

impl DeepErConfig {
    /// Set the classifier's hidden-layer widths (builder convention,
    /// DESIGN.md §10).
    pub fn with_hidden(mut self, hidden: &[usize]) -> Self {
        self.hidden = hidden.to_vec();
        self
    }

    /// Set the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Set the Adam learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Set the minibatch size (average composition).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Toggle inverse-frequency class weighting.
    pub fn with_class_weighting(mut self, on: bool) -> Self {
        self.class_weighting = on;
        self
    }
}

/// A trained DeepER matcher. Serializable as one checkpoint object —
/// dc-serve's per-tenant model registry saves and hot-reloads it
/// through serde_json.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DeepEr {
    /// Frozen word embeddings.
    pub emb: Embeddings,
    /// Tuple composition strategy (and its trained encoder, if LSTM).
    composition: CompositionState,
    /// The classifier head.
    pub classifier: Mlp,
    config: DeepErConfig,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
enum CompositionState {
    Average,
    Lstm {
        encoder: LstmEncoder,
        max_tokens: usize,
    },
}

impl DeepEr {
    /// Train a matcher on labelled pairs over `table`.
    pub fn train(
        emb: Embeddings,
        table: &Table,
        pairs: &[(usize, usize)],
        labels: &[bool],
        composition: Composition,
        config: DeepErConfig,
        rng: &mut StdRng,
    ) -> Self {
        assert_eq!(pairs.len(), labels.len(), "pair/label mismatch");
        match composition {
            Composition::Average => Self::train_average(emb, table, pairs, labels, config, rng),
            Composition::Lstm { hidden, max_tokens } => {
                Self::train_lstm(emb, table, pairs, labels, hidden, max_tokens, config, rng)
            }
        }
    }

    fn train_average(
        emb: Embeddings,
        table: &Table,
        pairs: &[(usize, usize)],
        labels: &[bool],
        config: DeepErConfig,
        rng: &mut StdRng,
    ) -> Self {
        let vectors = tuple_vectors(&emb, table);
        let x = embedding_feature_matrix(&vectors, pairs);
        let y = Tensor::from_vec(
            labels.len(),
            1,
            labels.iter().map(|&l| if l { 1.0 } else { 0.0 }).collect(),
        );
        let mut dims = vec![x.cols];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mut classifier = Mlp::new(&dims, Activation::Relu, Activation::Identity, rng);
        let mut opt = Adam::new(config.lr);
        let loss = if config.class_weighting {
            let (w_neg, w_pos) = class_weights(labels);
            LossKind::Bce { w_neg, w_pos }
        } else {
            LossKind::bce()
        };
        let opts = TrainOpts::default()
            .with_epochs(config.epochs)
            .with_lr(config.lr)
            .with_batch_size(config.batch);
        let mut trainer = MlpTrainer {
            model: &mut classifier,
            loss,
            opt: &mut opt,
        };
        run_epochs("er.deeper", &mut trainer, &x, Some(&y), &opts, rng);
        DeepEr {
            emb,
            composition: CompositionState::Average,
            classifier,
            config,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn train_lstm(
        emb: Embeddings,
        table: &Table,
        pairs: &[(usize, usize)],
        labels: &[bool],
        hidden: usize,
        max_tokens: usize,
        config: DeepErConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut encoder = LstmEncoder::new(emb.dim(), hidden, rng);
        let mut dims = vec![2 * hidden];
        dims.extend_from_slice(&config.hidden);
        dims.push(1);
        let mut classifier = Mlp::new(&dims, Activation::Relu, Activation::Identity, rng);
        let mut opt = Adam::new(config.lr);
        let (w_neg, w_pos) = if config.class_weighting {
            class_weights(labels)
        } else {
            (1.0, 1.0)
        };

        // Pre-tokenise every row once, straight into the `T×dim`
        // sequence tensors the encoder's fused input GEMM consumes.
        let dim = emb.dim();
        let sequences: Vec<Tensor> = table
            .rows
            .iter()
            .map(|row| {
                let toks: Vec<f32> = tokenize_tuple(row)
                    .iter()
                    .filter_map(|t| emb.get(t))
                    .take(max_tokens)
                    .flat_map(|v| v.iter().copied())
                    .collect();
                if toks.is_empty() {
                    // Guarantee at least one step so empty tuples
                    // still encode.
                    Tensor::zeros(1, dim)
                } else {
                    Tensor::from_vec(toks.len() / dim, dim, toks)
                }
            })
            .collect();

        // The LSTM path trains pair-by-pair; run_epochs drives it over
        // a column of pair indices with batch_size 1, which shuffles in
        // exactly the order the seed's hand-rolled loop did.
        let index = Tensor::from_vec(pairs.len(), 1, (0..pairs.len()).map(|i| i as f32).collect());
        let opts = TrainOpts::default()
            .with_epochs(config.epochs)
            .with_lr(config.lr)
            .with_batch_size(1);
        let mut trainer = LstmPairTrainer {
            encoder: &mut encoder,
            classifier: &mut classifier,
            opt: &mut opt,
            sequences: &sequences,
            pairs,
            labels,
            w_neg,
            w_pos,
        };
        run_epochs("er.deeper_lstm", &mut trainer, &index, None, &opts, rng);
        DeepEr {
            emb,
            composition: CompositionState::Lstm {
                encoder,
                max_tokens,
            },
            classifier,
            config,
        }
    }

    fn seq_var(tape: &Tape, seq: &Tensor) -> Var {
        tape.var_slice(seq.rows, seq.cols, &seq.data)
    }

    /// Match probabilities for candidate pairs over `table`.
    ///
    /// Panics on out-of-range pair indices; service code should use
    /// [`DeepEr::try_predict`] (or [`DeepEr::try_predict_aligned`] for
    /// the batch-invariant path) instead.
    pub fn predict(&self, table: &Table, pairs: &[(usize, usize)]) -> Vec<f32> {
        self.try_predict(table, pairs)
            .unwrap_or_else(|e| panic!("DeepEr::predict: {e}"))
    }

    /// Match probabilities for candidate pairs over `table`, validating
    /// indices instead of panicking.
    pub fn try_predict(&self, table: &Table, pairs: &[(usize, usize)]) -> DcResult<Vec<f32>> {
        check_pairs(pairs, table.rows.len())?;
        Ok(self.predict_impl(table, pairs, false))
    }

    /// [`DeepEr::try_predict`] through the row-tile-aligned GEMM paths
    /// ([`LstmEncoder::encode_batch_aligned`],
    /// [`Mlp::predict_proba_aligned`]): every pair's probability is a
    /// pure bitwise function of that pair alone, independent of what
    /// else shares the batch and of `DC_THREADS`. This is the execution
    /// path behind dc-serve's match endpoint — coalesced micro-batches
    /// return exactly the bits a solo request would.
    pub fn try_predict_aligned(
        &self,
        table: &Table,
        pairs: &[(usize, usize)],
    ) -> DcResult<Vec<f32>> {
        check_pairs(pairs, table.rows.len())?;
        Ok(self.predict_impl(table, pairs, true))
    }

    /// Distributed tuple representations for the given rows (validated):
    /// mean-of-embeddings for the average composition, the aligned LSTM
    /// hidden state for the LSTM composition. Powers dc-serve's encode
    /// endpoint; the aligned path keeps each row's vector bitwise
    /// independent of the request batch it rode in with.
    pub fn try_encode(&self, table: &Table, rows: &[usize]) -> DcResult<Vec<Vec<f32>>> {
        let n = table.rows.len();
        if let Some(&r) = rows.iter().find(|&&r| r >= n) {
            return Err(dc_core::DcError::invalid(format!(
                "row {r} out of range for {n} rows"
            )));
        }
        match &self.composition {
            CompositionState::Average => {
                let vectors = tuple_vectors(&self.emb, table);
                Ok(rows.iter().map(|&r| vectors[r].clone()).collect())
            }
            CompositionState::Lstm {
                encoder,
                max_tokens,
            } => {
                let seqs: Vec<Tensor> = rows
                    .iter()
                    .map(|&r| self.row_sequence(table, r, *max_tokens))
                    .collect();
                Ok(encoder
                    .encode_batch_aligned(&seqs)
                    .into_iter()
                    .map(|h| h.data)
                    .collect())
            }
        }
    }

    /// Token-embedding sequence for one row (empty tuples give a `0×d`
    /// sequence, which encodes to the zero state).
    fn row_sequence(&self, table: &Table, r: usize, max_tokens: usize) -> Tensor {
        let toks: Vec<Vec<f32>> = tokenize_tuple(&table.rows[r])
            .iter()
            .filter_map(|t| self.emb.get(t).map(|v| v.to_vec()))
            .take(max_tokens)
            .collect();
        Tensor::from_vec(toks.len(), self.emb.dim(), toks.concat())
    }

    /// Shared predict body; `aligned` selects the row-tile-padded GEMM
    /// paths (bitwise batch-invariant) over the packed ones (faster by
    /// a hair, ulp-level batch-dependent).
    fn predict_impl(&self, table: &Table, pairs: &[(usize, usize)], aligned: bool) -> Vec<f32> {
        if pairs.is_empty() {
            return Vec::new();
        }
        match &self.composition {
            CompositionState::Average => {
                let vectors = tuple_vectors(&self.emb, table);
                let x = embedding_feature_matrix(&vectors, pairs);
                if aligned {
                    self.classifier.predict_proba_aligned(&x)
                } else {
                    self.classifier.predict_proba(&x)
                }
            }
            CompositionState::Lstm {
                encoder,
                max_tokens,
            } => {
                // One encoding per distinct row index. The token
                // sequences are assembled serially (hash lookups), then
                // the independent LSTM lanes run as one batch across
                // the shared worker pool.
                let mut idx: Vec<usize> = pairs.iter().flat_map(|&(a, b)| [a, b]).collect();
                idx.sort_unstable();
                idx.dedup();
                let seqs: Vec<Tensor> = idx
                    .iter()
                    .map(|&r| self.row_sequence(table, r, *max_tokens))
                    .collect();
                let encoded = if aligned {
                    encoder.encode_batch_aligned(&seqs)
                } else {
                    encoder.encode_batch(&seqs)
                };
                let cache: std::collections::HashMap<usize, Tensor> =
                    idx.iter().copied().zip(encoded).collect();
                let mut feats = Vec::with_capacity(pairs.len());
                for &(a, b) in pairs {
                    let (ha, hb) = (&cache[&a], &cache[&b]);
                    let diff = ha.sub(hb).map(f32::abs);
                    let had = ha.mul(hb);
                    feats.push(Tensor::hstack(&[diff, had]));
                }
                let x = Tensor::vstack(&feats);
                if aligned {
                    self.classifier.predict_proba_aligned(&x)
                } else {
                    self.classifier.predict_proba(&x)
                }
            }
        }
    }

    /// Binary decisions at a threshold.
    pub fn predict_labels(
        &self,
        table: &Table,
        pairs: &[(usize, usize)],
        threshold: f32,
    ) -> Vec<bool> {
        self.predict(table, pairs)
            .into_iter()
            .map(|p| p >= threshold)
            .collect()
    }

    /// The training configuration used.
    pub fn config(&self) -> &DeepErConfig {
        &self.config
    }
}

/// Pair-by-pair [`Trainer`] for the LSTM composition: each "batch" is
/// a single row of the pair-index column, decoded back to the labelled
/// pair it names.
struct LstmPairTrainer<'a> {
    encoder: &'a mut LstmEncoder,
    classifier: &'a mut Mlp,
    opt: &'a mut Adam,
    sequences: &'a [Tensor],
    pairs: &'a [(usize, usize)],
    labels: &'a [bool],
    w_neg: f32,
    w_pos: f32,
}

impl Trainer for LstmPairTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        debug_assert_eq!(batch.x.rows, 1, "LSTM path trains pair-by-pair");
        let idx = batch.x.data[0] as usize;
        let (a, b) = self.pairs[idx];
        let label = self.labels[idx];
        let tape = ctx.tape;
        let lvars = self.encoder.bind(tape);
        let cvars = self.classifier.bind(tape);
        let sa = DeepEr::seq_var(tape, &self.sequences[a]);
        let sb = DeepEr::seq_var(tape, &self.sequences[b]);
        let ha = self.encoder.forward_tape(tape, sa, &lvars);
        let hb = self.encoder.forward_tape(tape, sb, &lvars);
        let diff = tape.abs(tape.sub(ha, hb));
        let had = tape.mul(ha, hb);
        let feat = tape.concat(&[diff, had]);
        let logit = self.classifier.forward_tape(tape, feat, &cvars, None);
        let target = Tensor::scalar(if label { 1.0 } else { 0.0 });
        let weight = Tensor::scalar(if label { self.w_pos } else { self.w_neg });
        let loss = tape.bce_with_logits(logit, target, weight);
        let loss_value = tape.item(loss);
        dc_check::debug_validate("DeepEr::train_lstm", tape, loss);
        tape.backward(loss);
        self.opt.begin_step();
        self.encoder.apply_grads(self.opt, 0, tape, &lvars);
        let base = self.encoder.slot_count();
        for (slot, (layer, lv)) in self.classifier.layers.iter_mut().zip(&cvars).enumerate() {
            tape.with_grad(lv.w, |gw| {
                tape.with_grad(lv.b, |gb| layer.apply_grads(self.opt, base + slot, gw, gb))
            });
        }
        StepStats {
            loss: loss_value,
            aux: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{ErBenchmark, ErSuite};
    use dc_embed::SgnsConfig;
    use dc_nn::metrics::f1_score;
    use rand::SeedableRng;

    fn word_embeddings(bench: &ErBenchmark, rng: &mut StdRng) -> Embeddings {
        let mut docs: Vec<Vec<String>> =
            bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
        docs.extend(dc_datagen::corpus::domain_corpus(300, rng));
        Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 16,
                epochs: 5,
                ..Default::default()
            },
            rng,
        )
    }

    type Pairs = Vec<(usize, usize)>;

    fn split(bench: &ErBenchmark, rng: &mut StdRng) -> (Pairs, Vec<bool>, Pairs, Vec<bool>) {
        let pairs = bench.labeled_pairs(3, rng);
        let (train, test) = ErBenchmark::split_pairs(&pairs, 0.7, rng);
        (
            train.iter().map(|p| (p.a, p.b)).collect(),
            train.iter().map(|p| p.label).collect(),
            test.iter().map(|p| (p.a, p.b)).collect(),
            test.iter().map(|p| p.label).collect(),
        )
    }

    #[test]
    fn average_composition_learns_clean_suite() {
        let mut rng = StdRng::seed_from_u64(100);
        let bench = ErBenchmark::generate(ErSuite::Clean, 60, 3, &mut rng);
        let emb = word_embeddings(&bench, &mut rng);
        let (tp, tl, ep, el) = split(&bench, &mut rng);
        let model = DeepEr::train(
            emb,
            &bench.table,
            &tp,
            &tl,
            Composition::Average,
            DeepErConfig::default(),
            &mut rng,
        );
        let pred = model.predict_labels(&bench.table, &ep, 0.5);
        let f1 = f1_score(&pred, &el);
        assert!(f1 > 0.8, "clean-suite F1 {f1}");
    }

    #[test]
    fn average_composition_learns_dirty_suite() {
        let mut rng = StdRng::seed_from_u64(101);
        let bench = ErBenchmark::generate(ErSuite::Dirty, 60, 3, &mut rng);
        let emb = word_embeddings(&bench, &mut rng);
        let (tp, tl, ep, el) = split(&bench, &mut rng);
        let model = DeepEr::train(
            emb,
            &bench.table,
            &tp,
            &tl,
            Composition::Average,
            DeepErConfig::default(),
            &mut rng,
        );
        let pred = model.predict_labels(&bench.table, &ep, 0.5);
        let f1 = f1_score(&pred, &el);
        assert!(f1 > 0.6, "dirty-suite F1 {f1}");
    }

    #[test]
    fn lstm_composition_trains_and_predicts() {
        let mut rng = StdRng::seed_from_u64(102);
        let bench = ErBenchmark::generate(ErSuite::Clean, 25, 2, &mut rng);
        let emb = word_embeddings(&bench, &mut rng);
        let (tp, tl, ep, el) = split(&bench, &mut rng);
        let model = DeepEr::train(
            emb,
            &bench.table,
            &tp,
            &tl,
            Composition::Lstm {
                hidden: 8,
                max_tokens: 10,
            },
            DeepErConfig {
                epochs: 8,
                lr: 0.02,
                ..Default::default()
            },
            &mut rng,
        );
        let pred = model.predict_labels(&bench.table, &ep, 0.5);
        let f1 = f1_score(&pred, &el);
        assert!(f1 > 0.5, "LSTM-composition F1 {f1}");
    }

    #[test]
    fn try_predict_rejects_out_of_range_pairs() {
        let mut rng = StdRng::seed_from_u64(104);
        let bench = ErBenchmark::generate(ErSuite::Clean, 10, 2, &mut rng);
        let emb = word_embeddings(&bench, &mut rng);
        let (tp, tl, _, _) = split(&bench, &mut rng);
        let model = DeepEr::train(
            emb,
            &bench.table,
            &tp,
            &tl,
            Composition::Average,
            DeepErConfig {
                epochs: 2,
                ..Default::default()
            },
            &mut rng,
        );
        let n = bench.table.rows.len();
        let err = model.try_predict(&bench.table, &[(0, n)]).unwrap_err();
        assert_eq!(err.kind(), "invalid_input");
        assert!(model.try_predict(&bench.table, &[]).unwrap().is_empty());
    }

    #[test]
    fn aligned_predict_is_batch_invariant_and_checkpoint_round_trips() {
        // Both compositions: per-pair probabilities through the aligned
        // path must be bitwise identical whether the pair is scored
        // alone or inside a larger batch — the dc-serve micro-batch
        // contract — and must survive a serde checkpoint round-trip.
        for (seed, comp) in [
            (105, Composition::Average),
            (
                106,
                Composition::Lstm {
                    hidden: 8,
                    max_tokens: 10,
                },
            ),
        ] {
            let mut rng = StdRng::seed_from_u64(seed);
            let bench = ErBenchmark::generate(ErSuite::Clean, 20, 2, &mut rng);
            let emb = word_embeddings(&bench, &mut rng);
            let (tp, tl, ep, _) = split(&bench, &mut rng);
            let model = DeepEr::train(
                emb,
                &bench.table,
                &tp,
                &tl,
                comp,
                DeepErConfig {
                    epochs: 2,
                    ..Default::default()
                },
                &mut rng,
            );
            let all = model.try_predict_aligned(&bench.table, &ep).unwrap();
            for (i, &pair) in ep.iter().enumerate() {
                let solo = model.try_predict_aligned(&bench.table, &[pair]).unwrap();
                assert_eq!(
                    solo[0].to_bits(),
                    all[i].to_bits(),
                    "pair {pair:?} depends on batch composition"
                );
            }
            let json = serde_json::to_string(&model).unwrap();
            let back: DeepEr = serde_json::from_str(&json).unwrap();
            let redo = back.try_predict_aligned(&bench.table, &ep).unwrap();
            let bits = |v: &[f32]| v.iter().map(|p| p.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&redo), bits(&all), "checkpoint changed predictions");
        }
    }

    #[test]
    fn predict_handles_empty_tuples() {
        let mut rng = StdRng::seed_from_u64(103);
        let mut bench = ErBenchmark::generate(ErSuite::Clean, 10, 2, &mut rng);
        // Null out one row entirely.
        let arity = bench.table.schema.arity();
        for c in 0..arity {
            bench.table.rows[0][c] = dc_relational::Value::Null;
        }
        let emb = word_embeddings(&bench, &mut rng);
        let (tp, tl, _, _) = split(&bench, &mut rng);
        let model = DeepEr::train(
            emb,
            &bench.table,
            &tp,
            &tl,
            Composition::Average,
            DeepErConfig {
                epochs: 3,
                ..Default::default()
            },
            &mut rng,
        );
        let probs = model.predict(&bench.table, &[(0, 1)]);
        assert!(probs[0].is_finite());
    }
}
