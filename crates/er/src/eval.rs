//! Matcher evaluation: precision/recall/F1 at a threshold, and the
//! best-F1 threshold sweep used by every E3/E5 table row.

use dc_nn::metrics::{confusion, BinaryConfusion};

/// Evaluation of a matcher on a labelled pair set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MatchEval {
    /// Precision at the threshold.
    pub precision: f64,
    /// Recall at the threshold.
    pub recall: f64,
    /// F1 at the threshold.
    pub f1: f64,
    /// The threshold used.
    pub threshold: f32,
}

/// Evaluate probability scores against gold labels at a threshold.
pub fn evaluate_at(scores: &[f32], gold: &[bool], threshold: f32) -> MatchEval {
    let pred: Vec<bool> = scores.iter().map(|&s| s >= threshold).collect();
    let c: BinaryConfusion = confusion(&pred, gold);
    MatchEval {
        precision: c.precision(),
        recall: c.recall(),
        f1: c.f1(),
        threshold,
    }
}

/// Sweep candidate thresholds (the distinct scores) and return the
/// evaluation with the best F1.
pub fn best_threshold(scores: &[f32], gold: &[bool]) -> MatchEval {
    let mut candidates: Vec<f32> = scores.to_vec();
    candidates.push(0.5);
    candidates.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    candidates.dedup();
    let mut best = evaluate_at(scores, gold, 0.5);
    for &t in &candidates {
        let e = evaluate_at(scores, gold, t);
        if e.f1 > best.f1 {
            best = e;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluate_at_basic() {
        let scores = [0.9, 0.4, 0.8, 0.2];
        let gold = [true, false, false, false];
        let e = evaluate_at(&scores, &gold, 0.5);
        assert!((e.precision - 0.5).abs() < 1e-9);
        assert!((e.recall - 1.0).abs() < 1e-9);
    }

    #[test]
    fn best_threshold_separable_scores_reach_f1_one() {
        let scores = [0.9, 0.8, 0.3, 0.1];
        let gold = [true, true, false, false];
        let e = best_threshold(&scores, &gold);
        assert_eq!(e.f1, 1.0);
        assert!(e.threshold > 0.3 && e.threshold <= 0.8);
    }

    #[test]
    fn best_threshold_beats_default_when_scores_shifted() {
        // All scores compressed below 0.5: default threshold finds
        // nothing; the sweep still separates.
        let scores = [0.40, 0.38, 0.1, 0.05];
        let gold = [true, true, false, false];
        let default = evaluate_at(&scores, &gold, 0.5);
        let swept = best_threshold(&scores, &gold);
        assert_eq!(default.f1, 0.0);
        assert_eq!(swept.f1, 1.0);
    }
}
