//! Blocking equivalence suite (ISSUE 3): the `dc_index`-backed
//! [`dc_er::blocking::LshBlocker`] must return *exactly* the seed
//! pair set, reproduced verbatim as [`dc_er::blocking::reference`].
//!
//! Both paths center the vectors with the same shared code, but the
//! new path computes hyperplane scores through the blocked kernel,
//! whose sum association differs from the seed's sequential dots — on
//! a near-zero margin that could flip a sign bit. Inputs are therefore
//! quantized to a dyadic grid (every dot exact in f32) and an
//! f64-margin guard skips any case that still lands near a boundary.
//! `scripts/lint.sh` runs this suite under `DC_THREADS=1`, `=2`, and
//! the default.

use dc_er::blocking::{reference, LshBlocker};
use proptest::prelude::*;

/// Quantized vectors on the grid `k/8`, |k| ≤ 32.
fn quantized(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut state = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
        | 1;
    (0..n)
        .map(|_| {
            (0..dim)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let k = ((state >> 33) % 65) as i64 - 32;
                    k as f32 / 8.0
                })
                .collect()
        })
        .collect()
}

/// True when any f64 margin of a *centered* vector against a plane is
/// suspiciously close to zero (sign could depend on association).
/// Centering divides by `n`, so centered components are generally not
/// dyadic; the guard is what keeps the property sound anyway.
fn near_boundary(vectors: &[Vec<f32>], planes: &[Vec<f32>]) -> bool {
    if vectors.is_empty() {
        return false;
    }
    let d = vectors[0].len();
    let mut mean = vec![0.0f64; d];
    for v in vectors {
        for (m, &x) in mean.iter_mut().zip(v) {
            *m += f64::from(x);
        }
    }
    let inv = 1.0 / vectors.len() as f64;
    for m in &mut mean {
        *m *= inv;
    }
    vectors.iter().any(|v| {
        planes.iter().any(|p| {
            let dot: f64 = v
                .iter()
                .zip(&mean)
                .zip(p)
                .map(|((&x, &m), &w)| (f64::from(x) - m) * f64::from(w))
                .sum();
            dot.abs() < 1e-4 && dot != 0.0
        })
    })
}

proptest! {
    #[test]
    fn indexed_blocker_matches_seed_pair_set(
        n in 0usize..90,
        dim in 1usize..8,
        bands in 1usize..5,
        rows in 1usize..7,
        seed in 0u64..u64::MAX,
    ) {
        let vectors = quantized(n, dim, seed);
        let planes = quantized(bands * rows, dim, seed ^ 0x9e3779b97f4a7c15);
        if near_boundary(&vectors, &planes) {
            return Ok(());
        }
        let new = LshBlocker::from_planes(planes.clone(), bands, rows);
        let old = reference::LshBlocker::from_planes(planes, bands, rows);
        prop_assert_eq!(new.candidates(&vectors), old.candidates(&vectors));
    }

    #[test]
    fn signatures_match_reference_bit_for_bit(
        dim in 1usize..10,
        nbits in 1usize..24,
        seed in 0u64..u64::MAX,
    ) {
        let planes = quantized(nbits, dim, seed);
        let v = &quantized(1, dim, seed ^ 0x517cc1b727220a95)[0];
        let new = LshBlocker::from_planes(planes.clone(), 1, nbits);
        let old = reference::LshBlocker::from_planes(planes, 1, nbits);
        prop_assert_eq!(new.signature(v), old.signature(v));
    }

    #[test]
    fn probing_never_loses_seed_pairs(
        n in 0usize..60,
        probes in 1usize..3,
        seed in 0u64..u64::MAX,
    ) {
        let (bands, rows, dim) = (3, 5, 6);
        let vectors = quantized(n, dim, seed);
        let planes = quantized(bands * rows, dim, seed ^ 0x2545f4914f6cdd1d);
        if near_boundary(&vectors, &planes) {
            return Ok(());
        }
        let old = reference::LshBlocker::from_planes(planes.clone(), bands, rows);
        let probed = LshBlocker::from_planes(planes, bands, rows).with_probes(probes);
        let seed_pairs = old.candidates(&vectors);
        let probed_pairs = probed.candidates(&vectors);
        prop_assert!(seed_pairs.is_subset(&probed_pairs));
    }
}
