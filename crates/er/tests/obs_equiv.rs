//! Observability must be *observational*: turning `DC_OBS` recording
//! on cannot change a single bit of trained weights. The dc-obs hooks
//! in the tape, the worker pool and `run_epochs` never draw from the
//! training rng, so identical seeds must give bitwise-identical
//! classifiers whether the registry records or not — under any
//! `DC_THREADS` setting (`scripts/lint.sh` runs this under 1 and 2).

use dc_datagen::{ErBenchmark, ErSuite};
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::{Composition, DeepEr, DeepErConfig};
use dc_relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::{Mutex, OnceLock};

/// Serialise tests that flip the process-global dc-obs gate.
fn gate_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Train a small DeepER end-to-end from seed 7 and return every
/// classifier weight as raw bits.
fn train_once(obs_on: bool, composition: Composition) -> Vec<u32> {
    dc_obs::set_enabled(obs_on);
    let mut rng = StdRng::seed_from_u64(7);
    let bench = ErBenchmark::generate(ErSuite::Clean, 20, 2, &mut rng);
    let docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    let emb = Embeddings::train(
        &docs,
        &SgnsConfig::default().with_dim(8).with_epochs(2),
        &mut rng,
    );
    let pairs = bench.labeled_pairs(2, &mut rng);
    let tp: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
    let tl: Vec<bool> = pairs.iter().map(|p| p.label).collect();
    let model = DeepEr::train(
        emb,
        &bench.table,
        &tp,
        &tl,
        composition,
        DeepErConfig::default().with_epochs(3),
        &mut rng,
    );
    dc_obs::set_enabled(false);
    model
        .classifier
        .layers
        .iter()
        .flat_map(|l| l.w.data.iter().chain(&l.b.data).map(|v| v.to_bits()))
        .collect()
}

#[test]
fn average_composition_weights_identical_with_obs_on_and_off() {
    let _guard = gate_lock().lock().expect("gate lock");
    let off = train_once(false, Composition::Average);
    let on = train_once(true, Composition::Average);
    assert_eq!(off, on, "DC_OBS recording perturbed Average training");
}

#[test]
fn lstm_composition_weights_identical_with_obs_on_and_off() {
    let _guard = gate_lock().lock().expect("gate lock");
    let comp = Composition::Lstm {
        hidden: 4,
        max_tokens: 6,
    };
    let off = train_once(false, comp.clone());
    let on = train_once(true, comp);
    assert_eq!(off, on, "DC_OBS recording perturbed LSTM training");
}
