//! # dc-relational
//!
//! The relational substrate AutoDC curates: typed tables, CSV I/O,
//! tokenisation, integrity constraints and the heterogeneous table graph.
//!
//! The paper (*"Data Curation with Deep Learning"*, EDBT 2020) treats the
//! relational database as the object of curation and repeatedly leans on
//! structures a plain document model lacks:
//!
//! * typed cells, tuples, columns and tables — the "atomic units" whose
//!   distributed representations §3.1 proposes (see [`value`], [`table`]);
//! * functional dependencies and conditional FDs — "important hints
//!   between semantically related cells" (§3.1; see [`fd`]);
//! * denial constraints — the weak-supervision rule language of §6.2.4
//!   and BART-style benchmarking of §6.2.3 (see [`constraints`]);
//! * the heterogeneous graph of a table — Figure 4: one node per distinct
//!   attribute value, undirected co-occurrence edges, directed FD edges
//!   (see [`graph`]).

pub mod constraints;
pub mod fd;
pub mod graph;
pub mod ind;
pub mod table;
pub mod tokenize;
pub mod value;

pub use constraints::{DenialConstraint, Predicate, PredicateOp};
pub use fd::{discover_fds, ConditionalFd, FunctionalDependency};
pub use graph::{EdgeKind, TableGraph};
pub use ind::{discover_inds, inclusion_holds, unique_columns, InclusionDependency};
pub use table::{AttrType, Attribute, Schema, Table};
pub use tokenize::{normalize, tokenize, tokenize_tuple};
pub use value::Value;
