//! Denial constraints — the rule language for weak supervision (§6.2.4:
//! "if two tuples have the same country but different capitals, they are
//! in error") and for BART-style error benchmarking (§6.2.3).
//!
//! A denial constraint forbids any pair of tuples `(s, t)` satisfying
//! all its predicates; a table is clean w.r.t. the constraint when no
//! such pair exists.

use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Comparison operator in a denial-constraint predicate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredicateOp {
    /// Equal.
    Eq,
    /// Not equal.
    Neq,
    /// Less than (numeric or lexicographic per [`Value`] ordering).
    Lt,
    /// Greater than.
    Gt,
}

impl PredicateOp {
    fn eval(self, a: &Value, b: &Value) -> bool {
        match self {
            PredicateOp::Eq => a == b,
            PredicateOp::Neq => a != b,
            PredicateOp::Lt => matches!(a.partial_cmp(b), Some(std::cmp::Ordering::Less)),
            PredicateOp::Gt => matches!(a.partial_cmp(b), Some(std::cmp::Ordering::Greater)),
        }
    }
}

/// One predicate `s.left  op  t.right` over a tuple pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    /// Column of the first tuple.
    pub left: usize,
    /// Comparison operator.
    pub op: PredicateOp,
    /// Column of the second tuple.
    pub right: usize,
}

impl Predicate {
    /// `s.left op t.right`.
    pub fn new(left: usize, op: PredicateOp, right: usize) -> Self {
        Predicate { left, op, right }
    }
}

/// A denial constraint: ¬(p₁ ∧ p₂ ∧ …) over tuple pairs.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DenialConstraint {
    /// The conjunction of predicates that must never all hold.
    pub predicates: Vec<Predicate>,
    /// Optional human-readable label.
    pub label: String,
}

impl DenialConstraint {
    /// Build from predicates with a label.
    pub fn new(label: impl Into<String>, predicates: Vec<Predicate>) -> Self {
        DenialConstraint {
            predicates,
            label: label.into(),
        }
    }

    /// Express an FD `lhs → rhs` as a denial constraint:
    /// ¬(s.lhs = t.lhs ∧ s.rhs ≠ t.rhs).
    pub fn from_fd(fd: &crate::fd::FunctionalDependency, label: impl Into<String>) -> Self {
        let mut preds: Vec<Predicate> = fd
            .lhs
            .iter()
            .map(|&c| Predicate::new(c, PredicateOp::Eq, c))
            .collect();
        preds.push(Predicate::new(fd.rhs, PredicateOp::Neq, fd.rhs));
        DenialConstraint::new(label, preds)
    }

    /// Does the ordered pair `(s, t)` jointly satisfy every predicate
    /// (i.e. witness a violation)? Pairs with nulls on any referenced
    /// column never violate.
    pub fn pair_violates(&self, s: &[Value], t: &[Value]) -> bool {
        for p in &self.predicates {
            let a = &s[p.left];
            let b = &t[p.right];
            if a.is_null() || b.is_null() {
                return false;
            }
            if !p.op.eval(a, b) {
                return false;
            }
        }
        !self.predicates.is_empty()
    }

    /// All violating ordered pairs `(i, j)`, `i != j`.
    pub fn violations(&self, table: &Table) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, s) in table.rows.iter().enumerate() {
            for (j, t) in table.rows.iter().enumerate() {
                if i != j && self.pair_violates(s, t) {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// True when no tuple pair violates the constraint.
    pub fn holds(&self, table: &Table) -> bool {
        for (i, s) in table.rows.iter().enumerate() {
            for (j, t) in table.rows.iter().enumerate() {
                if i != j && self.pair_violates(s, t) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fd::FunctionalDependency;
    use crate::table::{employee_example, AttrType, Schema, Table};

    #[test]
    fn fd_as_denial_constraint_matches_fd_semantics() {
        let t = employee_example();
        let fd_ok = FunctionalDependency::new(vec![0], 2);
        let fd_bad = FunctionalDependency::new(vec![2], 3);
        assert!(DenialConstraint::from_fd(&fd_ok, "fd1").holds(&t));
        assert!(!DenialConstraint::from_fd(&fd_bad, "fd2").holds(&t));
    }

    #[test]
    fn country_capital_weak_rule() {
        // §6.2.4's example: same country, different capitals ⇒ error.
        let mut t = Table::new(
            "geo",
            Schema::new(&[("country", AttrType::Text), ("capital", AttrType::Text)]),
        );
        t.push(vec!["France".into(), "Paris".into()]);
        t.push(vec!["France".into(), "Lyon".into()]);
        t.push(vec!["Germany".into(), "Berlin".into()]);
        let dc = DenialConstraint::new(
            "same country different capital",
            vec![
                Predicate::new(0, PredicateOp::Eq, 0),
                Predicate::new(1, PredicateOp::Neq, 1),
            ],
        );
        let v = dc.violations(&t);
        assert!(v.contains(&(0, 1)) && v.contains(&(1, 0)));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ordering_predicates() {
        // "No employee may earn more than their manager":
        // ¬(s.manager_id = t.id ∧ s.salary > t.salary)
        let mut t = Table::new(
            "pay",
            Schema::new(&[
                ("id", AttrType::Int),
                ("manager_id", AttrType::Int),
                ("salary", AttrType::Int),
            ]),
        );
        t.push(vec![Value::Int(1), Value::Null, Value::Int(100)]);
        t.push(vec![Value::Int(2), Value::Int(1), Value::Int(150)]); // violates
        t.push(vec![Value::Int(3), Value::Int(1), Value::Int(80)]);
        let dc = DenialConstraint::new(
            "salary above manager",
            vec![
                Predicate::new(1, PredicateOp::Eq, 0),
                Predicate::new(2, PredicateOp::Gt, 2),
            ],
        );
        assert_eq!(dc.violations(&t), vec![(1, 0)]);
    }

    #[test]
    fn nulls_never_violate() {
        let mut t = Table::new(
            "geo",
            Schema::new(&[("country", AttrType::Text), ("capital", AttrType::Text)]),
        );
        t.push(vec!["France".into(), Value::Null]);
        t.push(vec!["France".into(), "Paris".into()]);
        let dc = DenialConstraint::new(
            "x",
            vec![
                Predicate::new(0, PredicateOp::Eq, 0),
                Predicate::new(1, PredicateOp::Neq, 1),
            ],
        );
        assert!(dc.holds(&t));
    }

    #[test]
    fn empty_constraint_never_violates() {
        let t = employee_example();
        assert!(DenialConstraint::new("empty", vec![]).holds(&t));
    }
}
