//! Typed cell values — the "smallest data element in a relational
//! database" (§3.1).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single cell value of a tuple.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL / missing.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Text constructor from anything string-like.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and floats (and bools as 0/1) become `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Text view (only for [`Value::Text`]).
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Parse a raw CSV field: empty → Null, then int, float, bool, text.
    pub fn parse(raw: &str) -> Value {
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("null") {
            return Value::Null;
        }
        // Only treat a field as numeric when the text round-trips, so
        // identifier-like strings ("0001", "+5") keep their exact form.
        if let Ok(i) = trimmed.parse::<i64>() {
            if i.to_string() == trimmed {
                return Value::Int(i);
            }
        }
        if let Ok(f) = trimmed.parse::<f64>() {
            if Value::Float(f).canonical() == trimmed || format!("{f}") == trimmed {
                return Value::Float(f);
            }
        }
        match trimmed.to_ascii_lowercase().as_str() {
            "true" => Value::Bool(true),
            "false" => Value::Bool(false),
            _ => Value::Text(trimmed.to_string()),
        }
    }

    /// Canonical string used for hashing, graph node identity and
    /// tokenisation. Nulls map to the empty string.
    pub fn canonical(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            // Trim trailing zeros so 1.0 and 1.00 share a node.
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Text(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a == b || (a.is_nan() && b.is_nan()),
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => *a as f64 == *b,
            (Value::Text(a), Value::Text(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash through the canonical string so Int(1) and Float(1.0)
        // (which compare equal) also hash equal.
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            _ => {
                2u8.hash(state);
                self.canonical().hash(state);
            }
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) => Some(Ordering::Less),
            (_, Value::Null) => Some(Ordering::Greater),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            _ => match (self.as_f64(), other.as_f64()) {
                (Some(a), Some(b)) => a.partial_cmp(&b),
                _ => None,
            },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            other => write!(f, "{}", other.canonical()),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn parse_infers_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("4.5"), Value::Float(4.5));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse("  hi  "), Value::text("hi"));
        assert!(Value::parse("").is_null());
        assert!(Value::parse("NULL").is_null());
    }

    #[test]
    fn int_float_cross_type_equality_and_hash() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        let mut set = HashSet::new();
        set.insert(Value::Int(1));
        assert!(set.contains(&Value::Float(1.0)));
    }

    #[test]
    fn canonical_trims_float_zeros() {
        assert_eq!(Value::Float(3.0).canonical(), "3");
        assert_eq!(Value::Float(3.25).canonical(), "3.25");
    }

    #[test]
    fn ordering_null_first() {
        let mut vals = [Value::Int(2), Value::Null, Value::Int(1)];
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(1));
    }

    #[test]
    fn nan_equals_nan() {
        // Needed so distinct-value maps don't grow unboundedly on NaN.
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
    }

    #[test]
    fn display_roundtrip_for_text() {
        let v = Value::text("John Doe");
        assert_eq!(v.to_string(), "John Doe");
        assert_eq!(Value::parse(&v.to_string()), v);
    }
}
