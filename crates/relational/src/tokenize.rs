//! Text normalisation and tokenisation.
//!
//! The embedding pipelines (word2vec-style cell embeddings, DeepER tuple
//! composition, the discovery matchers) all consume tokens produced
//! here, so normalisation decisions are made once.

use crate::table::Table;

/// Lowercase, map punctuation to spaces, and collapse whitespace.
pub fn normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for c in s.chars() {
        let c = if c.is_alphanumeric() {
            c.to_ascii_lowercase()
        } else {
            ' '
        };
        if c == ' ' {
            if !last_space {
                out.push(' ');
            }
            last_space = true;
        } else {
            out.push(c);
            last_space = false;
        }
    }
    if out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Split into normalised word tokens.
pub fn tokenize(s: &str) -> Vec<String> {
    normalize(s)
        .split(' ')
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect()
}

/// Tokenise one tuple: the "naive adaptation treats each tuple as a
/// document where the values of each attribute correspond to words"
/// (§3.1). Attribute order is preserved; nulls contribute nothing.
pub fn tokenize_tuple(row: &[crate::value::Value]) -> Vec<String> {
    let mut out = Vec::new();
    for v in row {
        if v.is_null() {
            continue;
        }
        out.extend(tokenize(&v.canonical()));
    }
    out
}

/// Tokenise every tuple of a table into "documents".
pub fn table_documents(table: &Table) -> Vec<Vec<String>> {
    table.rows.iter().map(|r| tokenize_tuple(r)).collect()
}

/// Character n-grams of a normalised string (used by syntactic matchers
/// and blocking baselines).
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let norm = normalize(s);
    let chars: Vec<char> = norm.chars().collect();
    if chars.len() < n {
        if chars.is_empty() {
            return Vec::new();
        }
        return vec![norm];
    }
    (0..=chars.len() - n)
        .map(|i| chars[i..i + n].iter().collect())
        .collect()
}

/// Jaccard similarity of two token multisets (computed on sets).
pub fn jaccard(a: &[String], b: &[String]) -> f64 {
    use std::collections::HashSet;
    let sa: HashSet<&String> = a.iter().collect();
    let sb: HashSet<&String> = b.iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Levenshtein edit distance between two strings (on chars).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalised edit similarity in `[0, 1]`.
pub fn edit_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - edit_distance(a, b) as f64 / max as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::employee_example;
    use crate::value::Value;

    #[test]
    fn normalize_strips_punct_and_case() {
        assert_eq!(normalize("John  DOE, Jr."), "john doe jr");
        assert_eq!(normalize("  "), "");
        assert_eq!(normalize("a-b_c"), "a b c");
    }

    #[test]
    fn tokenize_tuple_skips_nulls() {
        let row = vec![Value::text("John Doe"), Value::Null, Value::Int(42)];
        assert_eq!(tokenize_tuple(&row), vec!["john", "doe", "42"]);
    }

    #[test]
    fn table_documents_one_per_row() {
        let docs = table_documents(&employee_example());
        assert_eq!(docs.len(), 4);
        assert!(docs[0].contains(&"john".to_string()));
        assert!(docs[0].contains(&"resources".to_string()));
    }

    #[test]
    fn ngrams_basic_and_short() {
        assert_eq!(char_ngrams("abc", 2), vec!["ab", "bc"]);
        assert_eq!(char_ngrams("a", 3), vec!["a"]);
        assert!(char_ngrams("", 2).is_empty());
    }

    #[test]
    fn jaccard_bounds() {
        let a = vec!["a".to_string(), "b".to_string()];
        let b = vec!["b".to_string(), "c".to_string()];
        assert!((jaccard(&a, &b) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(jaccard(&a, &a), 1.0);
        assert_eq!(jaccard(&[], &[]), 1.0);
        assert_eq!(jaccard(&a, &[]), 0.0);
    }

    #[test]
    fn edit_distance_known() {
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
    }

    #[test]
    fn edit_similarity_bounds() {
        assert_eq!(edit_similarity("", ""), 1.0);
        assert!((edit_similarity("abcd", "abcf") - 0.75).abs() < 1e-9);
    }
}
