//! Key and inclusion-dependency discovery — the metadata behind §3.1's
//! "data enrichment" direction ("joining with other tables ... may
//! result in an enriched table that is more suitable for learning
//! representations"): to enrich automatically, AutoDC must first find
//! which columns are keys and which foreign-key-like inclusions hold
//! across the lake.

use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// A unary inclusion dependency `from_table.from_col ⊆ to_table.to_col`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InclusionDependency {
    /// Index of the dependent table in the analysed lake.
    pub from_table: usize,
    /// Dependent column.
    pub from_col: usize,
    /// Index of the referenced table.
    pub to_table: usize,
    /// Referenced column.
    pub to_col: usize,
}

/// Columns whose non-null values are all distinct (candidate keys).
pub fn unique_columns(table: &Table) -> Vec<usize> {
    (0..table.schema.arity())
        .filter(|&c| {
            let mut seen = HashSet::new();
            table
                .rows
                .iter()
                .filter(|r| !r[c].is_null())
                .all(|r| seen.insert(r[c].clone()))
        })
        .collect()
}

/// Does every non-null value of `a[col_a]` appear in `b[col_b]`?
pub fn inclusion_holds(a: &Table, col_a: usize, b: &Table, col_b: usize) -> bool {
    let domain: HashSet<&Value> = b
        .rows
        .iter()
        .map(|r| &r[col_b])
        .filter(|v| !v.is_null())
        .collect();
    let mut any = false;
    for r in &a.rows {
        let v = &r[col_a];
        if v.is_null() {
            continue;
        }
        any = true;
        if !domain.contains(v) {
            return false;
        }
    }
    any // an all-null column is not evidence of inclusion
}

/// Discover all unary INDs across a lake whose referenced column is a
/// candidate key (i.e. foreign-key-shaped inclusions). Self-inclusions
/// (same table+column) are skipped.
pub fn discover_inds(tables: &[&Table]) -> Vec<InclusionDependency> {
    let keys: Vec<Vec<usize>> = tables.iter().map(|t| unique_columns(t)).collect();
    let mut out = Vec::new();
    for (ti, ta) in tables.iter().enumerate() {
        for ca in 0..ta.schema.arity() {
            for (tj, tb) in tables.iter().enumerate() {
                for &cb in &keys[tj] {
                    if ti == tj && ca == cb {
                        continue;
                    }
                    if inclusion_holds(ta, ca, tb, cb) {
                        out.push(InclusionDependency {
                            from_table: ti,
                            from_col: ca,
                            to_table: tj,
                            to_col: cb,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Enrich `table` by following one discovered IND: hash-join onto the
/// referenced table. Returns `None` when the IND references the same
/// table.
pub fn enrich_via_ind(tables: &[&Table], ind: &InclusionDependency) -> Option<Table> {
    if ind.from_table == ind.to_table {
        return None;
    }
    let from = tables[ind.from_table];
    let to = tables[ind.to_table];
    let left = from.schema.attrs[ind.from_col].name.clone();
    let right = to.schema.attrs[ind.to_col].name.clone();
    Some(from.hash_join(to, &left, &right))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{AttrType, Schema};

    fn people_and_orders() -> (Table, Table) {
        let mut people = Table::new(
            "people",
            Schema::new(&[("id", AttrType::Int), ("name", AttrType::Text)]),
        );
        people.push(vec![Value::Int(1), Value::text("ann")]);
        people.push(vec![Value::Int(2), Value::text("bob")]);
        let mut orders = Table::new(
            "orders",
            Schema::new(&[("oid", AttrType::Int), ("person", AttrType::Int)]),
        );
        orders.push(vec![Value::Int(10), Value::Int(1)]);
        orders.push(vec![Value::Int(11), Value::Int(1)]);
        orders.push(vec![Value::Int(12), Value::Int(2)]);
        (people, orders)
    }

    #[test]
    fn unique_columns_detects_keys() {
        let (people, orders) = people_and_orders();
        assert_eq!(unique_columns(&people), vec![0, 1]);
        assert_eq!(unique_columns(&orders), vec![0]); // person repeats
    }

    #[test]
    fn unique_ignores_nulls() {
        let mut t = Table::new("n", Schema::new(&[("a", AttrType::Int)]));
        t.push(vec![Value::Null]);
        t.push(vec![Value::Null]);
        t.push(vec![Value::Int(1)]);
        assert_eq!(unique_columns(&t), vec![0]);
    }

    #[test]
    fn inclusion_detects_foreign_key() {
        let (people, orders) = people_and_orders();
        assert!(inclusion_holds(&orders, 1, &people, 0));
        assert!(!inclusion_holds(&people, 0, &orders, 0));
    }

    #[test]
    fn discover_finds_the_fk_shape() {
        let (people, orders) = people_and_orders();
        let tables = [&people, &orders];
        let inds = discover_inds(&tables);
        assert!(inds.contains(&InclusionDependency {
            from_table: 1,
            from_col: 1,
            to_table: 0,
            to_col: 0,
        }));
        // No IND claims orders.oid ⊆ people.id (10 ∉ {1,2}).
        assert!(!inds.iter().any(|i| i.from_table == 1 && i.from_col == 0));
    }

    #[test]
    fn enrichment_joins_through_the_ind() {
        let (people, orders) = people_and_orders();
        let tables = [&people, &orders];
        let ind = InclusionDependency {
            from_table: 1,
            from_col: 1,
            to_table: 0,
            to_col: 0,
        };
        let enriched = enrich_via_ind(&tables, &ind).expect("cross-table");
        assert_eq!(enriched.len(), 3);
        let name_col = enriched.schema.index_of("name").expect("name");
        assert_eq!(enriched.cell(0, name_col), &Value::text("ann"));
    }

    #[test]
    fn all_null_column_is_no_inclusion_evidence() {
        let (people, _) = people_and_orders();
        let mut empty = Table::new("e", Schema::new(&[("x", AttrType::Int)]));
        empty.push(vec![Value::Null]);
        assert!(!inclusion_holds(&empty, 0, &people, 0));
    }
}
