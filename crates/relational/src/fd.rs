//! Functional dependencies and conditional functional dependencies —
//! the "data dependencies ... within tables" that §3.1 says cell
//! embeddings must capture, and the repair vocabulary of `dc-clean`.

use crate::table::Table;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A functional dependency `lhs → rhs` over column indices.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FunctionalDependency {
    /// Determinant column indices.
    pub lhs: Vec<usize>,
    /// Dependent column index.
    pub rhs: usize,
}

impl FunctionalDependency {
    /// `lhs → rhs`.
    pub fn new(lhs: Vec<usize>, rhs: usize) -> Self {
        FunctionalDependency { lhs, rhs }
    }

    /// Human-readable rendering with attribute names.
    pub fn display(&self, table: &Table) -> String {
        let lhs: Vec<&str> = self
            .lhs
            .iter()
            .map(|&i| table.schema.attrs[i].name.as_str())
            .collect();
        format!("{} -> {}", lhs.join(","), table.schema.attrs[self.rhs].name)
    }

    fn key(&self, row: &[Value]) -> Vec<Value> {
        self.lhs.iter().map(|&i| row[i].clone()).collect()
    }

    /// True when the table satisfies this FD (rows with nulls on either
    /// side are skipped, the usual simple-null semantics).
    pub fn holds(&self, table: &Table) -> bool {
        self.violations(table).is_empty()
    }

    /// Pairs of row indices that jointly violate the FD: equal LHS,
    /// different RHS. Returns each clashing pair once.
    pub fn violations(&self, table: &Table) -> Vec<(usize, usize)> {
        let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        'rows: for (i, row) in table.rows.iter().enumerate() {
            if row[self.rhs].is_null() {
                continue;
            }
            for &l in &self.lhs {
                if row[l].is_null() {
                    continue 'rows;
                }
            }
            groups.entry(self.key(row)).or_default().push(i);
        }
        let mut out = Vec::new();
        for idxs in groups.values() {
            for (a, &i) in idxs.iter().enumerate() {
                for &j in &idxs[a + 1..] {
                    if table.rows[i][self.rhs] != table.rows[j][self.rhs] {
                        out.push((i, j));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The fraction of rows that would need to change for the FD to
    /// hold (a coarse g3-style error measure in `[0, 1]`).
    pub fn error_rate(&self, table: &Table) -> f64 {
        if table.is_empty() {
            return 0.0;
        }
        let mut groups: HashMap<Vec<Value>, HashMap<Value, usize>> = HashMap::new();
        let mut counted = 0usize;
        'rows: for row in &table.rows {
            if row[self.rhs].is_null() {
                continue;
            }
            for &l in &self.lhs {
                if row[l].is_null() {
                    continue 'rows;
                }
            }
            counted += 1;
            *groups
                .entry(self.key(row))
                .or_default()
                .entry(row[self.rhs].clone())
                .or_insert(0) += 1;
        }
        if counted == 0 {
            return 0.0;
        }
        // Keep the majority RHS per group; the rest are errors.
        let kept: usize = groups
            .values()
            .map(|counts| counts.values().copied().max().unwrap_or(0))
            .sum();
        (counted - kept) as f64 / counted as f64
    }
}

/// A pattern cell in a conditional FD tableau.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pattern {
    /// Matches any value (the `_` wildcard).
    Any,
    /// Matches exactly this constant.
    Const(Value),
}

impl Pattern {
    fn matches(&self, v: &Value) -> bool {
        match self {
            Pattern::Any => true,
            Pattern::Const(c) => c == v,
        }
    }
}

/// A conditional functional dependency: an embedded FD that only applies
/// to tuples matching the LHS pattern tableau, optionally constraining
/// the RHS to a constant (Fan et al., cited as [19] in the paper).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConditionalFd {
    /// The embedded FD.
    pub fd: FunctionalDependency,
    /// One pattern per LHS column (parallel to `fd.lhs`).
    pub lhs_patterns: Vec<Pattern>,
    /// Optional RHS constant pattern.
    pub rhs_pattern: Pattern,
}

impl ConditionalFd {
    /// CFD whose tableau row is `lhs_patterns ‖ rhs_pattern`.
    pub fn new(fd: FunctionalDependency, lhs_patterns: Vec<Pattern>, rhs_pattern: Pattern) -> Self {
        assert_eq!(
            fd.lhs.len(),
            lhs_patterns.len(),
            "one pattern per LHS column"
        );
        ConditionalFd {
            fd,
            lhs_patterns,
            rhs_pattern,
        }
    }

    fn row_in_scope(&self, row: &[Value]) -> bool {
        self.fd
            .lhs
            .iter()
            .zip(&self.lhs_patterns)
            .all(|(&col, pat)| pat.matches(&row[col]))
    }

    /// Row indices violating the CFD.
    ///
    /// With a constant RHS pattern, any in-scope row whose RHS differs is
    /// a violation on its own; with a wildcard RHS the semantics reduce
    /// to the embedded FD restricted to in-scope rows (pairs are
    /// flattened to the involved rows).
    pub fn violations(&self, table: &Table) -> Vec<usize> {
        match &self.rhs_pattern {
            Pattern::Const(c) => {
                let mut out = Vec::new();
                for (i, row) in table.rows.iter().enumerate() {
                    if self.row_in_scope(row)
                        && !row[self.fd.rhs].is_null()
                        && &row[self.fd.rhs] != c
                    {
                        out.push(i);
                    }
                }
                out
            }
            Pattern::Any => {
                let scoped = table.select(|r| self.row_in_scope(r));
                // Map back to original indices.
                let orig: Vec<usize> = table
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| self.row_in_scope(r))
                    .map(|(i, _)| i)
                    .collect();
                let mut out: Vec<usize> = self
                    .fd
                    .violations(&scoped)
                    .into_iter()
                    .flat_map(|(a, b)| [orig[a], orig[b]])
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            }
        }
    }
}

/// Level-wise (TANE-style) discovery of minimal exact FDs with LHS size
/// up to `max_lhs`.
///
/// Exhaustive partition-refinement checking is overkill at AutoDC's
/// table sizes; a direct group-and-test per candidate is O(#candidates ·
/// n) and keeps the code auditable. Candidates whose LHS contains a
/// column already known to determine the RHS (with a smaller LHS) are
/// pruned, so only minimal FDs are returned.
pub fn discover_fds(table: &Table, max_lhs: usize) -> Vec<FunctionalDependency> {
    let m = table.schema.arity();
    let mut found: Vec<FunctionalDependency> = Vec::new();
    let mut lhs_sets: Vec<Vec<usize>> = (0..m).map(|i| vec![i]).collect();
    for _level in 1..=max_lhs {
        let mut next_sets = Vec::new();
        for lhs in &lhs_sets {
            for rhs in 0..m {
                if lhs.contains(&rhs) {
                    continue;
                }
                // Minimality pruning: skip if a subset already works.
                let dominated = found
                    .iter()
                    .any(|fd| fd.rhs == rhs && fd.lhs.iter().all(|c| lhs.contains(c)));
                if dominated {
                    continue;
                }
                let fd = FunctionalDependency::new(lhs.clone(), rhs);
                if fd.holds(table) {
                    found.push(fd);
                }
            }
        }
        // Extend candidate LHS sets for the next level.
        for lhs in &lhs_sets {
            let last = *lhs.last().expect("nonempty lhs");
            for add in last + 1..m {
                let mut bigger = lhs.clone();
                bigger.push(add);
                next_sets.push(bigger);
            }
        }
        lhs_sets = next_sets;
        if lhs_sets.is_empty() {
            break;
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::{employee_example, AttrType, Schema, Table};

    #[test]
    fn figure_4_fds() {
        let t = employee_example();
        // FD1: Employee ID → Department ID (holds).
        assert!(FunctionalDependency::new(vec![0], 2).holds(&t));
        // FD2: Department ID → Department Name (violated: dept 1 maps to
        // both Human Resources and Finance in the figure's table).
        let fd2 = FunctionalDependency::new(vec![2], 3);
        let v = fd2.violations(&t);
        assert_eq!(v, vec![(0, 3), (2, 3)]);
        assert!(fd2.error_rate(&t) > 0.0);
    }

    #[test]
    fn error_rate_counts_minority() {
        let t = employee_example();
        let fd2 = FunctionalDependency::new(vec![2], 3);
        // Dept 1 has {HR: 2, Finance: 1}; dept 2 has {Marketing: 1}.
        // One of four rows must change.
        assert!((fd2.error_rate(&t) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn nulls_are_skipped() {
        let mut t = Table::new(
            "n",
            Schema::new(&[("a", AttrType::Int), ("b", AttrType::Int)]),
        );
        t.push(vec![Value::Int(1), Value::Null]);
        t.push(vec![Value::Int(1), Value::Int(2)]);
        assert!(FunctionalDependency::new(vec![0], 1).holds(&t));
    }

    #[test]
    fn discover_finds_planted_fds() {
        let t = employee_example();
        let fds = discover_fds(&t, 2);
        let rendered: Vec<String> = fds.iter().map(|f| f.display(&t)).collect();
        assert!(
            rendered.contains(&"Employee ID -> Department ID".to_string()),
            "{rendered:?}"
        );
        // Dept ID → Dept Name must NOT be discovered (it is violated).
        assert!(!rendered.contains(&"Department ID -> Department Name".to_string()));
        // All discovered FDs must actually hold.
        for fd in &fds {
            assert!(fd.holds(&t), "{}", fd.display(&t));
        }
    }

    #[test]
    fn discover_returns_minimal_only() {
        let t = employee_example();
        let fds = discover_fds(&t, 2);
        for fd in &fds {
            if fd.lhs.len() == 2 {
                for &c in &fd.lhs {
                    let smaller = FunctionalDependency::new(vec![c], fd.rhs);
                    assert!(
                        !smaller.holds(&t),
                        "non-minimal FD reported: {}",
                        fd.display(&t)
                    );
                }
            }
        }
    }

    #[test]
    fn cfd_constant_rhs() {
        let t = employee_example();
        // "If Department ID = 2 then Department Name = Marketing".
        let cfd = ConditionalFd::new(
            FunctionalDependency::new(vec![2], 3),
            vec![Pattern::Const(Value::Int(2))],
            Pattern::Const(Value::text("Marketing")),
        );
        assert!(cfd.violations(&t).is_empty());
        // "If Department ID = 1 then Department Name = Human Resources"
        // is violated by row 3 (Finance).
        let cfd2 = ConditionalFd::new(
            FunctionalDependency::new(vec![2], 3),
            vec![Pattern::Const(Value::Int(1))],
            Pattern::Const(Value::text("Human Resources")),
        );
        assert_eq!(cfd2.violations(&t), vec![3]);
    }

    #[test]
    fn cfd_wildcard_rhs_reduces_to_scoped_fd() {
        let t = employee_example();
        let cfd = ConditionalFd::new(
            FunctionalDependency::new(vec![2], 3),
            vec![Pattern::Any],
            Pattern::Any,
        );
        // Same rows as the unconditional FD2 violations, flattened.
        assert_eq!(cfd.violations(&t), vec![0, 2, 3]);
    }
}
