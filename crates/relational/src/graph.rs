//! The heterogeneous graph of a table — Figure 4 of the paper.
//!
//! "Each relation D is modeled as a graph G(V, E), where each node u ∈ V
//! is a unique attribute value, and each edge (u, v) ∈ E represents
//! multiple relationships, such as (u, v) co-occur in one tuple, there
//! is a functional dependency from the attribute of u to the attribute
//! of v, and so on" (§3.1).
//!
//! Nodes are `(attribute, value)` pairs — the same string in different
//! columns is a different node, exactly as in the figure. Undirected
//! co-occurrence edges carry the number of tuples in which the pair
//! appears; directed FD edges connect determinant values to their
//! dependent values.

use crate::fd::FunctionalDependency;
use crate::table::Table;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What relationship an edge encodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EdgeKind {
    /// The two values co-occur in at least one tuple (undirected; stored
    /// in both adjacency lists).
    CoOccur,
    /// A declared FD maps the source value's attribute to the target
    /// value's attribute (directed).
    Fd,
}

/// An outgoing edge in the adjacency list.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Edge {
    /// Target node id.
    pub to: usize,
    /// Relationship kind.
    pub kind: EdgeKind,
    /// Multiplicity (tuple count for co-occurrence; 1 per witness for FD
    /// edges, accumulated).
    pub weight: f32,
}

/// A node: one distinct value of one attribute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Node {
    /// Column index in the source table.
    pub attr: usize,
    /// Canonical string of the value.
    pub value: String,
}

/// The heterogeneous graph of one table.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableGraph {
    /// All nodes; ids are indices into this vector.
    pub nodes: Vec<Node>,
    /// Adjacency lists, parallel to `nodes`.
    pub adj: Vec<Vec<Edge>>,
    index: HashMap<(usize, String), usize>,
}

impl TableGraph {
    /// Build the graph of `table` with co-occurrence edges for every
    /// in-tuple value pair and FD edges for each declared dependency.
    pub fn build(table: &Table, fds: &[FunctionalDependency]) -> Self {
        let mut g = TableGraph {
            nodes: Vec::new(),
            adj: Vec::new(),
            index: HashMap::new(),
        };
        // Co-occurrence edges: accumulate pair counts first so parallel
        // tuples produce one weighted edge instead of multi-edges.
        let mut co: HashMap<(usize, usize), f32> = HashMap::new();
        let mut fd_edges: HashMap<(usize, usize), f32> = HashMap::new();
        for row in &table.rows {
            let ids: Vec<Option<usize>> = row
                .iter()
                .enumerate()
                .map(|(c, v)| {
                    if v.is_null() {
                        None
                    } else {
                        Some(g.intern(c, v.canonical()))
                    }
                })
                .collect();
            for i in 0..ids.len() {
                for j in i + 1..ids.len() {
                    if let (Some(a), Some(b)) = (ids[i], ids[j]) {
                        let key = if a < b { (a, b) } else { (b, a) };
                        *co.entry(key).or_insert(0.0) += 1.0;
                    }
                }
            }
            for fd in fds {
                if let Some(rhs_id) = ids[fd.rhs] {
                    for &l in &fd.lhs {
                        if let Some(lhs_id) = ids[l] {
                            *fd_edges.entry((lhs_id, rhs_id)).or_insert(0.0) += 1.0;
                        }
                    }
                }
            }
        }
        for ((a, b), w) in co {
            g.adj[a].push(Edge {
                to: b,
                kind: EdgeKind::CoOccur,
                weight: w,
            });
            g.adj[b].push(Edge {
                to: a,
                kind: EdgeKind::CoOccur,
                weight: w,
            });
        }
        for ((from, to), w) in fd_edges {
            g.adj[from].push(Edge {
                to,
                kind: EdgeKind::Fd,
                weight: w,
            });
        }
        // Deterministic adjacency order regardless of HashMap iteration.
        for list in &mut g.adj {
            list.sort_by_key(|e| (e.to, e.kind as u8));
        }
        g
    }

    fn intern(&mut self, attr: usize, value: String) -> usize {
        if let Some(&id) = self.index.get(&(attr, value.clone())) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            attr,
            value: value.clone(),
        });
        self.adj.push(Vec::new());
        self.index.insert((attr, value), id);
        id
    }

    /// Node id of `(attr, value)`, if present.
    pub fn node_id(&self, attr: usize, value: &str) -> Option<usize> {
        self.index.get(&(attr, value.to_string())).copied()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of stored directed edge entries (undirected edges count
    /// twice).
    pub fn edge_entries(&self) -> usize {
        self.adj.iter().map(Vec::len).sum()
    }

    /// Outgoing edges of a node.
    pub fn neighbors(&self, id: usize) -> &[Edge] {
        &self.adj[id]
    }

    /// Weighted degree of a node, counting only edges of `kind` (or all
    /// kinds when `None`).
    pub fn degree(&self, id: usize, kind: Option<EdgeKind>) -> f32 {
        self.adj[id]
            .iter()
            .filter(|e| kind.is_none_or(|k| e.kind == k))
            .map(|e| e.weight)
            .sum()
    }

    /// Nodes of one attribute.
    pub fn nodes_of_attr(&self, attr: usize) -> Vec<usize> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.attr == attr)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::employee_example;

    fn figure_4_graph() -> TableGraph {
        let t = employee_example();
        let fds = vec![
            FunctionalDependency::new(vec![0], 2), // Employee ID → Dept ID
            FunctionalDependency::new(vec![2], 3), // Dept ID → Dept Name
        ];
        TableGraph::build(&t, &fds)
    }

    #[test]
    fn node_counts_match_figure_4() {
        let g = figure_4_graph();
        // 4 employee ids + 3 names + 2 dept ids + 3 dept names = 12.
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.nodes_of_attr(0).len(), 4);
        assert_eq!(g.nodes_of_attr(1).len(), 3);
        assert_eq!(g.nodes_of_attr(2).len(), 2);
        assert_eq!(g.nodes_of_attr(3).len(), 3);
    }

    #[test]
    fn cooccurrence_edges_exist_and_are_symmetric() {
        let g = figure_4_graph();
        let id_0001 = g.node_id(0, "0001").expect("0001");
        let john = g.node_id(1, "John Doe").expect("John Doe");
        let fwd = g
            .neighbors(id_0001)
            .iter()
            .any(|e| e.to == john && e.kind == EdgeKind::CoOccur);
        let back = g
            .neighbors(john)
            .iter()
            .any(|e| e.to == id_0001 && e.kind == EdgeKind::CoOccur);
        assert!(fwd && back);
    }

    #[test]
    fn cooccurrence_weight_counts_tuples() {
        let g = figure_4_graph();
        // "John Doe" appears with Dept ID 1 in two tuples (0001, 0004).
        let john = g.node_id(1, "John Doe").expect("node");
        let dept1 = g.node_id(2, "1").expect("node");
        let w = g
            .neighbors(john)
            .iter()
            .find(|e| e.to == dept1 && e.kind == EdgeKind::CoOccur)
            .map(|e| e.weight)
            .expect("edge");
        assert_eq!(w, 2.0);
    }

    #[test]
    fn fd_edges_are_directed() {
        let g = figure_4_graph();
        let id_0001 = g.node_id(0, "0001").expect("node");
        let dept1 = g.node_id(2, "1").expect("node");
        let fwd = g
            .neighbors(id_0001)
            .iter()
            .any(|e| e.to == dept1 && e.kind == EdgeKind::Fd);
        let back = g
            .neighbors(dept1)
            .iter()
            .any(|e| e.to == id_0001 && e.kind == EdgeKind::Fd);
        assert!(fwd, "FD edge 0001 → dept 1 missing");
        assert!(!back, "FD edges must be directed");
    }

    #[test]
    fn same_string_different_attr_is_different_node() {
        let g = figure_4_graph();
        // Dept ID "1" and Dept ID "2" exist under attr 2 only.
        assert!(g.node_id(2, "1").is_some());
        assert!(g.node_id(0, "1").is_none());
    }

    #[test]
    fn degree_filters_by_kind() {
        let g = figure_4_graph();
        let dept1 = g.node_id(2, "1").expect("node");
        let co = g.degree(dept1, Some(EdgeKind::CoOccur));
        let fd = g.degree(dept1, Some(EdgeKind::Fd));
        assert!(co > 0.0);
        // Dept 1 has outgoing FD edges to both HR and Finance dept names.
        assert!(fd >= 2.0);
        assert_eq!(g.degree(dept1, None), co + fd);
    }

    #[test]
    fn nulls_create_no_nodes() {
        let mut t = employee_example();
        t.rows[0][1] = crate::value::Value::Null;
        let g = TableGraph::build(&t, &[]);
        // John Doe still appears via row 3.
        assert!(g.node_id(1, "John Doe").is_some());
        assert_eq!(g.nodes_of_attr(1).len(), 3);
    }
}
