//! Schemas and typed tables, with CSV I/O and the relational operations
//! the curation pipeline needs (project, select, hash join for the §3.1
//! "data enrichment" direction).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Declared type of an attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttrType {
    /// Integer-valued.
    Int,
    /// Float-valued.
    Float,
    /// Free text.
    Text,
    /// Boolean.
    Bool,
    /// Categorical text drawn from a small domain.
    Categorical,
}

/// A named, typed attribute.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Declared type.
    pub ty: AttrType,
}

/// An ordered list of attributes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    /// The attributes in column order.
    pub attrs: Vec<Attribute>,
}

impl Schema {
    /// Build from `(name, type)` pairs.
    pub fn new(attrs: &[(&str, AttrType)]) -> Self {
        Schema {
            attrs: attrs
                .iter()
                .map(|(n, t)| Attribute {
                    name: n.to_string(),
                    ty: *t,
                })
                .collect(),
        }
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Column index of `name`, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attrs.iter().position(|a| a.name == name)
    }

    /// Attribute names in order.
    pub fn names(&self) -> Vec<&str> {
        self.attrs.iter().map(|a| a.name.as_str()).collect()
    }
}

/// A typed relation: a schema plus rows of [`Value`]s.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Table name (used by discovery and the EKG).
    pub name: String,
    /// The schema.
    pub schema: Schema,
    /// Row-major tuples; every row has `schema.arity()` values.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// An empty table with the given name and schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the schema.
    pub fn push(&mut self, row: Vec<Value>) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} != schema arity {} in table {}",
            row.len(),
            self.schema.arity(),
            self.name
        );
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell accessor.
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.rows[row][col]
    }

    /// All values of one column.
    pub fn column(&self, col: usize) -> Vec<&Value> {
        self.rows.iter().map(|r| &r[col]).collect()
    }

    /// Distinct non-null values of one column, in first-seen order.
    pub fn distinct(&self, col: usize) -> Vec<Value> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for row in &self.rows {
            let v = &row[col];
            if !v.is_null() && seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Fraction of null cells across the whole table.
    pub fn null_rate(&self) -> f64 {
        let total = self.rows.len() * self.schema.arity();
        if total == 0 {
            return 0.0;
        }
        let nulls: usize = self
            .rows
            .iter()
            .map(|r| r.iter().filter(|v| v.is_null()).count())
            .sum();
        nulls as f64 / total as f64
    }

    /// Project onto the named columns (order as given).
    pub fn project(&self, cols: &[&str]) -> Table {
        let idxs: Vec<usize> = cols
            .iter()
            .map(|c| {
                self.schema
                    .index_of(c)
                    .unwrap_or_else(|| panic!("no column {c} in {}", self.name))
            })
            .collect();
        let schema = Schema {
            attrs: idxs.iter().map(|&i| self.schema.attrs[i].clone()).collect(),
        };
        let mut out = Table::new(format!("{}_proj", self.name), schema);
        for row in &self.rows {
            out.push(idxs.iter().map(|&i| row[i].clone()).collect());
        }
        out
    }

    /// Keep rows matching `pred`.
    pub fn select(&self, pred: impl Fn(&[Value]) -> bool) -> Table {
        let mut out = Table::new(self.name.clone(), self.schema.clone());
        for row in &self.rows {
            if pred(row) {
                out.push(row.clone());
            }
        }
        out
    }

    /// Equi hash-join with `other` on `self.left_col == other.right_col`.
    ///
    /// Output schema is `self ++ other-minus-join-column`; the §3.1
    /// "data enrichment" primitive ("joining with other tables ... may
    /// result in an enriched table that is more suitable for learning
    /// representations").
    pub fn hash_join(&self, other: &Table, left_col: &str, right_col: &str) -> Table {
        let li = self
            .schema
            .index_of(left_col)
            .unwrap_or_else(|| panic!("no column {left_col}"));
        let ri = other
            .schema
            .index_of(right_col)
            .unwrap_or_else(|| panic!("no column {right_col}"));
        let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
        for (i, row) in other.rows.iter().enumerate() {
            if !row[ri].is_null() {
                index.entry(row[ri].clone()).or_default().push(i);
            }
        }
        let mut attrs = self.schema.attrs.clone();
        for (i, a) in other.schema.attrs.iter().enumerate() {
            if i != ri {
                let mut a = a.clone();
                if self.schema.index_of(&a.name).is_some() {
                    a.name = format!("{}_{}", other.name, a.name);
                }
                attrs.push(a);
            }
        }
        let mut out = Table::new(
            format!("{}_join_{}", self.name, other.name),
            Schema { attrs },
        );
        for lrow in &self.rows {
            if lrow[li].is_null() {
                continue;
            }
            if let Some(matches) = index.get(&lrow[li]) {
                for &m in matches {
                    let mut row = lrow.clone();
                    for (i, v) in other.rows[m].iter().enumerate() {
                        if i != ri {
                            row.push(v.clone());
                        }
                    }
                    out.push(row);
                }
            }
        }
        out
    }

    // ----- CSV ---------------------------------------------------------

    /// Serialise to CSV with a header row. Fields containing commas,
    /// quotes or newlines are quoted.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let names: Vec<String> = self
            .schema
            .attrs
            .iter()
            .map(|a| csv_escape(&a.name))
            .collect();
        out.push_str(&names.join(","));
        out.push('\n');
        for row in &self.rows {
            let fields: Vec<String> = row.iter().map(|v| csv_escape(&v.to_string())).collect();
            out.push_str(&fields.join(","));
            out.push('\n');
        }
        out
    }

    /// Parse CSV with a header row, inferring types per
    /// [`Value::parse`]. Column types are declared from the majority
    /// non-null value kind.
    pub fn from_csv(name: impl Into<String>, csv: &str) -> Result<Table, String> {
        let mut records = parse_csv(csv)?;
        if records.is_empty() {
            return Err("empty csv".into());
        }
        let header = records.remove(0);
        let arity = header.len();
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(records.len());
        for (i, rec) in records.iter().enumerate() {
            if rec.len() != arity {
                return Err(format!(
                    "row {} has {} fields, expected {arity}",
                    i + 2,
                    rec.len()
                ));
            }
            rows.push(rec.iter().map(|f| Value::parse(f)).collect());
        }
        let attrs = header
            .iter()
            .enumerate()
            .map(|(c, h)| Attribute {
                name: h.clone(),
                ty: infer_type(rows.iter().map(|r| &r[c])),
            })
            .collect();
        Ok(Table {
            name: name.into(),
            schema: Schema { attrs },
            rows,
        })
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} ({} rows)", self.name, self.rows.len())?;
        writeln!(f, "  {}", self.schema.names().join(" | "))?;
        for row in self.rows.iter().take(10) {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.rows.len() > 10 {
            writeln!(f, "  … {} more", self.rows.len() - 10)?;
        }
        Ok(())
    }
}

fn infer_type<'a>(values: impl Iterator<Item = &'a Value>) -> AttrType {
    let (mut ints, mut floats, mut texts, mut bools) = (0usize, 0usize, 0usize, 0usize);
    for v in values {
        match v {
            Value::Int(_) => ints += 1,
            Value::Float(_) => floats += 1,
            Value::Text(_) => texts += 1,
            Value::Bool(_) => bools += 1,
            Value::Null => {}
        }
    }
    let max = ints.max(floats).max(texts).max(bools);
    if max == 0 || max == texts {
        AttrType::Text
    } else if max == floats {
        AttrType::Float
    } else if max == ints {
        AttrType::Int
    } else {
        AttrType::Bool
    }
}

fn csv_escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Minimal RFC-4180 CSV parser (quotes, escaped quotes, newlines in
/// quoted fields).
fn parse_csv(input: &str) -> Result<Vec<Vec<String>>, String> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => field.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {}
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                _ => field.push(c),
            }
        }
    }
    if in_quotes {
        return Err("unterminated quoted field".into());
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

/// The employee table of the paper's Figure 4, used across the test
/// suites and the quickstart example.
pub fn employee_example() -> Table {
    let schema = Schema::new(&[
        ("Employee ID", AttrType::Text),
        ("Employee Name", AttrType::Text),
        ("Department ID", AttrType::Int),
        ("Department Name", AttrType::Text),
    ]);
    let mut t = Table::new("employees", schema);
    t.push(vec![
        Value::text("0001"),
        Value::text("John Doe"),
        Value::Int(1),
        Value::text("Human Resources"),
    ]);
    t.push(vec![
        Value::text("0002"),
        Value::text("Jane Doe"),
        Value::Int(2),
        Value::text("Marketing"),
    ]);
    t.push(vec![
        Value::text("0003"),
        Value::text("John Smith"),
        Value::Int(1),
        Value::text("Human Resources"),
    ]);
    t.push(vec![
        Value::text("0004"),
        Value::text("John Doe"),
        Value::Int(1),
        Value::text("Finance"),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn employee_example_matches_figure_4() {
        let t = employee_example();
        assert_eq!(t.len(), 4);
        assert_eq!(t.distinct(0).len(), 4); // four Employee IDs
        assert_eq!(t.distinct(1).len(), 3); // three names
        assert_eq!(t.distinct(2).len(), 2); // two department ids
        assert_eq!(t.distinct(3).len(), 3); // three department names
    }

    #[test]
    fn csv_round_trip() {
        let t = employee_example();
        let csv = t.to_csv();
        let back = Table::from_csv("employees", &csv).expect("parse");
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.schema.names(), t.schema.names());
    }

    #[test]
    fn csv_quoting_and_newlines() {
        let schema = Schema::new(&[("a", AttrType::Text), ("b", AttrType::Text)]);
        let mut t = Table::new("q", schema);
        t.push(vec![Value::text("x,y"), Value::text("he said \"hi\"\nbye")]);
        let back = Table::from_csv("q", &t.to_csv()).expect("parse");
        assert_eq!(back.rows, t.rows);
    }

    #[test]
    fn csv_malformed_errors() {
        assert!(Table::from_csv("x", "").is_err());
        assert!(Table::from_csv("x", "a,b\n1").is_err());
        assert!(Table::from_csv("x", "a,b\n\"open,2").is_err());
    }

    #[test]
    fn project_and_select() {
        let t = employee_example();
        let p = t.project(&["Employee Name", "Department Name"]);
        assert_eq!(p.schema.arity(), 2);
        assert_eq!(p.cell(0, 0), &Value::text("John Doe"));
        let s = t.select(|r| r[2] == Value::Int(1));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn hash_join_enriches() {
        let t = employee_example();
        let mut depts = Table::new(
            "departments",
            Schema::new(&[("Department ID", AttrType::Int), ("Floor", AttrType::Int)]),
        );
        depts.push(vec![Value::Int(1), Value::Int(4)]);
        depts.push(vec![Value::Int(2), Value::Int(9)]);
        let joined = t.hash_join(&depts, "Department ID", "Department ID");
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.schema.arity(), 5);
        let floor_col = joined.schema.index_of("Floor").expect("Floor");
        assert_eq!(joined.cell(1, floor_col), &Value::Int(9));
    }

    #[test]
    fn null_rate_counts() {
        let schema = Schema::new(&[("a", AttrType::Int), ("b", AttrType::Int)]);
        let mut t = Table::new("n", schema);
        t.push(vec![Value::Int(1), Value::Null]);
        t.push(vec![Value::Null, Value::Null]);
        assert!((t.null_rate() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn type_inference_majority() {
        let csv = "a,b\n1,x\n2,y\n3.5,z\n";
        let t = Table::from_csv("t", csv).expect("parse");
        assert_eq!(t.schema.attrs[0].ty, AttrType::Int); // 2 ints beat 1 float
        assert_eq!(t.schema.attrs[1].ty, AttrType::Text);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn push_wrong_arity_panics() {
        let mut t = Table::new("x", Schema::new(&[("a", AttrType::Int)]));
        t.push(vec![Value::Int(1), Value::Int(2)]);
    }
}
