//! Entity-resolution benchmarks with exact duplicate ground truth.
//!
//! DeepER (§5.2) was evaluated "on multiple benchmark datasets"; those
//! are not available here, so this module synthesises suites with the
//! same axes the ER literature varies — structured-clean,
//! structured-dirty and textual — at controllable dirtiness and
//! duplicate rates (DESIGN.md §5).

use crate::domains;
use crate::errors::{abbreviate, typo};
use dc_relational::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which benchmark flavour to generate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErSuite {
    /// Structured records, duplicates differ only by formatting.
    Clean,
    /// Structured records with typos, abbreviations and missing values.
    Dirty,
    /// Records dominated by a long textual description field.
    Textual,
}

/// A labelled tuple pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErPair {
    /// First row index.
    pub a: usize,
    /// Second row index.
    pub b: usize,
    /// True when both rows refer to the same entity.
    pub label: bool,
}

/// A generated ER benchmark: a table of records, the entity id of every
/// row, and helpers to sample labelled pairs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ErBenchmark {
    /// The records (duplicates interleaved).
    pub table: Table,
    /// Ground-truth entity id per row.
    pub entity: Vec<usize>,
    /// Which suite produced this benchmark.
    pub suite: ErSuite,
}

impl ErBenchmark {
    /// Generate a benchmark with `entities` distinct entities, each
    /// duplicated `1..=max_dups` times.
    pub fn generate(suite: ErSuite, entities: usize, max_dups: usize, rng: &mut StdRng) -> Self {
        assert!(max_dups >= 1);
        let schema = match suite {
            ErSuite::Textual => Schema::new(&[
                ("name", AttrType::Text),
                ("city", AttrType::Text),
                ("description", AttrType::Text),
            ]),
            _ => Schema::new(&[
                ("name", AttrType::Text),
                ("email", AttrType::Text),
                ("phone", AttrType::Text),
                ("city", AttrType::Text),
            ]),
        };
        let mut table = Table::new(format!("er_{suite:?}").to_lowercase(), schema);
        let mut entity = Vec::new();
        for e in 0..entities {
            let name = domains::full_name(rng);
            let email = domains::email_for(&name, rng);
            let phone = domains::phone(rng);
            let (city, country, _) = domains::GEO[rng.gen_range(0..domains::GEO.len())];
            let copies = rng.gen_range(1..=max_dups);
            for copy in 0..copies {
                let perturb = copy > 0; // first copy is the canonical record
                let row = match suite {
                    ErSuite::Clean => clean_copy(&name, &email, &phone, city, perturb, rng),
                    ErSuite::Dirty => dirty_copy(&name, &email, &phone, city, perturb, rng),
                    ErSuite::Textual => textual_copy(&name, city, country, perturb, rng),
                };
                table.push(row);
                entity.push(e);
            }
        }
        ErBenchmark {
            table,
            entity,
            suite,
        }
    }

    /// All positive (duplicate) pairs.
    pub fn duplicate_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.entity.len() {
            for j in i + 1..self.entity.len() {
                if self.entity[i] == self.entity[j] {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Sample a labelled pair set with all positives and
    /// `neg_per_pos × #positives` random negatives — the §6.1 remedy for
    /// skew ("samples non-duplicate tuple pairs that are abundant at a
    /// higher level than duplicate tuple pairs" would be the reverse;
    /// training wants a bounded ratio).
    pub fn labeled_pairs(&self, neg_per_pos: usize, rng: &mut StdRng) -> Vec<ErPair> {
        let mut pairs: Vec<ErPair> = self
            .duplicate_pairs()
            .into_iter()
            .map(|(a, b)| ErPair { a, b, label: true })
            .collect();
        let n = self.entity.len();
        let wanted = pairs.len() * neg_per_pos;
        let mut guard = 0;
        let mut negs = std::collections::HashSet::new();
        while negs.len() < wanted && guard < wanted * 50 {
            guard += 1;
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            if a == b || self.entity[a] == self.entity[b] {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if negs.insert(key) {
                pairs.push(ErPair {
                    a: key.0,
                    b: key.1,
                    label: false,
                });
            }
        }
        pairs
    }

    /// Split pairs into train/test by fraction (shuffled).
    pub fn split_pairs(
        pairs: &[ErPair],
        train_frac: f64,
        rng: &mut StdRng,
    ) -> (Vec<ErPair>, Vec<ErPair>) {
        use rand::seq::SliceRandom;
        let mut shuffled = pairs.to_vec();
        shuffled.shuffle(rng);
        let cut = ((shuffled.len() as f64) * train_frac).round() as usize;
        let test = shuffled.split_off(cut.min(shuffled.len()));
        (shuffled, test)
    }
}

fn clean_copy(
    name: &str,
    email: &str,
    phone: &str,
    city: &str,
    perturb: bool,
    rng: &mut StdRng,
) -> Vec<Value> {
    // Clean suite: only benign formatting differences.
    let name = if perturb && rng.gen_bool(0.5) {
        title_case(name)
    } else {
        name.to_string()
    };
    let phone = if perturb && rng.gen_bool(0.5) {
        phone.replace('-', " ")
    } else {
        phone.to_string()
    };
    vec![
        Value::text(name),
        Value::text(email),
        Value::text(phone),
        Value::text(city),
    ]
}

fn dirty_copy(
    name: &str,
    email: &str,
    phone: &str,
    city: &str,
    perturb: bool,
    rng: &mut StdRng,
) -> Vec<Value> {
    let mut name = name.to_string();
    let mut email_v = Value::text(email);
    let mut phone = phone.to_string();
    let mut city_v = Value::text(city);
    if perturb {
        if rng.gen_bool(0.6) {
            name = typo(&name, rng);
        }
        if rng.gen_bool(0.4) {
            name = abbreviate(&name, rng);
        }
        if rng.gen_bool(0.3) {
            email_v = Value::Null;
        }
        if rng.gen_bool(0.4) {
            phone = phone.replace('-', "");
        }
        if rng.gen_bool(0.2) {
            city_v = Value::Null;
        }
    }
    vec![Value::text(name), email_v, Value::text(phone), city_v]
}

fn textual_copy(
    name: &str,
    city: &str,
    country: &str,
    perturb: bool,
    rng: &mut StdRng,
) -> Vec<Value> {
    use rand::seq::SliceRandom;
    let fillers = [
        "based", "in", "works", "for", "a", "company", "profile", "record", "listed", "contact",
    ];
    let mut words: Vec<String> = vec![
        name.split(' ').next().expect("first token").to_string(),
        name.split(' ').nth(1).unwrap_or("x").to_string(),
        city.to_string(),
        country.to_string(),
    ];
    for _ in 0..6 {
        words.push(fillers[rng.gen_range(0..fillers.len())].to_string());
    }
    words.shuffle(rng);
    let mut desc = words.join(" ");
    let mut name = name.to_string();
    if perturb {
        if rng.gen_bool(0.5) {
            name = abbreviate(&name, rng);
        }
        if rng.gen_bool(0.5) {
            desc = typo(&desc, rng);
        }
    }
    vec![Value::text(name), Value::text(city), Value::text(desc)]
}

fn title_case(s: &str) -> String {
    s.split(' ')
        .map(|w| {
            let mut c = w.chars();
            match c.next() {
                Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
                None => String::new(),
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generates_requested_entity_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let b = ErBenchmark::generate(ErSuite::Clean, 50, 3, &mut rng);
        let max = *b.entity.iter().max().expect("nonempty");
        assert_eq!(max, 49);
        assert!(b.table.len() >= 50 && b.table.len() <= 150);
        assert_eq!(b.table.len(), b.entity.len());
    }

    #[test]
    fn duplicate_pairs_share_entity() {
        let mut rng = StdRng::seed_from_u64(2);
        let b = ErBenchmark::generate(ErSuite::Dirty, 30, 3, &mut rng);
        for (i, j) in b.duplicate_pairs() {
            assert_eq!(b.entity[i], b.entity[j]);
        }
    }

    #[test]
    fn labeled_pairs_respect_ratio_and_labels() {
        let mut rng = StdRng::seed_from_u64(3);
        let b = ErBenchmark::generate(ErSuite::Clean, 40, 2, &mut rng);
        let pairs = b.labeled_pairs(3, &mut rng);
        let pos = pairs.iter().filter(|p| p.label).count();
        let neg = pairs.len() - pos;
        assert!(pos > 0);
        assert_eq!(neg, pos * 3);
        for p in &pairs {
            assert_eq!(p.label, b.entity[p.a] == b.entity[p.b]);
        }
    }

    #[test]
    fn dirty_suite_is_dirtier_than_clean() {
        let mut rng = StdRng::seed_from_u64(4);
        let clean = ErBenchmark::generate(ErSuite::Clean, 80, 3, &mut rng);
        let dirty = ErBenchmark::generate(ErSuite::Dirty, 80, 3, &mut rng);
        assert!(dirty.table.null_rate() > clean.table.null_rate());
    }

    #[test]
    fn textual_suite_has_description() {
        let mut rng = StdRng::seed_from_u64(5);
        let b = ErBenchmark::generate(ErSuite::Textual, 20, 2, &mut rng);
        let col = b.table.schema.index_of("description").expect("col");
        let desc = b.table.cell(0, col).to_string();
        assert!(desc.split(' ').count() >= 8, "{desc}");
    }

    #[test]
    fn split_preserves_all_pairs() {
        let mut rng = StdRng::seed_from_u64(6);
        let b = ErBenchmark::generate(ErSuite::Clean, 30, 2, &mut rng);
        let pairs = b.labeled_pairs(2, &mut rng);
        let (train, test) = ErBenchmark::split_pairs(&pairs, 0.7, &mut rng);
        assert_eq!(train.len() + test.len(), pairs.len());
        assert!(!train.is_empty() && !test.is_empty());
    }
}
