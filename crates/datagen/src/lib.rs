//! # dc-datagen
//!
//! Deterministic synthetic data for every AutoDC experiment.
//!
//! §6.2.3 of the paper argues that when "it is not possible to create an
//! open-source dataset that has realistic data quality issues, a useful
//! fall back is to create synthetic datasets that exhibit representative
//! data quality issues" (its reference points are the TPC family and the
//! BART error generator). This crate is that fallback, and doubles as
//! the substitution for the paper's external datasets (DESIGN.md §5):
//!
//! * [`domains`] — name/city/product vocabularies and value factories;
//! * [`tables`] — clean relations with planted FDs (people, products,
//!   orders) at configurable scale;
//! * [`errors`] — BART-style error injection: typos, nulls, value
//!   swaps, FD violations, abbreviations — each with ground-truth masks;
//! * [`er`] — entity-resolution benchmark suites (clean / dirty /
//!   textual) with exact duplicate ground truth;
//! * [`corpus`] — co-occurrence corpora aligned with the table domains,
//!   for pre-training embeddings (the GloVe substitution);
//! * [`lake`] — a synthetic enterprise data lake with planted semantic
//!   column links for the discovery experiments.
//!
//! Everything takes an explicit `StdRng`, so a seed fully determines a
//! dataset.

pub mod corpus;
pub mod domains;
pub mod er;
pub mod errors;
pub mod lake;
pub mod tables;

pub use er::{ErBenchmark, ErPair, ErSuite};
pub use errors::{ErrorInjector, ErrorKind, ErrorReport};
pub use lake::{Lake, PlantedLink};
pub use tables::{people_fds, people_table, products_table};
