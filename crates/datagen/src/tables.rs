//! Clean synthetic relations with planted functional dependencies —
//! the TPC-style substrate of §6.2.3.

use crate::domains;
use dc_relational::{AttrType, FunctionalDependency, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// A people table:
/// `id, name, email, phone, city, country, capital, age`.
///
/// Planted FDs: `city → country` (col 4 → 5) and `country → capital`
/// (col 5 → 6); `id` is a key.
pub fn people_table(rows: usize, rng: &mut StdRng) -> Table {
    let schema = Schema::new(&[
        ("id", AttrType::Text),
        ("name", AttrType::Text),
        ("email", AttrType::Text),
        ("phone", AttrType::Text),
        ("city", AttrType::Categorical),
        ("country", AttrType::Categorical),
        ("capital", AttrType::Categorical),
        ("age", AttrType::Int),
    ]);
    let mut t = Table::new("people", schema);
    for i in 0..rows {
        let name = domains::full_name(rng);
        let email = domains::email_for(&name, rng);
        let (city, country, capital) = domains::GEO[rng.gen_range(0..domains::GEO.len())];
        t.push(vec![
            Value::text(format!("p{i:05}")),
            Value::text(name),
            Value::text(email),
            Value::text(domains::phone(rng)),
            Value::text(city),
            Value::text(country),
            Value::text(capital),
            Value::Int(rng.gen_range(18..80)),
        ]);
    }
    t
}

/// The FDs planted in [`people_table`].
pub fn people_fds() -> Vec<FunctionalDependency> {
    vec![
        FunctionalDependency::new(vec![4], 5), // city → country
        FunctionalDependency::new(vec![5], 6), // country → capital
    ]
}

/// A products table:
/// `id, title, brand, category, price, in_stock`.
///
/// Planted FD: the title embeds the brand, and `title → brand` holds.
pub fn products_table(rows: usize, rng: &mut StdRng) -> Table {
    let schema = Schema::new(&[
        ("id", AttrType::Text),
        ("title", AttrType::Text),
        ("brand", AttrType::Categorical),
        ("category", AttrType::Categorical),
        ("price", AttrType::Float),
        ("in_stock", AttrType::Bool),
    ]);
    let mut t = Table::new("products", schema);
    for i in 0..rows {
        let (title, brand, category) = domains::product_title(rng);
        t.push(vec![
            Value::text(format!("pr{i:05}")),
            Value::text(title),
            Value::text(brand),
            Value::text(category),
            Value::Float((rng.gen_range(50.0..2000.0f64) * 100.0).round() / 100.0),
            Value::Bool(rng.gen_bool(0.8)),
        ]);
    }
    t
}

/// An orders table referencing people and products by id:
/// `order_id, person_id, product_id, quantity` — join fodder for the
/// §3.1 enrichment direction and the pipeline example.
pub fn orders_table(rows: usize, people: &Table, products: &Table, rng: &mut StdRng) -> Table {
    let schema = Schema::new(&[
        ("order_id", AttrType::Text),
        ("person_id", AttrType::Text),
        ("product_id", AttrType::Text),
        ("quantity", AttrType::Int),
    ]);
    let mut t = Table::new("orders", schema);
    for i in 0..rows {
        let p = rng.gen_range(0..people.len());
        let pr = rng.gen_range(0..products.len());
        t.push(vec![
            Value::text(format!("o{i:06}")),
            people.cell(p, 0).clone(),
            products.cell(pr, 0).clone(),
            Value::Int(rng.gen_range(1..5)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn people_fds_hold_on_clean_data() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = people_table(300, &mut rng);
        for fd in people_fds() {
            assert!(fd.holds(&t), "{}", fd.display(&t));
        }
        // id is a key → id determines everything.
        for rhs in 1..t.schema.arity() {
            assert!(FunctionalDependency::new(vec![0], rhs).holds(&t));
        }
    }

    #[test]
    fn products_title_determines_brand() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = products_table(300, &mut rng);
        assert!(FunctionalDependency::new(vec![1], 2).holds(&t));
    }

    #[test]
    fn orders_reference_valid_ids() {
        let mut rng = StdRng::seed_from_u64(3);
        let people = people_table(50, &mut rng);
        let products = products_table(50, &mut rng);
        let orders = orders_table(200, &people, &products, &mut rng);
        let joined = orders.hash_join(&people, "person_id", "id");
        assert_eq!(joined.len(), orders.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = people_table(20, &mut StdRng::seed_from_u64(7));
        let b = people_table(20, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.rows, b.rows);
    }
}
