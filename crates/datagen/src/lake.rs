//! A synthetic enterprise data lake with planted semantic links —
//! ground truth for the discovery experiments (E6/E7).
//!
//! §5.1 describes surfacing "links that were previously unknown to the
//! analysts" (isoform ↔ Protein) and discarding "spurious results
//! obtained from other syntactical and structural matchers" (biopsy
//! site ↮ site_components). This generator plants both cases exactly:
//! columns that share a *value domain* under different names (semantic
//! links a matcher should find) and columns whose *names* share tokens
//! while their domains differ (spurious links it should reject).

use crate::domains;
use dc_relational::{AttrType, Schema, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The value domains columns can draw from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// Person full names.
    PersonName,
    /// Cities.
    City,
    /// Countries.
    Country,
    /// Product brands.
    Brand,
    /// Product categories.
    Category,
    /// Department names.
    Department,
}

impl Domain {
    /// All domains.
    pub const ALL: [Domain; 6] = [
        Domain::PersonName,
        Domain::City,
        Domain::Country,
        Domain::Brand,
        Domain::Category,
        Domain::Department,
    ];

    /// Synonymous column names used across tables. The *first* name of
    /// one domain shares a token with another domain's name on purpose
    /// (`site`, `name`) to create spurious candidates.
    pub fn column_names(self) -> &'static [&'static str] {
        match self {
            Domain::PersonName => &["name", "employee name", "contact", "person"],
            Domain::City => &["city", "site location", "town", "municipality"],
            Domain::Country => &["country", "nation", "site region"],
            Domain::Brand => &["brand", "maker name", "manufacturer"],
            Domain::Category => &["category", "product kind", "segment"],
            Domain::Department => &["department", "division", "unit name"],
        }
    }

    /// Draw a value from the domain.
    pub fn sample(self, rng: &mut StdRng) -> Value {
        match self {
            Domain::PersonName => Value::text(domains::full_name(rng)),
            Domain::City => Value::text(domains::GEO[rng.gen_range(0..domains::GEO.len())].0),
            Domain::Country => Value::text(domains::GEO[rng.gen_range(0..domains::GEO.len())].1),
            Domain::Brand => Value::text(domains::pick(domains::BRANDS, rng)),
            Domain::Category => {
                Value::text(domains::CATEGORIES[rng.gen_range(0..domains::CATEGORIES.len())].0)
            }
            Domain::Department => Value::text(domains::pick(domains::DEPARTMENTS, rng)),
        }
    }
}

/// A planted ground-truth column relationship.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedLink {
    /// `(table index, column index)` of one endpoint.
    pub a: (usize, usize),
    /// `(table index, column index)` of the other endpoint.
    pub b: (usize, usize),
    /// True for a semantic link (same domain); false for a spurious
    /// name-overlap-only candidate.
    pub semantic: bool,
}

/// A generated data lake.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Lake {
    /// The tables.
    pub tables: Vec<Table>,
    /// Which domain each `(table, column)` draws from.
    pub column_domains: Vec<Vec<Domain>>,
    /// Ground-truth semantic links and spurious candidates.
    pub links: Vec<PlantedLink>,
}

impl Lake {
    /// Generate `n_tables` tables of `rows` rows, each with 3 distinct
    /// random domains; then enumerate ground truth.
    pub fn generate(n_tables: usize, rows: usize, rng: &mut StdRng) -> Self {
        use rand::seq::SliceRandom;
        let mut tables = Vec::with_capacity(n_tables);
        let mut column_domains = Vec::with_capacity(n_tables);
        for ti in 0..n_tables {
            let mut pool = Domain::ALL.to_vec();
            pool.shuffle(rng);
            let doms: Vec<Domain> = pool.into_iter().take(3).collect();
            let attrs: Vec<(String, AttrType)> = doms
                .iter()
                .map(|d| {
                    let names = d.column_names();
                    (
                        names[rng.gen_range(0..names.len())].to_string(),
                        AttrType::Categorical,
                    )
                })
                .collect();
            let attr_refs: Vec<(&str, AttrType)> =
                attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            let mut t = Table::new(format!("table_{ti}"), Schema::new(&attr_refs));
            for _ in 0..rows {
                t.push(doms.iter().map(|d| d.sample(rng)).collect());
            }
            tables.push(t);
            column_domains.push(doms);
        }

        // Ground truth over all cross-table column pairs.
        let mut links = Vec::new();
        for ta in 0..n_tables {
            for tb in ta + 1..n_tables {
                for (ca, da) in column_domains[ta].iter().enumerate() {
                    for (cb, db) in column_domains[tb].iter().enumerate() {
                        let name_a = &tables[ta].schema.attrs[ca].name;
                        let name_b = &tables[tb].schema.attrs[cb].name;
                        if da == db {
                            // Semantic link; the interesting ones have
                            // *different* names, but same-name pairs are
                            // links too.
                            links.push(PlantedLink {
                                a: (ta, ca),
                                b: (tb, cb),
                                semantic: true,
                            });
                        } else if shares_token(name_a, name_b) {
                            links.push(PlantedLink {
                                a: (ta, ca),
                                b: (tb, cb),
                                semantic: false,
                            });
                        }
                    }
                }
            }
        }
        Lake {
            tables,
            column_domains,
            links,
        }
    }

    /// Semantic links only.
    pub fn semantic_links(&self) -> Vec<PlantedLink> {
        self.links.iter().copied().filter(|l| l.semantic).collect()
    }

    /// Spurious (name-overlap, different-domain) candidates only.
    pub fn spurious_links(&self) -> Vec<PlantedLink> {
        self.links.iter().copied().filter(|l| !l.semantic).collect()
    }

    /// Search ground truth for E7: for each domain, a keyword query and
    /// the set of tables containing a column of that domain.
    pub fn search_queries(&self) -> Vec<(String, Vec<usize>)> {
        Domain::ALL
            .iter()
            .map(|d| {
                let query = d.column_names()[0].to_string();
                let relevant: Vec<usize> = self
                    .column_domains
                    .iter()
                    .enumerate()
                    .filter(|(_, doms)| doms.contains(d))
                    .map(|(i, _)| i)
                    .collect();
                (query, relevant)
            })
            .collect()
    }
}

fn shares_token(a: &str, b: &str) -> bool {
    let ta: std::collections::HashSet<&str> = a.split(' ').collect();
    b.split(' ').any(|t| ta.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn lake_has_tables_and_ground_truth() {
        let mut rng = StdRng::seed_from_u64(1);
        let lake = Lake::generate(8, 40, &mut rng);
        assert_eq!(lake.tables.len(), 8);
        assert!(
            !lake.semantic_links().is_empty(),
            "no semantic links planted"
        );
        for t in &lake.tables {
            assert_eq!(t.len(), 40);
            assert_eq!(t.schema.arity(), 3);
        }
    }

    #[test]
    fn semantic_links_share_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let lake = Lake::generate(10, 30, &mut rng);
        for l in lake.semantic_links() {
            assert_eq!(
                lake.column_domains[l.a.0][l.a.1],
                lake.column_domains[l.b.0][l.b.1]
            );
        }
        for l in lake.spurious_links() {
            assert_ne!(
                lake.column_domains[l.a.0][l.a.1],
                lake.column_domains[l.b.0][l.b.1]
            );
        }
    }

    #[test]
    fn spurious_links_share_a_name_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let lake = Lake::generate(12, 20, &mut rng);
        for l in lake.spurious_links() {
            let na = &lake.tables[l.a.0].schema.attrs[l.a.1].name;
            let nb = &lake.tables[l.b.0].schema.attrs[l.b.1].name;
            assert!(shares_token(na, nb), "{na} vs {nb}");
        }
    }

    #[test]
    fn search_queries_cover_domains() {
        let mut rng = StdRng::seed_from_u64(4);
        let lake = Lake::generate(10, 20, &mut rng);
        let queries = lake.search_queries();
        assert_eq!(queries.len(), Domain::ALL.len());
        // Every query's relevant set must be consistent with domains.
        for (q, relevant) in &queries {
            assert!(!q.is_empty());
            for &t in relevant {
                assert!(t < lake.tables.len());
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Lake::generate(5, 10, &mut StdRng::seed_from_u64(5));
        let b = Lake::generate(5, 10, &mut StdRng::seed_from_u64(5));
        assert_eq!(a.links, b.links);
        assert_eq!(a.tables[0].rows, b.tables[0].rows);
    }
}
