//! Unsupervised text corpora aligned with the table domains.
//!
//! This is the substitution for the paper's pre-trained GloVe vectors
//! (§6.1: "DeepER leveraged word embeddings from GloVe"): a corpus
//! whose co-occurrence statistics encode the same entity relations the
//! benchmark tables use, so embeddings trained on it transfer to the
//! matching tasks — the §6.2.1 unsupervised-representation-learning
//! path, measurable in experiment E5.

use crate::domains;
use rand::rngs::StdRng;
use rand::Rng;

/// Generate `sentences` short sentences mentioning people, geography
/// and products with consistent co-occurrence structure.
pub fn domain_corpus(sentences: usize, rng: &mut StdRng) -> Vec<Vec<String>> {
    let mut corpus = Vec::with_capacity(sentences);
    for _ in 0..sentences {
        let kind = rng.gen_range(0..4);
        let sent: Vec<String> = match kind {
            0 => {
                // person lives in city
                let name = domains::full_name(rng);
                let (city, _, _) = geo(rng);
                format!("{name} lives in {city}")
                    .split(' ')
                    .map(str::to_string)
                    .collect()
            }
            1 => {
                // city is in country
                let (city, country, _) = geo(rng);
                format!("{city} is a city in {country}")
                    .split(' ')
                    .map(str::to_string)
                    .collect()
            }
            2 => {
                // capital of country
                let (_, country, capital) = geo(rng);
                format!("{capital} is the capital of {country}")
                    .split(' ')
                    .map(str::to_string)
                    .collect()
            }
            _ => {
                // product sentence
                let (title, brand, category) = domains::product_title(rng);
                format!("the {category} {title} is made by {brand}")
                    .split(' ')
                    .map(str::to_string)
                    .collect()
            }
        };
        corpus.push(sent);
    }
    corpus
}

fn geo(rng: &mut StdRng) -> (&'static str, &'static str, &'static str) {
    domains::GEO[rng.gen_range(0..domains::GEO.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn corpus_has_requested_size_and_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = domain_corpus(200, &mut rng);
        assert_eq!(c.len(), 200);
        assert!(c.iter().all(|s| s.len() >= 4));
        // Geography sentences must exist.
        assert!(c.iter().any(|s| s.contains(&"capital".to_string())));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = domain_corpus(50, &mut StdRng::seed_from_u64(9));
        let b = domain_corpus(50, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
