//! Value domains: closed vocabularies plus factories for composed
//! values (names, emails, phones). Closed-world domains make ground
//! truth exact — the property §6.2.3 wants from a benchmark generator.

use rand::rngs::StdRng;
use rand::Rng;

/// First names.
pub const FIRST_NAMES: &[&str] = &[
    "james",
    "mary",
    "john",
    "patricia",
    "robert",
    "jennifer",
    "michael",
    "linda",
    "william",
    "elizabeth",
    "david",
    "barbara",
    "richard",
    "susan",
    "joseph",
    "jessica",
    "thomas",
    "sarah",
    "charles",
    "karen",
    "nancy",
    "daniel",
    "lisa",
    "matthew",
    "betty",
    "anthony",
    "margaret",
    "mark",
    "sandra",
    "donald",
    "ashley",
    "steven",
    "kimberly",
    "paul",
    "emily",
    "andrew",
    "donna",
    "joshua",
    "michelle",
    "kenneth",
];

/// Last names.
pub const LAST_NAMES: &[&str] = &[
    "smith",
    "johnson",
    "williams",
    "brown",
    "jones",
    "garcia",
    "miller",
    "davis",
    "rodriguez",
    "martinez",
    "hernandez",
    "lopez",
    "gonzalez",
    "wilson",
    "anderson",
    "thomas",
    "taylor",
    "moore",
    "jackson",
    "martin",
    "lee",
    "perez",
    "thompson",
    "white",
    "harris",
    "sanchez",
    "clark",
    "ramirez",
    "lewis",
    "robinson",
];

/// `(city, country, capital-of-country)` triples: cities determine
/// countries (an FD), countries determine capitals (an FD) — the
/// France→Paris structure §4 and §6.2.4 use as running examples.
pub const GEO: &[(&str, &str, &str)] = &[
    ("paris", "france", "paris"),
    ("lyon", "france", "paris"),
    ("marseille", "france", "paris"),
    ("berlin", "germany", "berlin"),
    ("munich", "germany", "berlin"),
    ("hamburg", "germany", "berlin"),
    ("rome", "italy", "rome"),
    ("milan", "italy", "rome"),
    ("naples", "italy", "rome"),
    ("madrid", "spain", "madrid"),
    ("barcelona", "spain", "madrid"),
    ("seville", "spain", "madrid"),
    ("london", "uk", "london"),
    ("manchester", "uk", "london"),
    ("leeds", "uk", "london"),
    ("doha", "qatar", "doha"),
    ("tokyo", "japan", "tokyo"),
    ("osaka", "japan", "tokyo"),
    ("cairo", "egypt", "cairo"),
    ("alexandria", "egypt", "cairo"),
];

/// Product brands.
pub const BRANDS: &[&str] = &[
    "acme",
    "globex",
    "initech",
    "umbrella",
    "stark",
    "wayne",
    "wonka",
    "tyrell",
    "cyberdyne",
    "aperture",
];

/// Product categories with representative nouns.
pub const CATEGORIES: &[(&str, &[&str])] = &[
    ("laptop", &["notebook", "ultrabook", "portable"]),
    ("phone", &["smartphone", "handset", "mobile"]),
    ("camera", &["dslr", "mirrorless", "compact"]),
    ("printer", &["laserjet", "inkjet", "plotter"]),
    ("monitor", &["display", "screen", "panel"]),
];

/// Department names (for the org tables).
pub const DEPARTMENTS: &[&str] = &[
    "human resources",
    "marketing",
    "finance",
    "engineering",
    "sales",
    "legal",
    "operations",
];

/// Pick a uniform element of a slice.
pub fn pick<'a, T: ?Sized>(items: &'a [&'a T], rng: &mut StdRng) -> &'a T {
    items[rng.gen_range(0..items.len())]
}

/// A random full name `first last`.
pub fn full_name(rng: &mut StdRng) -> String {
    format!("{} {}", pick(FIRST_NAMES, rng), pick(LAST_NAMES, rng))
}

/// A deterministic email derived from a name (so duplicates of the same
/// person naturally share it unless perturbed).
pub fn email_for(name: &str, rng: &mut StdRng) -> String {
    let user: String = name.replace(' ', ".");
    let host = ["example.com", "mail.org", "corp.net"][rng.gen_range(0..3)];
    format!("{user}@{host}")
}

/// A phone number in `nnn-nnn-nnnn` format (the canonical form §5.3
/// mentions for data transformation).
pub fn phone(rng: &mut StdRng) -> String {
    format!(
        "{:03}-{:03}-{:04}",
        rng.gen_range(200..999),
        rng.gen_range(100..999),
        rng.gen_range(0..10_000)
    )
}

/// A product title like `acme ultrabook 13`.
pub fn product_title(rng: &mut StdRng) -> (String, String, String) {
    let brand = pick(BRANDS, rng).to_string();
    let (category, nouns) = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
    let noun = nouns[rng.gen_range(0..nouns.len())];
    let size = rng.gen_range(10..18);
    (
        format!("{brand} {noun} {size}"),
        brand,
        category.to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn geo_fds_hold_by_construction() {
        use std::collections::HashMap;
        let mut city_to_country = HashMap::new();
        let mut country_to_capital = HashMap::new();
        for &(city, country, capital) in GEO {
            assert!(city_to_country
                .insert(city, country)
                .is_none_or(|c| c == country));
            assert!(country_to_capital
                .insert(country, capital)
                .is_none_or(|c| c == capital));
        }
    }

    #[test]
    fn factories_are_deterministic() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(full_name(&mut a), full_name(&mut b));
        assert_eq!(phone(&mut a), phone(&mut b));
        assert_eq!(product_title(&mut a), product_title(&mut b));
    }

    #[test]
    fn phone_matches_canonical_format() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let p = phone(&mut rng);
            let parts: Vec<&str> = p.split('-').collect();
            assert_eq!(parts.len(), 3);
            assert_eq!(parts[0].len(), 3);
            assert_eq!(parts[1].len(), 3);
            assert_eq!(parts[2].len(), 4);
        }
    }

    #[test]
    fn email_derives_from_name() {
        let mut rng = StdRng::seed_from_u64(3);
        let e = email_for("john smith", &mut rng);
        assert!(e.starts_with("john.smith@"));
    }
}
