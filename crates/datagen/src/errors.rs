//! BART-style error injection (§6.2.3: "BART can be used to benchmark
//! data repair algorithms") with exact ground truth.
//!
//! Each injected error records its position, kind and the original
//! value, so detection and repair experiments can score precision and
//! recall exactly.

use dc_relational::{FunctionalDependency, Table, Value};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kinds of data-quality errors the injector can plant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// Single-character edit in a text cell.
    Typo,
    /// Cell replaced by NULL.
    Null,
    /// Two rows' values of one column exchanged.
    Swap,
    /// RHS of a functional dependency changed to a conflicting value.
    FdViolation,
    /// Token abbreviated to its initial ("John" → "J").
    Abbreviation,
}

/// One injected error with its ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellError {
    /// Row of the corrupted cell.
    pub row: usize,
    /// Column of the corrupted cell.
    pub col: usize,
    /// What was done.
    pub kind: ErrorKind,
    /// The clean value before corruption.
    pub original: Value,
}

/// Ground truth of an injection run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ErrorReport {
    /// All injected errors in injection order.
    pub errors: Vec<CellError>,
}

impl ErrorReport {
    /// `(row, col)` set of corrupted cells.
    pub fn dirty_cells(&self) -> std::collections::HashSet<(usize, usize)> {
        self.errors.iter().map(|e| (e.row, e.col)).collect()
    }

    /// Number of injected errors.
    pub fn len(&self) -> usize {
        self.errors.len()
    }

    /// True when nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.errors.is_empty()
    }
}

/// Configurable error injector. Rates are per-cell probabilities
/// (per-row for swaps and FD violations).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ErrorInjector {
    /// Probability of a typo per text cell.
    pub typo_rate: f64,
    /// Probability of nulling a cell.
    pub null_rate: f64,
    /// Probability (per row) of swapping a random column value with
    /// another row.
    pub swap_rate: f64,
    /// Probability (per row, per FD) of breaking the FD on that row.
    pub fd_violation_rate: f64,
    /// Probability of abbreviating a multi-token text cell.
    pub abbreviation_rate: f64,
}

impl Default for ErrorInjector {
    fn default() -> Self {
        ErrorInjector {
            typo_rate: 0.05,
            null_rate: 0.03,
            swap_rate: 0.01,
            fd_violation_rate: 0.02,
            abbreviation_rate: 0.03,
        }
    }
}

impl ErrorInjector {
    /// An injector that only plants errors of `kind` at `rate`.
    pub fn only(kind: ErrorKind, rate: f64) -> Self {
        let mut inj = ErrorInjector {
            typo_rate: 0.0,
            null_rate: 0.0,
            swap_rate: 0.0,
            fd_violation_rate: 0.0,
            abbreviation_rate: 0.0,
        };
        match kind {
            ErrorKind::Typo => inj.typo_rate = rate,
            ErrorKind::Null => inj.null_rate = rate,
            ErrorKind::Swap => inj.swap_rate = rate,
            ErrorKind::FdViolation => inj.fd_violation_rate = rate,
            ErrorKind::Abbreviation => inj.abbreviation_rate = rate,
        }
        inj
    }

    /// Corrupt a copy of `table`, returning it with the ground truth.
    /// `fds` are needed only for FD violations (pass `&[]` otherwise).
    pub fn inject(
        &self,
        table: &Table,
        fds: &[FunctionalDependency],
        rng: &mut StdRng,
    ) -> (Table, ErrorReport) {
        let mut dirty = table.clone();
        let mut report = ErrorReport::default();
        let n = dirty.len();
        let arity = dirty.schema.arity();

        for row in 0..n {
            for col in 0..arity {
                let v = dirty.rows[row][col].clone();
                if v.is_null() {
                    continue;
                }
                if rng.gen_bool(self.null_rate) {
                    report.errors.push(CellError {
                        row,
                        col,
                        kind: ErrorKind::Null,
                        original: v,
                    });
                    dirty.rows[row][col] = Value::Null;
                    continue;
                }
                if let Value::Text(s) = &v {
                    if rng.gen_bool(self.typo_rate) {
                        let t = typo(s, rng);
                        if t != *s {
                            report.errors.push(CellError {
                                row,
                                col,
                                kind: ErrorKind::Typo,
                                original: v.clone(),
                            });
                            dirty.rows[row][col] = Value::Text(t);
                            continue;
                        }
                    }
                    if s.contains(' ') && rng.gen_bool(self.abbreviation_rate) {
                        let t = abbreviate(s, rng);
                        if t != *s {
                            report.errors.push(CellError {
                                row,
                                col,
                                kind: ErrorKind::Abbreviation,
                                original: v.clone(),
                            });
                            dirty.rows[row][col] = Value::Text(t);
                        }
                    }
                }
            }

            if n >= 2 && rng.gen_bool(self.swap_rate) {
                let col = rng.gen_range(0..arity);
                let other = rng.gen_range(0..n);
                if other != row && dirty.rows[row][col] != dirty.rows[other][col] {
                    report.errors.push(CellError {
                        row,
                        col,
                        kind: ErrorKind::Swap,
                        original: dirty.rows[row][col].clone(),
                    });
                    report.errors.push(CellError {
                        row: other,
                        col,
                        kind: ErrorKind::Swap,
                        original: dirty.rows[other][col].clone(),
                    });
                    let tmp = dirty.rows[row][col].clone();
                    dirty.rows[row][col] = dirty.rows[other][col].clone();
                    dirty.rows[other][col] = tmp;
                }
            }

            for fd in fds {
                if rng.gen_bool(self.fd_violation_rate) {
                    // Replace the RHS with a different value from the
                    // column's domain so the group disagrees.
                    let domain = table.distinct(fd.rhs);
                    if domain.len() < 2 {
                        continue;
                    }
                    let current = dirty.rows[row][fd.rhs].clone();
                    let replacement = domain
                        .iter()
                        .find(|v| **v != current)
                        .cloned()
                        .expect("domain has another value");
                    report.errors.push(CellError {
                        row,
                        col: fd.rhs,
                        kind: ErrorKind::FdViolation,
                        original: current,
                    });
                    dirty.rows[row][fd.rhs] = replacement;
                }
            }
        }
        (dirty, report)
    }
}

/// Apply one random character edit (swap, delete, duplicate, replace).
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_string();
    }
    let i = rng.gen_range(0..chars.len());
    let mut out = chars.clone();
    match rng.gen_range(0..4) {
        0 if chars.len() >= 2 => {
            // transpose with neighbour
            let j = if i + 1 < chars.len() { i + 1 } else { i - 1 };
            out.swap(i, j);
        }
        1 if chars.len() >= 2 => {
            out.remove(i);
        }
        2 => out.insert(i, chars[i]),
        _ => {
            let alpha = "abcdefghijklmnopqrstuvwxyz";
            let c = alpha
                .chars()
                .nth(rng.gen_range(0..26))
                .expect("alphabet index");
            out[i] = c;
        }
    }
    out.into_iter().collect()
}

/// Abbreviate one random token of a multi-token string to its initial
/// ("john smith" → "j smith") — the §4 entity-consolidation example.
pub fn abbreviate(s: &str, rng: &mut StdRng) -> String {
    let tokens: Vec<&str> = s.split(' ').collect();
    if tokens.len() < 2 {
        return s.to_string();
    }
    let i = rng.gen_range(0..tokens.len());
    let mut out: Vec<String> = tokens.iter().map(|t| t.to_string()).collect();
    if let Some(first) = tokens[i].chars().next() {
        out[i] = first.to_string();
    }
    out.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tables::{people_fds, people_table};
    use rand::SeedableRng;

    #[test]
    fn null_injection_matches_report() {
        let mut rng = StdRng::seed_from_u64(1);
        let clean = people_table(100, &mut rng);
        let inj = ErrorInjector::only(ErrorKind::Null, 0.1);
        let (dirty, report) = inj.inject(&clean, &[], &mut rng);
        assert!(!report.is_empty());
        for e in &report.errors {
            assert_eq!(e.kind, ErrorKind::Null);
            assert!(dirty.rows[e.row][e.col].is_null());
            assert_eq!(e.original, clean.rows[e.row][e.col]);
        }
        // Cells not in the report are untouched.
        let dirty_set = report.dirty_cells();
        for r in 0..clean.len() {
            for c in 0..clean.schema.arity() {
                if !dirty_set.contains(&(r, c)) {
                    assert_eq!(dirty.rows[r][c], clean.rows[r][c]);
                }
            }
        }
    }

    #[test]
    fn typo_changes_exactly_one_edit() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let t = typo("john smith", &mut rng);
            let d = dc_relational::tokenize::edit_distance("john smith", &t);
            assert!(d <= 2, "typo produced distance {d}: {t}");
        }
    }

    #[test]
    fn abbreviation_shortens_a_token() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = abbreviate("john smith", &mut rng);
        assert!(a == "j smith" || a == "john s", "{a}");
        assert_eq!(abbreviate("single", &mut rng), "single");
    }

    #[test]
    fn fd_violation_actually_violates() {
        let mut rng = StdRng::seed_from_u64(4);
        let clean = people_table(200, &mut rng);
        let fds = people_fds();
        let inj = ErrorInjector::only(ErrorKind::FdViolation, 0.05);
        let (dirty, report) = inj.inject(&clean, &fds, &mut rng);
        assert!(!report.is_empty());
        let violated = fds.iter().any(|fd| !fd.holds(&dirty));
        assert!(violated, "no FD is violated after injection");
        for fd in &fds {
            assert!(fd.holds(&clean));
        }
    }

    #[test]
    fn swap_is_symmetric_in_report() {
        let mut rng = StdRng::seed_from_u64(5);
        let clean = people_table(100, &mut rng);
        let inj = ErrorInjector::only(ErrorKind::Swap, 0.2);
        let (_, report) = inj.inject(&clean, &[], &mut rng);
        let swaps = report
            .errors
            .iter()
            .filter(|e| e.kind == ErrorKind::Swap)
            .count();
        assert!(swaps > 0);
        assert_eq!(swaps % 2, 0, "swaps must be recorded in pairs");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut rng = StdRng::seed_from_u64(6);
        let clean = people_table(50, &mut rng);
        let inj = ErrorInjector::only(ErrorKind::Typo, 0.0);
        let (dirty, report) = inj.inject(&clean, &[], &mut rng);
        assert!(report.is_empty());
        assert_eq!(dirty.rows, clean.rows);
    }
}
