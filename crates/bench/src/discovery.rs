//! E6 (§5.1): semantic-link surfacing and spurious-link rejection.
//! E7 (§5.1): neural table search vs BM25 keyword baseline.

use crate::{f3, ExperimentTable, Scale};
use dc_datagen::Lake;
use dc_discovery::{
    mrr, precision_at, search_documents, Bm25Lite, NeuralSearch, SemanticMatcher, SyntacticMatcher,
};
use dc_embed::{Embeddings, SgnsConfig};
use dc_relational::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run E6 and E7.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e6(scale), e7(scale)]
}

fn sgns(scale: Scale) -> SgnsConfig {
    SgnsConfig {
        dim: 24,
        window: 8,
        epochs: scale.pick(5, 10),
        ..Default::default()
    }
}

/// E6: matcher quality on planted links.
fn e6(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(600);
    let lake = Lake::generate(scale.pick(10, 16), scale.pick(30, 60), &mut rng);
    let refs: Vec<&Table> = lake.tables.iter().collect();
    let semantic = SemanticMatcher::train(&refs, &sgns(scale), &mut rng);
    let syntactic = SyntacticMatcher { threshold: 0.3 };

    // Renamed semantic links (the interesting case) and spurious pairs.
    let renamed: Vec<_> = lake
        .semantic_links()
        .into_iter()
        .filter(|l| {
            lake.tables[l.a.0].schema.attrs[l.a.1].name
                != lake.tables[l.b.0].schema.attrs[l.b.1].name
        })
        .collect();
    let spurious = lake.spurious_links();

    let sem_surfaced = renamed
        .iter()
        .filter(|l| {
            semantic
                .decide(&lake.tables[l.a.0], l.a.1, &lake.tables[l.b.0], l.b.1)
                .linked
        })
        .count();
    let syn_surfaced = renamed
        .iter()
        .filter(|l| {
            syntactic
                .decide(
                    &lake.tables[l.a.0].schema.attrs[l.a.1].name,
                    &lake.tables[l.b.0].schema.attrs[l.b.1].name,
                )
                .linked
        })
        .count();
    let sem_rejected = spurious
        .iter()
        .filter(|l| {
            !semantic
                .decide(&lake.tables[l.a.0], l.a.1, &lake.tables[l.b.0], l.b.1)
                .linked
        })
        .count();
    let syn_rejected = spurious
        .iter()
        .filter(|l| {
            !syntactic
                .decide(
                    &lake.tables[l.a.0].schema.attrs[l.a.1].name,
                    &lake.tables[l.b.0].schema.attrs[l.b.1].name,
                )
                .linked
        })
        .count();

    let mut t = ExperimentTable::new(
        "E6",
        "Semantic matching: renamed-link recall & spurious-link rejection (§5.1)",
        &[
            "matcher",
            "renamed links surfaced",
            "spurious links rejected",
        ],
    );
    t.push(vec![
        "semantic (coherent groups)".into(),
        format!(
            "{sem_surfaced}/{} ({})",
            renamed.len(),
            f3(sem_surfaced as f64 / renamed.len().max(1) as f64)
        ),
        format!(
            "{sem_rejected}/{} ({})",
            spurious.len(),
            f3(sem_rejected as f64 / spurious.len().max(1) as f64)
        ),
    ]);
    t.push(vec![
        "syntactic (name Jaccard)".into(),
        format!(
            "{syn_surfaced}/{} ({})",
            renamed.len(),
            f3(syn_surfaced as f64 / renamed.len().max(1) as f64)
        ),
        format!(
            "{syn_rejected}/{} ({})",
            spurious.len(),
            f3(syn_rejected as f64 / spurious.len().max(1) as f64)
        ),
    ]);
    t
}

/// E7: search quality.
fn e7(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(700);
    let lake = Lake::generate(scale.pick(12, 20), scale.pick(30, 60), &mut rng);
    let refs: Vec<&Table> = lake.tables.iter().collect();
    let emb = Embeddings::train(&search_documents(&refs, 15), &sgns(scale), &mut rng);
    let neural = NeuralSearch::index(emb, &refs, 15);
    let bm25 = Bm25Lite::index(&refs, 15);

    let queries = lake.search_queries();
    let mut n_rank = Vec::new();
    let mut b_rank = Vec::new();
    let mut rel = Vec::new();
    // Paraphrased queries: use the *second* synonym of each domain, so
    // pure keyword matchers cannot rely on exact column-name hits for
    // half the lake's tables.
    for (q, relevant) in &queries {
        if relevant.is_empty() {
            continue;
        }
        n_rank.push(
            neural
                .search(q)
                .into_iter()
                .map(|(i, _)| i)
                .collect::<Vec<_>>(),
        );
        b_rank.push(
            bm25.search(q)
                .into_iter()
                .map(|(i, _)| i)
                .collect::<Vec<_>>(),
        );
        rel.push(relevant.clone());
    }

    let mut t = ExperimentTable::new(
        "E7",
        "Table search: neural IR vs keyword BM25 (§5.1)",
        &["engine", "MRR", "P@3"],
    );
    t.push(vec![
        "neural (embedding soft-match)".into(),
        f3(mrr(&n_rank, &rel)),
        f3(precision_at(3, &n_rank, &rel)),
    ]);
    t.push(vec![
        "BM25-lite (keyword)".into(),
        f3(mrr(&b_rank, &rel)),
        f3(precision_at(3, &b_rank, &rel)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_semantic_beats_syntactic_on_renamed_links() {
        let t = e6(Scale::Quick);
        let parse = |s: &str| -> f64 {
            s.split('(')
                .nth(1)
                .expect("paren")
                .trim_end_matches(')')
                .parse()
                .expect("num")
        };
        let sem = parse(&t.rows[0][1]);
        let syn = parse(&t.rows[1][1]);
        assert!(sem > syn, "semantic {sem} vs syntactic {syn}");
    }

    #[test]
    fn e7_both_engines_rank_above_chance() {
        let t = e7(Scale::Quick);
        let neural_mrr: f64 = t.rows[0][1].parse().expect("num");
        assert!(neural_mrr > 0.3, "neural MRR {neural_mrr}");
    }
}
