//! E1 (Figure 3): local vs distributed representations.
//! E2 (Figure 4, §3.1): tuple-as-document vs heterogeneous-graph cell
//! embeddings — window-size limitation and FD-edge ablation.

use crate::{f3, ExperimentTable, Scale};
use dc_embed::celldoc::cell_token;
use dc_embed::{CellDocEmbedder, Embeddings, GraphEmbedConfig, GraphEmbedder, OneHot, SgnsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run E1 and E2.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e1(scale), e1_capacity(), e2(scale)]
}

/// E1: semantic-similarity and analogy quality, one-hot vs SGNS.
fn e1(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(101);
    // Country/capital corpus with shared relation structure.
    let pairs = [
        ("france", "paris"),
        ("germany", "berlin"),
        ("italy", "rome"),
        ("spain", "madrid"),
        ("japan", "tokyo"),
        ("egypt", "cairo"),
    ];
    // SGNS input-vector similarity reflects shared *contexts*, so each
    // pair gets a region token both its words co-occur with, next to the
    // role markers that give the relation a consistent direction.
    let reps = scale.pick(100, 150);
    let mut corpus = Vec::new();
    for (i, (country, capital)) in pairs.iter().enumerate() {
        let region = format!("region{i}");
        for _ in 0..reps {
            corpus.push(vec![country.to_string(), region.clone()]);
            corpus.push(vec![capital.to_string(), region.clone()]);
            corpus.push(vec![country.to_string(), "nation".to_string()]);
            corpus.push(vec![capital.to_string(), "capitalcity".to_string()]);
        }
    }
    let emb = Embeddings::train(
        &corpus,
        &SgnsConfig {
            dim: 16,
            window: 2,
            epochs: scale.pick(15, 20),
            ..Default::default()
        },
        &mut rng,
    );
    let onehot = OneHot::new(
        pairs
            .iter()
            .flat_map(|(a, b)| [a.to_string(), b.to_string()]),
    );

    // Related-pair vs unrelated-pair similarity gap.
    let mut related = 0.0f32;
    let mut unrelated = 0.0f32;
    let mut n_unrel = 0;
    for (i, (c1, k1)) in pairs.iter().enumerate() {
        related += emb.similarity(c1, k1).expect("in vocab");
        for (j, (_, k2)) in pairs.iter().enumerate() {
            if i != j {
                unrelated += emb.similarity(c1, k2).expect("in vocab");
                n_unrel += 1;
            }
        }
    }
    related /= pairs.len() as f32;
    unrelated /= n_unrel as f32;

    // One-hot: every distinct pair scores 0.
    let oh_related = onehot.similarity("france", "paris").expect("known");

    // Analogy accuracy (country0:capital0 :: country_i:? → capital_i).
    let mut analogy_hits = 0;
    let mut analogy_total = 0;
    for (i, (c, k)) in pairs.iter().enumerate().skip(1) {
        analogy_total += 1;
        let res = emb.analogy(pairs[0].0, pairs[0].1, c, 3);
        if res.iter().any(|(t, _)| t == k) {
            analogy_hits += 1;
            let _ = i;
        }
    }

    let mut t = ExperimentTable::new(
        "E1",
        "Local vs distributed representations (Fig 3)",
        &[
            "representation",
            "related-pair sim",
            "unrelated-pair sim",
            "analogy top-3 acc",
        ],
    );
    t.push(vec![
        "one-hot (local)".into(),
        f3(oh_related as f64),
        "0.000".into(),
        "0.000 (undefined)".into(),
    ]);
    t.push(vec![
        "SGNS (distributed)".into(),
        f3(related as f64),
        f3(unrelated as f64),
        f3(analogy_hits as f64 / analogy_total as f64),
    ]);
    t
}

/// E1b: the capacity argument of §2.2 — "exponential in the total
/// dimensions available" vs linear.
fn e1_capacity() -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E1b",
        "Representation capacity: objects representable at dimension d (§2.2)",
        &["d", "local (one-hot)", "distributed (binary)"],
    );
    for d in [4u32, 9, 16, 32, 64] {
        t.push(vec![
            d.to_string(),
            OneHot::local_capacity(d as usize).to_string(),
            OneHot::distributed_capacity(d).to_string(),
        ]);
    }
    t
}

/// E2: related-cell retrieval. Ground truth: city cells relate to their
/// country cells (the planted FD); score = mean similarity rank gap and
/// hit@3 of the correct country among country-attribute nodes.
fn e2(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(102);
    let table = dc_datagen::people_table(scale.pick(150, 400), &mut rng);
    let fds = dc_datagen::people_fds();
    let city_col = 4usize;
    let country_col = 5usize;

    // Ground truth city → country from the GEO domain.
    let truth: Vec<(String, String)> = dc_datagen::domains::GEO
        .iter()
        .map(|&(city, country, _)| (city.to_string(), country.to_string()))
        .collect();

    let hit_at_3 = |emb: &Embeddings| -> f64 {
        let mut hits = 0usize;
        let mut total = 0usize;
        for (city, country) in &truth {
            let city_tok = cell_token(city_col, city);
            let Some(cv) = emb.get(&city_tok) else {
                continue;
            };
            // Rank all country cells by similarity to this city cell.
            let mut scored: Vec<(&str, f32)> = truth
                .iter()
                .map(|(_, c)| c.as_str())
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .filter_map(|c| {
                    emb.get(&cell_token(country_col, c))
                        .map(|v| (c, dc_tensor::tensor::cosine(cv, v)))
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            total += 1;
            if scored.first().is_some_and(|(c, _)| c == country) {
                hits += 1;
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    };

    let sgns = |window: usize| SgnsConfig {
        dim: 24,
        window,
        epochs: scale.pick(6, 12),
        ..Default::default()
    };

    let mut t = ExperimentTable::new(
        "E2",
        "Cell embeddings: tuple-as-document vs heterogeneous graph (Fig 4)",
        &["model", "city→country hit@1"],
    );

    // Tuple-as-document at two window sizes (§3.1 limitation 2: city is
    // column 4, country column 5 — adjacent — so we also test a schema
    // where the pair is far apart by projecting a reordered view).
    for window in [1usize, 4] {
        let mut r = StdRng::seed_from_u64(103);
        let emb = CellDocEmbedder::new(sgns(window)).train(&table, &mut r);
        t.push(vec![
            format!("tuple-as-document (W={window})"),
            f3(hit_at_3(&emb)),
        ]);
    }

    // Distant-attribute variant: reorder columns so city and country
    // are 6 apart; a small window must now miss the co-occurrence.
    let spread = table.project(&[
        "city", "id", "name", "email", "phone", "age", "capital", "country",
    ]);
    let spread_truth_cols = (0usize, 7usize);
    {
        let mut r = StdRng::seed_from_u64(104);
        let emb = CellDocEmbedder::new(sgns(2)).train(&spread, &mut r);
        // Recompute hit@3 on the spread layout.
        let mut hits = 0;
        let mut total = 0;
        for (city, country) in &truth {
            let Some(cv) = emb.get(&cell_token(spread_truth_cols.0, city)) else {
                continue;
            };
            let mut scored: Vec<(&str, f32)> = truth
                .iter()
                .map(|(_, c)| c.as_str())
                .collect::<std::collections::HashSet<_>>()
                .into_iter()
                .filter_map(|c| {
                    emb.get(&cell_token(spread_truth_cols.1, c))
                        .map(|v| (c, dc_tensor::tensor::cosine(cv, v)))
                })
                .collect();
            scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            total += 1;
            if scored.first().is_some_and(|(c, _)| c == country) {
                hits += 1;
            }
        }
        t.push(vec![
            "tuple-as-document (W=2, |i−j|=7)".into(),
            f3(if total == 0 {
                0.0
            } else {
                hits as f64 / total as f64
            }),
        ]);
    }

    // Graph embeddings, FD edges on and ablated.
    for fd_bias in [2.0f32, 0.0] {
        let mut r = StdRng::seed_from_u64(105);
        let emb = GraphEmbedder::new(GraphEmbedConfig {
            walks_per_node: scale.pick(5, 10),
            walk_length: 10,
            fd_bias,
            sgns: sgns(4),
        })
        .train(&table, &fds, &mut r);
        t.push(vec![
            format!("graph walks (fd_bias={fd_bias})"),
            f3(hit_at_3(&emb)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_distributed_beats_local() {
        let tables = run(Scale::Quick);
        let e1 = &tables[0];
        // SGNS row: related >> unrelated.
        let related: f64 = e1.rows[1][1].parse().expect("num");
        let unrelated: f64 = e1.rows[1][2].parse().expect("num");
        assert!(related > unrelated + 0.2, "{related} vs {unrelated}");
    }

    #[test]
    fn e2_graph_beats_narrow_window_on_spread_schema() {
        let tables = run(Scale::Quick);
        let e2 = &tables[2];
        let find = |needle: &str| -> f64 {
            e2.rows.iter().find(|r| r[0].contains(needle)).expect("row")[1]
                .parse()
                .expect("num")
        };
        let spread = find("|i−j|=7");
        let graph = find("fd_bias=2");
        assert!(
            graph >= spread,
            "graph {graph} should be at least the spread-window score {spread}"
        );
    }
}
