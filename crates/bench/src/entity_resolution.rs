//! E3 (§5.2 accuracy): ER F1 across benchmark suites and matchers.
//! E4 (§5.2 efficiency): blocking reduction vs completeness.
//! E5 (§5.2 ease-of-use, §6.1): label-efficiency and imbalance handling.
//! E13 (§6.1): CPU wall-clock for training and prediction.

use crate::{f3, ExperimentTable, Scale};
use dc_datagen::{ErBenchmark, ErSuite};
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::baselines::{FeatureLogReg, RuleMatcher};
use dc_er::blocking::{blocking_quality, KeyBlocker, LshBlocker, TokenBlocker};
use dc_er::eval::evaluate_at;
use dc_er::features::tuple_vectors;
use dc_er::{Composition, DeepEr, DeepErConfig};
use dc_relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Run E3, E4, E5 and E13.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e3(scale), e4(scale), e5(scale), e13(scale)]
}

fn word_embeddings(bench: &ErBenchmark, scale: Scale, rng: &mut StdRng) -> Embeddings {
    let mut docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    docs.extend(dc_datagen::corpus::domain_corpus(scale.pick(300, 800), rng));
    Embeddings::train(
        &docs,
        &SgnsConfig {
            dim: scale.pick(16, 24),
            epochs: scale.pick(4, 8),
            ..Default::default()
        },
        rng,
    )
}

type Split = (
    Vec<(usize, usize)>,
    Vec<bool>,
    Vec<(usize, usize)>,
    Vec<bool>,
);

fn split(bench: &ErBenchmark, neg_per_pos: usize, rng: &mut StdRng) -> Split {
    let pairs = bench.labeled_pairs(neg_per_pos, rng);
    let (train, test) = ErBenchmark::split_pairs(&pairs, 0.7, rng);
    (
        train.iter().map(|p| (p.a, p.b)).collect(),
        train.iter().map(|p| p.label).collect(),
        test.iter().map(|p| (p.a, p.b)).collect(),
        test.iter().map(|p| p.label).collect(),
    )
}

/// E3: F1 per suite per method.
fn e3(scale: Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E3",
        "ER accuracy (F1) across suites (Fig 5, §5.2)",
        &[
            "suite",
            "DeepER (avg)",
            "DeepER (LSTM)",
            "Feature LogReg",
            "Rule @0.7",
        ],
    );
    let entities = scale.pick(50, 120);
    for suite in [ErSuite::Clean, ErSuite::Dirty, ErSuite::Textual] {
        let mut rng = StdRng::seed_from_u64(300 + suite as u64);
        let bench = ErBenchmark::generate(suite, entities, 3, &mut rng);
        let emb = word_embeddings(&bench, scale, &mut rng);
        let (tp, tl, ep, el) = split(&bench, 3, &mut rng);

        let deeper = DeepEr::train(
            emb.clone(),
            &bench.table,
            &tp,
            &tl,
            Composition::Average,
            DeepErConfig {
                epochs: scale.pick(15, 30),
                ..Default::default()
            },
            &mut rng,
        );
        let f_avg = evaluate_at(&deeper.predict(&bench.table, &ep), &el, 0.5).f1;

        let f_lstm = if scale == Scale::Full {
            let lstm = DeepEr::train(
                emb.clone(),
                &bench.table,
                &tp,
                &tl,
                Composition::Lstm {
                    hidden: 12,
                    max_tokens: 12,
                },
                DeepErConfig {
                    epochs: 6,
                    lr: 0.02,
                    ..Default::default()
                },
                &mut rng,
            );
            f3(evaluate_at(&lstm.predict(&bench.table, &ep), &el, 0.5).f1)
        } else {
            "—".into()
        };

        let logreg = FeatureLogReg::train(&bench.table, &tp, &tl, scale.pick(30, 60), &mut rng);
        let f_lr = evaluate_at(&logreg.predict(&bench.table, &ep), &el, 0.5).f1;

        let rule = RuleMatcher::new(0.7);
        let f_rule = evaluate_at(&rule.scores(&bench.table, &ep), &el, 0.7).f1;

        t.push(vec![
            format!("{suite:?}"),
            f3(f_avg),
            f_lstm,
            f3(f_lr),
            f3(f_rule),
        ]);
    }
    t
}

/// E4: blocking quality.
fn e4(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(400);
    let bench = ErBenchmark::generate(ErSuite::Dirty, scale.pick(80, 200), 3, &mut rng);
    let emb = word_embeddings(&bench, scale, &mut rng);
    let vectors = tuple_vectors(&emb, &bench.table);
    let truth = bench.duplicate_pairs();
    let n = bench.table.len();

    let mut t = ExperimentTable::new(
        "E4",
        "Blocking: reduction ratio vs pair completeness (§5.2 efficiency)",
        &["blocker", "reduction", "completeness", "candidates"],
    );
    for (bands, rows) in [(16, 2), (8, 4), (4, 6)] {
        let q = blocking_quality(
            &LshBlocker::new(emb.dim(), bands, rows, &mut rng).candidates(&vectors),
            &truth,
            n,
        );
        t.push(vec![
            format!("LSH {bands}x{rows} (all attributes)"),
            f3(q.reduction_ratio),
            f3(q.pair_completeness),
            q.candidates.to_string(),
        ]);
    }
    let q = blocking_quality(
        &TokenBlocker { column: 0 }.candidates(&bench.table),
        &truth,
        n,
    );
    t.push(vec![
        "token blocking (name only)".into(),
        f3(q.reduction_ratio),
        f3(q.pair_completeness),
        q.candidates.to_string(),
    ]);
    for prefix in [1usize, 3] {
        let q = blocking_quality(
            &KeyBlocker { column: 0, prefix }.candidates(&bench.table),
            &truth,
            n,
        );
        t.push(vec![
            format!("key blocking (name[0..{prefix}])"),
            f3(q.reduction_ratio),
            f3(q.pair_completeness),
            q.candidates.to_string(),
        ]);
    }
    t
}

/// E5: F1 vs number of labelled pairs, DeepER (pre-trained embeddings)
/// vs feature LogReg; plus the §6.1 class-weighting ablation.
fn e5(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(500);
    let bench = ErBenchmark::generate(ErSuite::Dirty, scale.pick(60, 120), 3, &mut rng);
    let emb = word_embeddings(&bench, scale, &mut rng);
    let (tp_all, tl_all, ep, el) = split(&bench, 3, &mut rng);

    let mut t = ExperimentTable::new(
        "E5",
        "Label efficiency: F1 vs training labels (§5.2 ease-of-use)",
        &[
            "labels",
            "DeepER (pretrained emb)",
            "DeepER (no weighting)",
            "Feature LogReg",
        ],
    );
    for &budget in scale.pick(&[20usize, 60, 200][..], &[20usize, 50, 100, 200, 400][..]) {
        let take = budget.min(tp_all.len());
        let tp = &tp_all[..take];
        let tl = &tl_all[..take];
        let mut r1 = StdRng::seed_from_u64(501);
        let deeper = DeepEr::train(
            emb.clone(),
            &bench.table,
            tp,
            tl,
            Composition::Average,
            DeepErConfig {
                epochs: scale.pick(20, 40),
                ..Default::default()
            },
            &mut r1,
        );
        let f_deep = evaluate_at(&deeper.predict(&bench.table, &ep), &el, 0.5).f1;

        let mut r2 = StdRng::seed_from_u64(502);
        let unweighted = DeepEr::train(
            emb.clone(),
            &bench.table,
            tp,
            tl,
            Composition::Average,
            DeepErConfig {
                epochs: scale.pick(20, 40),
                class_weighting: false,
                ..Default::default()
            },
            &mut r2,
        );
        let f_unw = evaluate_at(&unweighted.predict(&bench.table, &ep), &el, 0.5).f1;

        let mut r3 = StdRng::seed_from_u64(503);
        let logreg = FeatureLogReg::train(&bench.table, tp, tl, scale.pick(30, 60), &mut r3);
        let f_lr = evaluate_at(&logreg.predict(&bench.table, &ep), &el, 0.5).f1;

        t.push(vec![budget.to_string(), f3(f_deep), f3(f_unw), f3(f_lr)]);
    }
    t
}

/// E13: CPU wall-clock ("trained in a matter of minutes even on a CPU",
/// §6.1) — end-to-end train and predict times at bench scale.
fn e13(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1300);
    let bench = ErBenchmark::generate(ErSuite::Dirty, scale.pick(60, 150), 3, &mut rng);
    let emb_start = Instant::now();
    let emb = word_embeddings(&bench, scale, &mut rng);
    let emb_time = emb_start.elapsed();
    let (tp, tl, ep, el) = split(&bench, 3, &mut rng);

    let mut t = ExperimentTable::new(
        "E13",
        "CPU wall-clock (§6.1 'trained in minutes even on a CPU')",
        &["stage", "time (ms)", "notes"],
    );
    t.push(vec![
        "SGNS pre-training".into(),
        emb_time.as_millis().to_string(),
        format!("{} docs", bench.table.len() + scale.pick(300, 800)),
    ]);

    let start = Instant::now();
    let deeper = DeepEr::train(
        emb.clone(),
        &bench.table,
        &tp,
        &tl,
        Composition::Average,
        DeepErConfig {
            epochs: scale.pick(15, 30),
            ..Default::default()
        },
        &mut rng,
    );
    t.push(vec![
        "DeepER train (avg)".into(),
        start.elapsed().as_millis().to_string(),
        format!("{} pairs", tp.len()),
    ]);

    let start = Instant::now();
    let scores = deeper.predict(&bench.table, &ep);
    let predict_ms = start.elapsed().as_millis().max(1);
    let f1 = evaluate_at(&scores, &el, 0.5).f1;
    t.push(vec![
        "DeepER predict".into(),
        predict_ms.to_string(),
        format!("{} pairs, F1 {}", ep.len(), f3(f1)),
    ]);

    let start = Instant::now();
    let logreg = FeatureLogReg::train(&bench.table, &tp, &tl, scale.pick(30, 60), &mut rng);
    t.push(vec![
        "Feature LogReg train".into(),
        start.elapsed().as_millis().to_string(),
        format!("{} pairs", tp.len()),
    ]);
    let start = Instant::now();
    let _ = logreg.predict(&bench.table, &ep);
    t.push(vec![
        "Feature LogReg predict".into(),
        start.elapsed().as_millis().max(1).to_string(),
        format!("{} pairs", ep.len()),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_has_three_suites() {
        let t = e3(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        // DeepER avg F1 parses and is nontrivial on Clean.
        let f: f64 = t.rows[0][1].parse().expect("num");
        assert!(f > 0.5, "clean-suite DeepER F1 {f}");
    }

    #[test]
    fn e4_lsh_has_high_completeness_at_positive_reduction() {
        let t = e4(Scale::Quick);
        let lsh_row = &t.rows[1]; // 8x4
        let reduction: f64 = lsh_row[1].parse().expect("num");
        let completeness: f64 = lsh_row[2].parse().expect("num");
        assert!(reduction > 0.2, "reduction {reduction}");
        assert!(completeness > 0.6, "completeness {completeness}");
    }

    #[test]
    fn e5_rows_cover_budgets() {
        let t = e5(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let f: f64 = row[1].parse().expect("num");
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn e13_times_are_positive() {
        let t = e13(Scale::Quick);
        for row in &t.rows {
            let ms: u64 = row[1].parse().expect("num");
            // Training stages should register at least a millisecond—
            // the claim under test is merely "minutes, not hours".
            assert!(ms < 600_000, "{} took {ms} ms", row[0]);
        }
    }
}
