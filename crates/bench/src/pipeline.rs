//! E14 (Figure 1, §3.4): the end-to-end pipeline on dirty lakes of
//! rising error rates.

use crate::{f3, ExperimentTable, Scale};
use autodc::pipeline::{Pipeline, PipelineConfig};
use dc_datagen::{people_fds, people_table, ErrorInjector};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run E14.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e14(scale)]
}

fn e14(scale: Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E14",
        "End-to-end pipeline: discover → integrate → clean (Fig 1, §3.4)",
        &[
            "error level",
            "rows in",
            "rows out",
            "clusters merged",
            "repairs",
            "imputed",
            "quality before",
            "quality after",
        ],
    );
    let rows = scale.pick(60, 120);
    for (label, mult) in [("low", 0.5), ("medium", 1.0), ("high", 2.0)] {
        let mut rng = StdRng::seed_from_u64(1400);
        let clean = people_table(rows, &mut rng);
        let injector = ErrorInjector {
            typo_rate: 0.01 * mult,
            null_rate: 0.05 * mult,
            swap_rate: 0.0,
            fd_violation_rate: 0.02 * mult,
            abbreviation_rate: 0.01 * mult,
        };
        let (mut a, _) = injector.inject(&clean, &people_fds(), &mut rng);
        a.name = "people_a".into();
        let (mut b, _) = injector.inject(&clean, &people_fds(), &mut rng);
        b.name = "people_b".into();
        let decoy = dc_datagen::products_table(40, &mut rng);

        let pipeline = Pipeline::new(PipelineConfig {
            query: "people name city country".into(),
            top_k_tables: 3,
            ..Default::default()
        });
        let (curated, report) = pipeline.run(&[a, decoy, b], &mut rng);
        t.push(vec![
            label.to_string(),
            report.rows_in.to_string(),
            curated.len().to_string(),
            report.clusters_merged.to_string(),
            report.repairs.to_string(),
            report.cells_imputed.to_string(),
            f3(report.before.score()),
            f3(report.after.score()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quality_never_degrades() {
        let t = e14(Scale::Quick);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            let before: f64 = row[6].parse().expect("num");
            let after: f64 = row[7].parse().expect("num");
            assert!(after >= before - 0.02, "{row:?}");
            let rows_in: usize = row[1].parse().expect("num");
            let rows_out: usize = row[2].parse().expect("num");
            assert!(rows_out < rows_in, "dedup did nothing: {row:?}");
        }
    }
}
