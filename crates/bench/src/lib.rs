//! # dc-bench
//!
//! The experiment harness: every figure and quantitative prose claim of
//! *"Data Curation with Deep Learning"* (EDBT 2020) mapped to a
//! regenerable table (see `DESIGN.md` §3 for the index and
//! `EXPERIMENTS.md` for recorded results).
//!
//! Each module exposes `run(scale) -> Vec<ExperimentTable>`; the
//! `report` binary prints them as markdown. Criterion benches under
//! `benches/` time the hot kernels behind the same code paths.

pub mod autoencoders;
pub mod cleaning;
pub mod discovery;
pub mod entity_resolution;
pub mod pipeline;
pub mod representations;
pub mod synthesis;
pub mod weak_supervision;

/// How much compute an experiment may spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-per-experiment; used by tests and `report --quick`.
    Quick,
    /// The EXPERIMENTS.md setting.
    Full,
}

impl Scale {
    /// Pick `q` under [`Scale::Quick`], else `f`.
    pub fn pick<T>(self, q: T, f: T) -> T {
        match self {
            Scale::Quick => q,
            Scale::Full => f,
        }
    }
}

/// One result table of an experiment.
#[derive(Clone, Debug)]
pub struct ExperimentTable {
    /// Experiment id, e.g. `"E3"`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Build with headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        ExperimentTable {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Render as a GitHub-flavoured markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!("|{}\n", "---|".repeat(self.headers.len())));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Format a float to 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a float to 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// All experiments in id order.
pub fn run_all(scale: Scale) -> Vec<ExperimentTable> {
    let mut out = Vec::new();
    out.extend(representations::run(scale));
    out.extend(entity_resolution::run(scale));
    out.extend(discovery::run(scale));
    out.extend(cleaning::run(scale));
    out.extend(synthesis::run(scale));
    out.extend(weak_supervision::run(scale));
    out.extend(pipeline::run(scale));
    out.extend(autoencoders::run(scale));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_rendering() {
        let mut t = ExperimentTable::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("| a | b |"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = ExperimentTable::new("E0", "demo", &["a", "b"]);
        t.push(vec!["1".into()]);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
