//! E15 (Figure 2 e–i, §6.2.3): the autoencoder family on tuple data and
//! VAE/GAN synthetic-data quality.

use crate::{f3, ExperimentTable, Scale};
use dc_clean::TableEncoder;
use dc_nn::ae::{Autoencoder, DenoisingAutoencoder, KSparseAutoencoder, Noise};
use dc_nn::gan::Gan;
use dc_nn::metrics::roc_auc;
use dc_nn::optim::Adam;
use dc_nn::Vae;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run E15.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e15_reconstruction(scale), e15_generation(scale)]
}

/// Encoded people-table rows as the common benchmark input.
fn encoded_people(scale: Scale, rng: &mut StdRng) -> Tensor {
    let table = dc_datagen::people_table(scale.pick(150, 300), rng);
    let encoder = TableEncoder::fit(&table, 32);
    encoder.encode(&table).0
}

/// E15a: reconstruction error under corruption for AE / k-sparse / DAE.
fn e15_reconstruction(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1500);
    let x = encoded_people(scale, &mut rng);
    let d = x.cols;
    let epochs = scale.pick(30, 80);

    let mut ae = Autoencoder::new(d, &[d / 2], d / 4, &mut rng);
    ae.fit(&x, &mut Adam::new(0.005), epochs, 32, &mut rng);

    let mut ks = KSparseAutoencoder::new(d, d / 2, d / 8, &mut rng);
    for _ in 0..epochs {
        ks.train_step(&x, &mut Adam::new(0.005));
    }

    let mut dae =
        DenoisingAutoencoder::new(d, &[d / 2], d / 4, Noise::Masking { p: 0.2 }, &mut rng);
    dae.fit(&x, &mut Adam::new(0.005), epochs, 32, &mut rng);

    // Evaluate: reconstruction MSE on clean input and on 20%-masked
    // input (the DAE should degrade least under corruption).
    let corrupted = Noise::Masking { p: 0.2 }.corrupt(&x, &mut rng);
    let mse = |xhat: &Tensor, target: &Tensor| -> f64 {
        (xhat.sub(target).norm() as f64).powi(2) / target.len() as f64
    };

    let mut t = ExperimentTable::new(
        "E15a",
        "Autoencoder family: reconstruction MSE, clean vs corrupted input (Fig 2 e–g)",
        &["model", "clean input", "20% masked input"],
    );
    t.push(vec![
        "autoencoder".into(),
        f3(mse(&ae.reconstruct(&x), &x)),
        f3(mse(&ae.reconstruct(&corrupted), &x)),
    ]);
    t.push(vec![
        "k-sparse AE".into(),
        f3(mse(&ks.reconstruct(&x), &x)),
        f3(mse(&ks.reconstruct(&corrupted), &x)),
    ]);
    t.push(vec![
        "denoising AE".into(),
        f3(mse(&dae.ae.reconstruct(&x), &x)),
        f3(mse(&dae.denoise(&corrupted), &x)),
    ]);
    t
}

/// E15b: VAE/GAN synthetic tuples (§6.2.3) — how well a discriminator
/// trained post-hoc can tell fakes from real rows (0.5 = perfect
/// generator), plus marginal mean gap.
fn e15_generation(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1510);
    let x = encoded_people(scale, &mut rng);
    let d = x.cols;
    let n = x.rows;

    let mut vae = Vae::new(d, d / 2, d / 4, &mut rng);
    vae.beta = 0.1;
    vae.fit(&x, &mut Adam::new(0.005), scale.pick(30, 80), 32, &mut rng);
    let vae_samples = vae.sample(n, &mut rng);

    let mut gan = Gan::new(d, d / 4, d / 2, &mut rng);
    gan.fit(&x, scale.pick(150, 500), 32, &mut rng);
    let gan_samples = gan.generate(n, &mut rng);

    // Post-hoc discriminator AUC: train a fresh classifier on
    // real-vs-fake; AUC near 0.5 means indistinguishable samples.
    let auc_against_real = |samples: &Tensor, rng: &mut StdRng| -> f64 {
        use dc_nn::linear::Activation;
        use dc_nn::loss::LossKind;
        use dc_nn::mlp::Mlp;
        let all = Tensor::vstack(&[x.clone(), samples.clone()]);
        let mut labels = vec![1.0f32; n];
        labels.extend(vec![0.0; samples.rows]);
        let y = Tensor::from_vec(all.rows, 1, labels.clone());
        let mut clf = Mlp::new(&[d, 16, 1], Activation::Relu, Activation::Identity, rng);
        clf.fit(
            &all,
            &y,
            LossKind::bce(),
            &mut Adam::new(0.01),
            scale.pick(10, 25),
            32,
            rng,
        );
        let scores = clf.predict_proba(&all);
        let gold: Vec<bool> = labels.iter().map(|&v| v >= 0.5).collect();
        roc_auc(&scores, &gold)
    };

    // Per-column mean RMSE: the global mean is ~0 for both the encoded
    // data (standardised numerics) and iid noise, so only a per-column
    // comparison separates a trained generator from the noise anchor.
    let mean_gap = |samples: &Tensor| -> f64 {
        let col_mean = |m: &Tensor, c: usize| -> f64 {
            (0..m.rows).map(|r| m.get(r, c) as f64).sum::<f64>() / m.rows.max(1) as f64
        };
        let se: f64 = (0..d)
            .map(|c| {
                let gap = col_mean(samples, c) - col_mean(&x, c);
                gap * gap
            })
            .sum();
        (se / d as f64).sqrt()
    };

    let mut t = ExperimentTable::new(
        "E15b",
        "Synthetic tuple generation: VAE vs GAN (§6.2.3)",
        &[
            "generator",
            "post-hoc discriminator AUC (0.5 = perfect)",
            "column-mean RMSE",
        ],
    );
    let vauc = auc_against_real(&vae_samples, &mut rng);
    t.push(vec!["VAE".into(), f3(vauc), f3(mean_gap(&vae_samples))]);
    let gauc = auc_against_real(&gan_samples, &mut rng);
    t.push(vec!["GAN".into(), f3(gauc), f3(mean_gap(&gan_samples))]);
    // Sanity anchor: pure noise should be trivially detectable.
    let noise = Tensor::randn(n, d, 1.0, &mut rng);
    let nauc = auc_against_real(&noise, &mut rng);
    t.push(vec![
        "iid noise (anchor)".into(),
        f3(nauc),
        f3(mean_gap(&noise)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15a_dae_is_most_robust_to_corruption() {
        let t = e15_reconstruction(Scale::Quick);
        let corrupted = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0].contains(name)).expect("row")[2]
                .parse()
                .expect("num")
        };
        assert!(
            corrupted("denoising") <= corrupted("autoencoder") + 0.01,
            "DAE {} vs AE {}",
            corrupted("denoising"),
            corrupted("autoencoder")
        );
    }

    #[test]
    fn e15b_generators_beat_the_noise_anchor() {
        let t = e15_generation(Scale::Quick);
        let col = |name: &str, idx: usize| -> f64 {
            t.rows.iter().find(|r| r[0].contains(name)).expect("row")[idx]
                .parse()
                .expect("num")
        };
        // A post-hoc discriminator spots non-binary one-hots trivially,
        // so AUC saturates for every generator on encoded tuples; the
        // global-statistics gap is the discriminating measure here.
        assert!(col("noise", 1) > 0.95, "noise anchor {}", col("noise", 1));
        assert!(
            col("VAE", 2) < col("noise", 2),
            "VAE gap {} vs noise gap {}",
            col("VAE", 2),
            col("noise", 2)
        );
        // §6.2.3's own caveat: GANs "often have issues with
        // convergence" — at quick scale we only require sanity, and the
        // full-scale EXPERIMENTS.md row records the measured gap.
        assert!(col("GAN", 2).is_finite() && col("GAN", 2) < 5.0);
    }
}
