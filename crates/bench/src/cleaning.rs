//! E8 (§5.3): imputation across missingness rates and methods.
//! E9 (§5.3): knowledge fusion of conflicting multi-source values.

use crate::{f3, ExperimentTable, Scale};
use dc_clean::fusion::{fuse, fusion_accuracy, FusionStrategy, SourceClaim};
use dc_clean::impute::{score_imputation, DaeImputer, KnnImputer, SimpleImputer, SimpleStrategy};
use dc_clean::TableEncoder;
use dc_datagen::people_table;
use dc_relational::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Run E8 and E9.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e8(scale), e9(scale)]
}

/// E8: categorical accuracy and numeric RMSE vs missingness rate.
fn e8(scale: Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E8",
        "Imputation vs missingness (MCAR): DAE vs baselines (§5.3)",
        &["missing", "method", "categorical acc", "numeric RMSE"],
    );
    let rows = scale.pick(200, 400);
    for &rate in scale.pick(&[0.1f64, 0.3][..], &[0.05f64, 0.1, 0.2, 0.3][..]) {
        let mut rng = StdRng::seed_from_u64(800);
        let clean = people_table(rows, &mut rng);
        // Null out only the *correlated* columns (city/country/capital
        // and age): key-like columns (ids, emails, phones) are
        // unguessable by construction and would only dilute the method
        // comparison (§3.1's rare-values caveat).
        let mut dirty = clean.clone();
        for row in &mut dirty.rows {
            for c in [4usize, 5, 6, 7] {
                if rng.gen_bool(rate) {
                    row[c] = dc_relational::Value::Null;
                }
            }
        }
        let encoder = TableEncoder::fit(&dirty, 64);

        let mode = SimpleImputer::fit(&dirty, SimpleStrategy::MeanMode).impute(&dirty);
        let knn = KnnImputer { k: 5 }.impute(&dirty, &encoder);
        let mut r = StdRng::seed_from_u64(801);
        let dae = DaeImputer::train(&dirty, encoder, &[48], 24, scale.pick(30, 60), &mut r)
            .impute(&dirty);

        for (name, imputed) in [("mean/mode", &mode), ("kNN(5)", &knn), ("DAE", &dae)] {
            let s = score_imputation(&clean, &dirty, imputed);
            t.push(vec![
                format!("{:.0}%", rate * 100.0),
                name.to_string(),
                f3(s.categorical_accuracy),
                f3(s.numeric_rmse),
            ]);
        }
    }
    t
}

/// E9: fusion accuracy vs source reliability mix.
fn e9(scale: Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E9",
        "Knowledge fusion of conflicting sources (§5.3)",
        &["source accuracies", "majority vote", "source-accuracy EM"],
    );
    let n = scale.pick(200, 500);
    let domain = ["paris", "berlin", "rome", "madrid", "tokyo"];
    for accs in [
        vec![0.9, 0.9, 0.9],
        vec![0.9, 0.6, 0.6],
        vec![0.95, 0.4, 0.4],
        vec![0.9, 0.9, 0.5, 0.5, 0.5],
    ] {
        let mut rng = StdRng::seed_from_u64(900);
        let mut truth = HashMap::new();
        let mut claims = Vec::new();
        for e in 0..n {
            let true_val = domain[rng.gen_range(0..domain.len())];
            truth.insert((e, 0usize), Value::text(true_val));
            for (s, &acc) in accs.iter().enumerate() {
                let v = if rng.gen_bool(acc) {
                    true_val
                } else {
                    loop {
                        let w = domain[rng.gen_range(0..domain.len())];
                        if w != true_val {
                            break w;
                        }
                    }
                };
                claims.push(SourceClaim {
                    source: s,
                    entity: e,
                    attr: 0,
                    value: Value::text(v),
                });
            }
        }
        let maj = fusion_accuracy(&fuse(&claims, FusionStrategy::MajorityVote), &truth);
        let em = fusion_accuracy(
            &fuse(&claims, FusionStrategy::SourceAccuracy { iterations: 5 }),
            &truth,
        );
        t.push(vec![format!("{accs:?}"), f3(maj), f3(em)]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_dae_beats_mode_at_moderate_missingness() {
        let t = e8(Scale::Quick);
        // Rows come in (mode, knn, dae) triples per rate; compare at 10%.
        let acc = |method: &str, rate: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == rate && r[1] == method)
                .expect("row")[2]
                .parse()
                .expect("num")
        };
        assert!(
            acc("DAE", "10%") > acc("mean/mode", "10%"),
            "DAE {} vs mode {}",
            acc("DAE", "10%"),
            acc("mean/mode", "10%")
        );
    }

    #[test]
    fn e9_em_never_loses_badly_and_wins_with_bad_sources() {
        let t = e9(Scale::Quick);
        for row in &t.rows {
            let maj: f64 = row[1].parse().expect("num");
            let em: f64 = row[2].parse().expect("num");
            assert!(em >= maj - 0.02, "{row:?}");
        }
        // The 0.95/0.4/0.4 row is where EM shines.
        let bad = t.rows.iter().find(|r| r[0].contains("0.95")).expect("row");
        let maj: f64 = bad[1].parse().expect("num");
        let em: f64 = bad[2].parse().expect("num");
        assert!(em > maj + 0.05, "EM {em} vs majority {maj}");
    }
}
