//! E11 (§6.2.2/§6.2.4): augmentation and weak supervision.
//! E12 (§6.2.6): crowdsourced label inference.

use crate::{f3, ExperimentTable, Scale};
use dc_datagen::{ErBenchmark, ErSuite};
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::eval::evaluate_at;
use dc_er::{Composition, DeepEr, DeepErConfig};
use dc_relational::tokenize_tuple;
use dc_weak::augment::augment_er_pairs;
use dc_weak::crowd::{dawid_skene, simulate_crowd};
use dc_weak::labelmodel::{majority_vote, GenerativeLabelModel};
use dc_weak::lf::{LabelMatrix, LabelingFunction};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run E11 and E12.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e11_augment(scale), e11_label_model(scale), e12(scale)]
}

/// E11a: F1 with few labels, with and without augmentation.
fn e11_augment(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1100);
    let bench = ErBenchmark::generate(ErSuite::Dirty, scale.pick(50, 100), 3, &mut rng);
    let mut docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    docs.extend(dc_datagen::corpus::domain_corpus(
        scale.pick(300, 600),
        &mut rng,
    ));
    let emb = Embeddings::train(
        &docs,
        &SgnsConfig {
            dim: 16,
            epochs: scale.pick(4, 8),
            ..Default::default()
        },
        &mut rng,
    );
    let pairs = bench.labeled_pairs(3, &mut rng);
    let (train, test) = ErBenchmark::split_pairs(&pairs, 0.7, &mut rng);
    let ep: Vec<(usize, usize)> = test.iter().map(|p| (p.a, p.b)).collect();
    let el: Vec<bool> = test.iter().map(|p| p.label).collect();

    let mut t = ExperimentTable::new(
        "E11a",
        "Data augmentation: F1 with a small label budget (§6.2.2)",
        &["labels", "DeepER (no aug)", "DeepER (3x aug)"],
    );
    for &budget in scale.pick(&[30usize][..], &[20usize, 40, 80][..]) {
        let take = budget.min(train.len());
        let tp: Vec<(usize, usize)> = train[..take].iter().map(|p| (p.a, p.b)).collect();
        let tl: Vec<bool> = train[..take].iter().map(|p| p.label).collect();

        let mut r1 = StdRng::seed_from_u64(1101);
        let plain = DeepEr::train(
            emb.clone(),
            &bench.table,
            &tp,
            &tl,
            Composition::Average,
            DeepErConfig {
                epochs: scale.pick(20, 40),
                ..Default::default()
            },
            &mut r1,
        );
        let f_plain = evaluate_at(&plain.predict(&bench.table, &ep), &el, 0.5).f1;

        let mut r2 = StdRng::seed_from_u64(1102);
        let (aug_table, aug_pairs, aug_labels) =
            augment_er_pairs(&bench.table, &tp, &tl, 3, &mut r2);
        let augmented = DeepEr::train(
            emb.clone(),
            &aug_table,
            &aug_pairs,
            &aug_labels,
            Composition::Average,
            DeepErConfig {
                epochs: scale.pick(20, 40),
                ..Default::default()
            },
            &mut r2,
        );
        // Predict on the ORIGINAL table rows (test pairs index into it).
        let f_aug = evaluate_at(&augmented.predict(&aug_table, &ep), &el, 0.5).f1;

        t.push(vec![budget.to_string(), f3(f_plain), f3(f_aug)]);
    }
    t
}

/// E11b: label model vs majority vote on weak ER labels.
fn e11_label_model(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1110);
    let bench = ErBenchmark::generate(ErSuite::Dirty, scale.pick(60, 120), 3, &mut rng);
    let pairs = bench.labeled_pairs(2, &mut rng);
    let items: Vec<(Vec<dc_relational::Value>, Vec<dc_relational::Value>)> = pairs
        .iter()
        .map(|p| (bench.table.rows[p.a].clone(), bench.table.rows[p.b].clone()))
        .collect();
    let truth: Vec<bool> = pairs.iter().map(|p| p.label).collect();

    // Weak labeling functions in the §6.2.4 spirit: cheap heuristics,
    // each noisy, some abstaining.
    type Pair = (Vec<dc_relational::Value>, Vec<dc_relational::Value>);
    let lfs: Vec<LabelingFunction<Pair>> = vec![
        LabelingFunction::new("same_email", |(a, b): &Pair| {
            match (a[1].is_null(), b[1].is_null()) {
                (false, false) => Some(a[1] == b[1]),
                _ => None,
            }
        }),
        LabelingFunction::new("name_overlap", |(a, b): &Pair| {
            use dc_relational::tokenize::{jaccard, tokenize};
            let ja = jaccard(&tokenize(&a[0].canonical()), &tokenize(&b[0].canonical()));
            if ja > 0.45 {
                Some(true)
            } else if ja < 0.05 {
                Some(false)
            } else {
                None
            }
        }),
        LabelingFunction::new("same_city", |(a, b): &Pair| {
            match (a[3].is_null(), b[3].is_null()) {
                (false, false) if a[3] != b[3] => Some(false),
                _ => None,
            }
        }),
        LabelingFunction::new("phone_digits", |(a, b): &Pair| {
            let d = |v: &dc_relational::Value| -> String {
                v.canonical()
                    .chars()
                    .filter(|c| c.is_ascii_digit())
                    .collect()
            };
            let (da, db) = (d(&a[2]), d(&b[2]));
            if da.is_empty() || db.is_empty() {
                None
            } else {
                Some(da == db)
            }
        }),
    ];
    let matrix = LabelMatrix::build(&items, &lfs);
    let mv = majority_vote(&matrix);
    let model = GenerativeLabelModel::fit(&matrix, 10);
    let gm = model.predict(&matrix);

    let acc = |labels: &[dc_weak::labelmodel::ProbLabel]| {
        labels
            .iter()
            .zip(&truth)
            .filter(|(l, &t)| l.hard() == t)
            .count() as f64
            / truth.len() as f64
    };

    let mut t = ExperimentTable::new(
        "E11b",
        "Weak supervision: label model vs majority vote over 4 LFs (§6.2.4)",
        &["labeler", "accuracy vs gold"],
    );
    t.push(vec!["majority vote".into(), f3(acc(&mv))]);
    t.push(vec!["generative label model".into(), f3(acc(&gm))]);
    for (i, lf) in lfs.iter().enumerate() {
        t.push(vec![
            format!("  (learned accuracy of '{}')", lf.name),
            f3(model.accuracies[i]),
        ]);
    }
    t
}

/// E12: Dawid–Skene vs majority at rising worker noise.
fn e12(scale: Scale) -> ExperimentTable {
    let mut t = ExperimentTable::new(
        "E12",
        "Crowdsourcing: Dawid–Skene vs per-item majority (§6.2.6)",
        &["worker skills", "majority", "Dawid–Skene"],
    );
    let n = scale.pick(400, 1000);
    for skills in [
        vec![0.9, 0.9, 0.9],
        vec![0.9, 0.9, 0.55, 0.55, 0.55],
        vec![0.85, 0.85, 0.5, 0.5, 0.5, 0.5, 0.5],
    ] {
        let mut rng = StdRng::seed_from_u64(1200);
        let votes = skills.len().min(5);
        let (labels, truth) = simulate_crowd(n, &skills, votes, &mut rng);
        let majority: Vec<bool> = labels
            .answers
            .iter()
            .map(|v| v.iter().filter(|(_, x)| *x).count() * 2 >= v.len())
            .collect();
        let ds = dawid_skene(&labels, 15).hard_labels();
        let acc = |pred: &[bool]| {
            pred.iter().zip(&truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64
        };
        t.push(vec![
            format!("{skills:?}"),
            f3(acc(&majority)),
            f3(acc(&ds)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11b_label_model_at_least_matches_majority() {
        let t = e11_label_model(Scale::Quick);
        let mv: f64 = t.rows[0][1].parse().expect("num");
        let gm: f64 = t.rows[1][1].parse().expect("num");
        // With strong LFs majority can saturate at 1.0; the label model
        // must stay within noise of it.
        assert!(gm >= mv - 0.06, "label model {gm} vs majority {mv}");
        assert!(gm > 0.6, "label model accuracy {gm}");
    }

    #[test]
    fn e12_ds_beats_majority_with_weak_workers() {
        let t = e12(Scale::Quick);
        let mixed = &t.rows[1]; // two strong + three weak
        let maj: f64 = mixed[1].parse().expect("num");
        let ds: f64 = mixed[2].parse().expect("num");
        assert!(ds > maj, "DS {ds} vs majority {maj}");
    }

    #[test]
    fn e11a_runs_and_reports() {
        let t = e11_augment(Scale::Quick);
        assert_eq!(t.rows.len(), 1);
        let f: f64 = t.rows[0][2].parse().expect("num");
        assert!((0.0..=1.0).contains(&f));
    }
}
