//! E10 (§4): program synthesis — success rate and candidates explored,
//! plain enumeration vs neural guidance; semantic transformations.

use crate::{f3, ExperimentTable, Scale};
use dc_embed::{Embeddings, SgnsConfig};
use dc_synth::{synthesize, GuidanceModel, SemanticTransformer, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Run E10.
pub fn run(scale: Scale) -> Vec<ExperimentTable> {
    vec![e10(scale), e10_semantic(scale)]
}

fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

/// E10: syntactic synthesis benchmark suite.
fn e10(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1000);
    let model = GuidanceModel::train(scale.pick(200, 500), scale.pick(80, 200), &mut rng);
    let config = SynthConfig::default();

    let tasks: Vec<(&str, Vec<(String, String)>)> = vec![
        (
            "abbreviate name (§4 FlashFill example)",
            ex(&[("John Smith", "J Smith"), ("Jane Doe", "J Doe")]),
        ),
        (
            "first-initial dot last",
            ex(&[("john smith", "J. Smith"), ("jane doe", "J. Doe")]),
        ),
        (
            "phone → nnn-nnn-nnnn (§5.3 canonical form)",
            ex(&[
                ("(212) 555 0199", "212-555-0199"),
                ("(617) 555 1234", "617-555-1234"),
            ]),
        ),
        ("uppercase", ex(&[("hello world", "HELLO WORLD")])),
        ("last token", ex(&[("a b c", "c"), ("x y", "y")])),
        (
            "title-case both tokens",
            ex(&[("john smith", "John Smith"), ("jane doe", "Jane Doe")]),
        ),
    ];

    let mut t = ExperimentTable::new(
        "E10",
        "Program synthesis: candidates explored, plain vs neural-guided (§4)",
        &[
            "task",
            "plain found",
            "plain explored",
            "guided found",
            "guided explored",
        ],
    );
    for (name, task) in &tasks {
        let plain = synthesize(task, &config);
        let guided = model.synthesize_guided(task, &config);
        t.push(vec![
            name.to_string(),
            plain.program.is_some().to_string(),
            plain.explored.to_string(),
            guided.program.is_some().to_string(),
            guided.explored.to_string(),
        ]);
    }
    t
}

/// E10b: semantic transformation accuracy (France → Paris).
fn e10_semantic(scale: Scale) -> ExperimentTable {
    let mut rng = StdRng::seed_from_u64(1001);
    let corpus = dc_datagen::corpus::domain_corpus(scale.pick(1500, 4000), &mut rng);
    let emb = Embeddings::train(
        &corpus,
        &SgnsConfig {
            dim: 24,
            window: 4,
            epochs: scale.pick(6, 12),
            ..Default::default()
        },
        &mut rng,
    );
    let transformer = SemanticTransformer::learn(
        &emb,
        &[
            ("france".into(), "paris".into()),
            ("germany".into(), "berlin".into()),
        ],
    )
    .expect("examples in vocabulary");

    let held_out = [
        ("italy", "rome"),
        ("spain", "madrid"),
        ("japan", "tokyo"),
        ("egypt", "cairo"),
        ("uk", "london"),
    ];
    let mut top1 = 0;
    let mut top3 = 0;
    for (country, capital) in held_out {
        let ranked = transformer.apply_ranked(country, 3);
        if ranked.first().map(String::as_str) == Some(capital) {
            top1 += 1;
        }
        if ranked.iter().any(|o| o == capital) {
            top3 += 1;
        }
    }
    let n = held_out.len() as f64;
    let mut t = ExperimentTable::new(
        "E10b",
        "Semantic transformation: country → capital from 2 examples (§4)",
        &["metric", "value"],
    );
    t.push(vec!["held-out top-1 accuracy".into(), f3(top1 as f64 / n)]);
    t.push(vec!["held-out top-3 accuracy".into(), f3(top3 as f64 / n)]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_all_tasks_solved_and_guidance_helps_on_digits() {
        let t = e10(Scale::Quick);
        for row in &t.rows {
            assert_eq!(row[1], "true", "plain failed on {}", row[0]);
            assert_eq!(row[3], "true", "guided failed on {}", row[0]);
        }
        let phone = t.rows.iter().find(|r| r[0].contains("phone")).expect("row");
        let plain: usize = phone[2].parse().expect("num");
        let guided: usize = phone[4].parse().expect("num");
        assert!(guided < plain, "guided {guided} vs plain {plain}");
    }

    #[test]
    fn e10b_semantic_recovers_capitals() {
        let t = e10_semantic(Scale::Quick);
        let top3: f64 = t.rows[1][1].parse().expect("num");
        assert!(top3 >= 0.4, "top-3 accuracy {top3}");
    }
}
