//! Regenerate the experiment tables recorded in `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin report            # all, full scale
//! cargo run --release -p dc-bench --bin report -- --quick # fast smoke pass
//! cargo run --release -p dc-bench --bin report -- e3 e4   # selected ids
//! ```

use dc_bench::{run_all, ExperimentTable, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--quick") {
        Scale::Quick
    } else {
        Scale::Full
    };
    let wanted: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|a| a.to_lowercase())
        .collect();

    let selected: Vec<ExperimentTable> = run_selected(scale, &wanted);
    println!(
        "# AutoDC experiment report ({} scale)\n",
        match scale {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    );
    for table in &selected {
        println!("{}", table.to_markdown());
    }
    if dc_obs::enabled() {
        // With DC_OBS set, append the full observability report the
        // experiments accumulated: tape per-op timings, worker-pool
        // occupancy, LSH candidate counters, per-model loss series.
        println!("## Observability (dc-obs)\n");
        println!("```json\n{}\n```", dc_obs::report().to_json());
    }
    eprintln!("({} experiment tables)", selected.len());
}

fn run_selected(scale: Scale, wanted: &[String]) -> Vec<ExperimentTable> {
    if wanted.is_empty() {
        return run_all(scale);
    }
    // Run only the modules the requested ids need, then filter.
    let mut tables = Vec::new();
    let need = |prefixes: &[&str]| -> bool {
        wanted
            .iter()
            .any(|w| prefixes.iter().any(|p| w.starts_with(p)))
    };
    if need(&["e1", "e2"]) {
        tables.extend(dc_bench::representations::run(scale));
    }
    if need(&["e3", "e4", "e5", "e13"]) {
        tables.extend(dc_bench::entity_resolution::run(scale));
    }
    if need(&["e6", "e7"]) {
        tables.extend(dc_bench::discovery::run(scale));
    }
    if need(&["e8", "e9"]) {
        tables.extend(dc_bench::cleaning::run(scale));
    }
    if need(&["e10"]) {
        tables.extend(dc_bench::synthesis::run(scale));
    }
    if need(&["e11", "e12"]) {
        tables.extend(dc_bench::weak_supervision::run(scale));
    }
    if need(&["e14"]) {
        tables.extend(dc_bench::pipeline::run(scale));
    }
    if need(&["e15"]) {
        tables.extend(dc_bench::autoencoders::run(scale));
    }
    tables.retain(|t| {
        let id = t.id.to_lowercase();
        wanted
            .iter()
            .any(|w| id == *w || id.starts_with(w.as_str()))
    });
    tables
}
