//! Record the ISSUE 2 kernel-speedup snapshot into `BENCH_kernels.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_kernels
//! ```
//!
//! Times the seed's naive matmul (`kernel::reference`), the blocked
//! serial kernel, and the pool-forced kernel at {64, 256, 1024}, plus
//! the auto-dispatching entry point, and writes a JSON snapshot so
//! future PRs can track speedup regressions. Wall-clock medians over a
//! fixed repetition count; matrices are seeded, so reruns time the same
//! arithmetic.

use dc_tensor::{kernel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct SizeRecord {
    n: usize,
    reps: usize,
    reference_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
    auto_ms: f64,
    /// reference / serial — the ≥2× acceptance ratio.
    serial_speedup: f64,
    /// reference / parallel.
    parallel_speedup: f64,
}

#[derive(Serialize)]
struct Snapshot {
    /// What this file records (for humans reading the JSON).
    description: &'static str,
    /// Pool size the parallel rows ran with.
    threads: usize,
    sizes: Vec<SizeRecord>,
}

/// Median wall-clock milliseconds of `f` over `reps` runs.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let mut sizes = Vec::new();
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(n, n, 1.0, &mut rng);
        let b = Tensor::randn(n, n, 1.0, &mut rng);
        // Keep total runtime civil: the naive kernel at 1024 takes
        // ~fifth of a second per run.
        let reps = match n {
            64 => 200,
            256 => 30,
            _ => 7,
        };
        let reference_ms = time_ms(reps, || {
            black_box(kernel::reference::matmul(&a, &b));
        });
        let serial_ms = time_ms(reps, || {
            black_box(kernel::matmul_serial(&a, &b));
        });
        let parallel_ms = time_ms(reps, || {
            black_box(kernel::matmul_parallel(&a, &b));
        });
        let auto_ms = time_ms(reps, || {
            black_box(a.matmul(&b));
        });
        let rec = SizeRecord {
            n,
            reps,
            reference_ms,
            serial_ms,
            parallel_ms,
            auto_ms,
            serial_speedup: reference_ms / serial_ms,
            parallel_speedup: reference_ms / parallel_ms,
        };
        eprintln!(
            "n={:4}: reference {:.3}ms  serial {:.3}ms ({:.2}x)  parallel {:.3}ms ({:.2}x)  auto {:.3}ms",
            n, reference_ms, serial_ms, rec.serial_speedup, parallel_ms, rec.parallel_speedup, auto_ms
        );
        sizes.push(rec);
    }

    let snapshot = Snapshot {
        description: "1024/256/64 square matmul: seed naive kernel vs blocked serial vs pool-forced (median ms)",
        threads: kernel::pool().threads(),
        sizes,
    };
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    std::fs::write("BENCH_kernels.json", json + "\n").expect("write BENCH_kernels.json");
    eprintln!("wrote BENCH_kernels.json");
}
