//! Record the out-of-core data-store snapshot into `BENCH_data.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_data            # full run
//! cargo run --release -p dc-bench --bin bench_data -- --smoke # CI gate
//! ```
//!
//! Three claims from ISSUE 10, each asserted here:
//!
//! * **Streaming is near-free**: training epochs driven from a
//!   file-backed [`ChunkedStore`] under a residency budget cost within
//!   15% per step of the fully resident run — for both the MLP batch
//!   workload and the pair-by-pair DeepER-LSTM workload. Both runs use
//!   the same chunk layout, so their trajectories are bitwise equal
//!   (asserted every rep, smoke included).
//! * **Warm steps allocate nothing**: on the in-memory fast path the
//!   pooled batch buffers grow only on the first step of a run —
//!   `dc_data::batch_allocs` must not move after warmup.
//! * **Larger-than-budget runs reproduce the resident run**: a demo
//!   dataset with more chunks than `DC_DATA_CHUNKS` completes with a
//!   loss trajectory bitwise-equal to the fully resident run of the
//!   same chunk shuffle, while actually evicting.
//!
//! Plus a CSR micro-bench (one-hot-style batch × dense embedding
//! table, sparse vs dense matmul) and an embedded dc-obs report with
//! the `data.chunk.{hit,miss,evict}` counters and the `data.gather`
//! histogram.
//!
//! `--smoke` shrinks sizes, keeps every bitwise and allocation check,
//! skips wall-clock assertions and writes no file — that mode is wired
//! into `scripts/lint.sh` and CI.

use dc_data::{batch_allocs, ChunkedDataset, ChunkedStore, Csr, Dataset};
use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::lstm::LstmEncoder;
use dc_nn::mlp::Mlp;
use dc_nn::optim::{Adam, Optimizer};
use dc_nn::train::{
    run_dataset_epochs, run_epochs, Batch, MlpTrainer, StepStats, TrainCtx, TrainOpts, Trainer,
};
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct EpochWorkloadSnapshot {
    name: &'static str,
    description: &'static str,
    rows: usize,
    chunk_rows: usize,
    n_chunks: usize,
    budget: usize,
    epochs: usize,
    steps_per_run: usize,
    reps: usize,
    resident_us_per_step: f64,
    streamed_us_per_step: f64,
    overhead_pct: f64,
    bitwise_equal: bool,
    chunk_evicts: u64,
}

#[derive(Serialize)]
struct FastPathSnapshot {
    epochs: usize,
    steps: usize,
    initial_buffer_growths: u64,
    warm_batch_allocs_per_step: f64,
}

#[derive(Serialize)]
struct DemoSnapshot {
    rows: usize,
    n_chunks: usize,
    budget: usize,
    bitwise_equal: bool,
    chunk_evicts: u64,
}

#[derive(Serialize)]
struct CsrSnapshot {
    rows: usize,
    cols: usize,
    dense_cols: usize,
    nnz: usize,
    density: f64,
    sparse_us: f64,
    dense_us: f64,
    speedup: f64,
    matches_reference_bitwise: bool,
}

/// The `data.*` instruments as dc-obs reports them.
#[derive(Serialize)]
struct DataObs {
    chunk_hit: u64,
    chunk_miss: u64,
    chunk_evict: u64,
    batch_alloc: u64,
    gather_samples: u64,
}

impl DataObs {
    fn from_report(report: &dc_obs::ObsReport) -> DataObs {
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let gather_samples = report
            .timers
            .iter()
            .find(|t| t.name == "data.gather")
            .map_or(0, |t| t.hist.count);
        DataObs {
            chunk_hit: counter("data.chunk.hit"),
            chunk_miss: counter("data.chunk.miss"),
            chunk_evict: counter("data.chunk.evict"),
            batch_alloc: counter("data.batch.alloc"),
            gather_samples,
        }
    }
}

#[derive(Serialize)]
struct Snapshot {
    description: &'static str,
    smoke: bool,
    epoch_workloads: Vec<EpochWorkloadSnapshot>,
    fast_path: FastPathSnapshot,
    larger_than_budget_demo: DemoSnapshot,
    csr_onehot_matmul: CsrSnapshot,
    obs_data: DataObs,
}

/// Median of a sample set (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dc_bench_data_{tag}_{}.dcs", std::process::id()))
}

/// An epoch workload: builds a deterministic trainer from a seed and
/// runs it over whatever dataset it is handed, returning the loss
/// trajectory's f32 bits.
trait EpochWorkload {
    fn run(&self, ds: &mut dyn Dataset, rng: &mut StdRng) -> Vec<u32>;
    fn opts(&self) -> TrainOpts;
}

/// Supervised MLP epochs — the `Mlp::fit` shape at dataset scale.
struct MlpEpochs {
    opts: TrainOpts,
}

impl EpochWorkload for MlpEpochs {
    fn run(&self, ds: &mut dyn Dataset, rng: &mut StdRng) -> Vec<u32> {
        let mut model = Mlp::new(
            &[ds.x_cols(), 16, 1],
            Activation::Relu,
            Activation::Identity,
            rng,
        );
        let mut opt = Adam::new(0.01);
        let mut t = MlpTrainer {
            model: &mut model,
            loss: LossKind::Mse,
            opt: &mut opt,
        };
        run_dataset_epochs("bench.data.mlp", &mut t, ds, &self.opts, rng)
            .iter()
            .map(|e| e.loss.to_bits())
            .collect()
    }

    fn opts(&self) -> TrainOpts {
        self.opts
    }
}

/// The pair-by-pair DeepER-LSTM shape: the dataset serves 1×1 batches
/// holding a pair index (batch_size 1), and the trainer encodes the
/// indexed token-sequence pair with a shared LSTM — so the
/// out-of-core store drives exactly the access pattern of
/// `LstmPairTrainer`.
struct DeeperLstmEpochs {
    opts: TrainOpts,
    pairs: Vec<(Tensor, Tensor, f32)>,
}

impl DeeperLstmEpochs {
    fn new(n_pairs: usize, tokens: usize, epochs: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let pairs = (0..n_pairs)
            .map(|i| {
                (
                    Tensor::randn(tokens, 8, 1.0, &mut rng),
                    Tensor::randn(tokens, 8, 1.0, &mut rng),
                    (i % 2) as f32,
                )
            })
            .collect();
        DeeperLstmEpochs {
            opts: TrainOpts::default().with_epochs(epochs).with_batch_size(1),
            pairs,
        }
    }
}

struct LstmPairStep<'a> {
    encoder: LstmEncoder,
    classifier: Mlp,
    opt: Adam,
    pairs: &'a [(Tensor, Tensor, f32)],
    last_loss: f32,
}

impl Trainer for LstmPairStep<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let tape = ctx.tape;
        let (sa, sb, label) = &self.pairs[batch.x.data[0] as usize];
        let lvars = self.encoder.bind(tape);
        let cvars = self.classifier.bind(tape);
        let va = tape.var_slice(sa.rows, sa.cols, &sa.data);
        let vb = tape.var_slice(sb.rows, sb.cols, &sb.data);
        let ha = self.encoder.forward_tape(tape, va, &lvars);
        let hb = self.encoder.forward_tape(tape, vb, &lvars);
        let feat = tape.concat(&[tape.abs(tape.sub(ha, hb)), tape.mul(ha, hb)]);
        let logit = self.classifier.forward_tape(tape, feat, &cvars, None);
        let loss = tape.bce_with_logits(logit, Tensor::scalar(*label), Tensor::scalar(1.0));
        let lv = tape.item(loss);
        tape.backward(loss);
        self.opt.begin_step();
        self.encoder.apply_grads(&mut self.opt, 0, tape, &lvars);
        let base = self.encoder.slot_count();
        for (slot, (layer, cv)) in self.classifier.layers.iter_mut().zip(&cvars).enumerate() {
            tape.with_grad(cv.w, |gw| {
                tape.with_grad(cv.b, |gb| {
                    layer.apply_grads(&mut self.opt, base + slot, gw, gb)
                })
            });
        }
        self.last_loss = lv;
        StepStats { loss: lv, aux: 0.0 }
    }
}

impl EpochWorkload for DeeperLstmEpochs {
    fn run(&self, ds: &mut dyn Dataset, rng: &mut StdRng) -> Vec<u32> {
        let mut t = LstmPairStep {
            encoder: LstmEncoder::new(8, 8, rng),
            classifier: Mlp::new(&[16, 16, 1], Activation::Relu, Activation::Identity, rng),
            opt: Adam::new(0.01),
            pairs: &self.pairs,
            last_loss: 0.0,
        };
        run_dataset_epochs("bench.data.lstm", &mut t, ds, &self.opts, rng)
            .iter()
            .map(|e| e.loss.to_bits())
            .collect()
    }

    fn opts(&self) -> TrainOpts {
        self.opts
    }
}

/// Time `workload` over the resident and streamed variants of the same
/// chunk layout; assert bitwise-equal trajectories and (full mode)
/// the ≤15% streamed overhead bound.
#[allow(clippy::too_many_arguments)]
fn bench_epoch_workload(
    name: &'static str,
    description: &'static str,
    workload: &dyn EpochWorkload,
    x: &Tensor,
    y: Option<&Tensor>,
    chunk_rows: usize,
    budget: usize,
    reps: usize,
    smoke: bool,
) -> EpochWorkloadSnapshot {
    let make_resident = || match y {
        Some(y) => ChunkedDataset::with_targets(
            ChunkedStore::from_tensor(x, chunk_rows),
            ChunkedStore::from_tensor(y, chunk_rows),
        ),
        None => ChunkedDataset::new(ChunkedStore::from_tensor(x, chunk_rows)),
    };
    let px = temp_path(&format!("{name}_x"));
    let py = temp_path(&format!("{name}_y"));
    ChunkedStore::write(&px, x, chunk_rows).expect("write x store");
    if let Some(y) = y {
        ChunkedStore::write(&py, y, chunk_rows).expect("write y store");
    }
    let make_streamed = || {
        let sx = ChunkedStore::open_with_budget(&px, budget).expect("open x store");
        match y {
            Some(_) => ChunkedDataset::with_targets(
                sx,
                ChunkedStore::open_with_budget(&py, budget).expect("open y store"),
            ),
            None => ChunkedDataset::new(sx),
        }
    };

    let opts = workload.opts();
    let steps_per_run = opts.epochs * x.rows.div_ceil(opts.batch_size.max(1)).max(1);
    let mut resident_samples = Vec::with_capacity(reps);
    let mut streamed_samples = Vec::with_capacity(reps);
    let mut bitwise_equal = true;
    let mut chunk_evicts = 0u64;
    for rep in 0..reps {
        // Interleaved pairs: both variants see the same machine
        // conditions; identical seeds per rep → identical step counts
        // and (asserted) identical trajectories.
        let mut rng = StdRng::seed_from_u64(1000 + rep as u64);
        let mut ds = make_resident();
        let t0 = Instant::now();
        let want = workload.run(&mut ds, &mut rng);
        resident_samples.push(t0.elapsed().as_secs_f64() * 1e6 / steps_per_run as f64);

        let mut rng = StdRng::seed_from_u64(1000 + rep as u64);
        let mut ds = make_streamed();
        let t0 = Instant::now();
        let got = workload.run(&mut ds, &mut rng);
        streamed_samples.push(t0.elapsed().as_secs_f64() * 1e6 / steps_per_run as f64);
        chunk_evicts = ds.x_store().cache_stats().evicts;

        bitwise_equal &= want == got;
        assert!(
            bitwise_equal,
            "{name}: streamed trajectory diverged from resident run at rep {rep}"
        );
    }
    std::fs::remove_file(&px).ok();
    std::fs::remove_file(&py).ok();

    let mut overheads: Vec<f64> = resident_samples
        .iter()
        .zip(&streamed_samples)
        .map(|(r, s)| (s / r - 1.0) * 100.0)
        .collect();
    let overhead_pct = median(&mut overheads);
    let resident_us_per_step = median(&mut resident_samples);
    let streamed_us_per_step = median(&mut streamed_samples);
    let n_chunks = x.rows.div_ceil(chunk_rows);
    assert!(
        n_chunks > budget,
        "{name}: demo must exceed the residency budget ({n_chunks} chunks vs budget {budget})"
    );
    assert!(
        chunk_evicts > 0,
        "{name}: streamed run never evicted — not actually out of core"
    );
    eprintln!(
        "{name}: resident {resident_us_per_step:.1}us/step  streamed {streamed_us_per_step:.1}us/step  \
         ({overhead_pct:+.1}% overhead, {chunk_evicts} evicts)"
    );
    if !smoke {
        assert!(
            overhead_pct <= 15.0,
            "{name}: streamed overhead {overhead_pct:.1}% exceeds the 15% bound"
        );
    }

    EpochWorkloadSnapshot {
        name,
        description,
        rows: x.rows,
        chunk_rows,
        n_chunks,
        budget,
        epochs: opts.epochs,
        steps_per_run,
        reps,
        resident_us_per_step,
        streamed_us_per_step,
        overhead_pct,
        bitwise_equal,
        chunk_evicts,
    }
}

/// The in-memory fast path must not allocate batch buffers after the
/// first step of a run: `run_epochs` owns one pooled batch, so buffer
/// growth is bounded by the initial x+y reservation.
fn bench_fast_path(smoke: bool) -> FastPathSnapshot {
    let mut rng = StdRng::seed_from_u64(5);
    let rows = if smoke { 64 } else { 512 };
    let epochs = if smoke { 3 } else { 10 };
    let x = Tensor::randn(rows, 12, 1.0, &mut rng);
    let y = Tensor::from_vec(rows, 1, (0..rows).map(|i| (i % 2) as f32).collect());
    let mut model = Mlp::new(
        &[12, 16, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let mut opt = Adam::new(0.01);
    let mut t = MlpTrainer {
        model: &mut model,
        loss: LossKind::Mse,
        opt: &mut opt,
    };
    let opts = TrainOpts::default().with_epochs(epochs).with_batch_size(16);
    let before = batch_allocs();
    run_epochs("bench.data.fastpath", &mut t, &x, Some(&y), &opts, &mut rng);
    let growths = batch_allocs() - before;
    let steps = epochs * rows.div_ceil(16);
    // One growth for the x buffer, one for y, both on the first step;
    // every later step (including ragged tails) reuses capacity.
    assert!(
        growths <= 2,
        "fast path grew batch buffers {growths} times over {steps} steps (expected <=2)"
    );
    let warm_per_step = growths.saturating_sub(2) as f64 / steps as f64;
    eprintln!(
        "fast_path: {growths} initial buffer growths, {warm_per_step:.4} warm allocs/step over {steps} steps"
    );
    FastPathSnapshot {
        epochs,
        steps,
        initial_buffer_growths: growths,
        warm_batch_allocs_per_step: warm_per_step,
    }
}

/// The acceptance-criteria demo, run at a fixed small size even in
/// full mode: dataset over budget, trajectories bitwise-equal.
fn larger_than_budget_demo() -> DemoSnapshot {
    let mut rng = StdRng::seed_from_u64(9);
    let rows = 96;
    let chunk_rows = 8; // 12 chunks
    let budget = 3;
    let x = Tensor::randn(rows, 6, 1.0, &mut rng);
    let y = Tensor::from_vec(rows, 1, (0..rows).map(|i| (i % 2) as f32).collect());
    let opts = TrainOpts::default().with_epochs(3).with_batch_size(8);
    let workload = MlpEpochs { opts };

    let mut rng_a = StdRng::seed_from_u64(33);
    let mut resident = ChunkedDataset::with_targets(
        ChunkedStore::from_tensor(&x, chunk_rows),
        ChunkedStore::from_tensor(&y, chunk_rows),
    );
    let want = workload.run(&mut resident, &mut rng_a);

    let (px, py) = (temp_path("demo_x"), temp_path("demo_y"));
    ChunkedStore::write(&px, &x, chunk_rows).expect("write x");
    ChunkedStore::write(&py, &y, chunk_rows).expect("write y");
    let mut rng_b = StdRng::seed_from_u64(33);
    let mut streamed = ChunkedDataset::with_targets(
        ChunkedStore::open_with_budget(&px, budget).expect("open x"),
        ChunkedStore::open_with_budget(&py, budget).expect("open y"),
    );
    let got = workload.run(&mut streamed, &mut rng_b);
    let stats = streamed.x_store().cache_stats();
    std::fs::remove_file(&px).ok();
    std::fs::remove_file(&py).ok();

    assert_eq!(
        want, got,
        "demo: streamed trajectory diverged from resident"
    );
    assert!(stats.evicts > 0, "demo never evicted: {stats:?}");
    eprintln!(
        "demo: {} chunks under budget {budget}, {} evicts, trajectories bitwise-equal",
        rows / chunk_rows,
        stats.evicts
    );
    DemoSnapshot {
        rows,
        n_chunks: rows / chunk_rows,
        budget,
        bitwise_equal: true,
        chunk_evicts: stats.evicts,
    }
}

/// One-hot-style batch (1 nonzero per row) times a dense embedding
/// table: the CSR family vs materialising the zeros.
fn bench_csr(smoke: bool, reps: usize) -> CsrSnapshot {
    let (rows, cols, dense_cols) = if smoke {
        (256, 512, 32)
    } else {
        (2048, 4096, 64)
    };
    let mut dense = Tensor::zeros(rows, cols);
    let mut state = 0x5eed_u64;
    for r in 0..rows {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        dense.row_slice_mut(r)[(state >> 33) as usize % cols] = 1.0;
    }
    let table = {
        let mut rng = StdRng::seed_from_u64(21);
        Tensor::randn(cols, dense_cols, 1.0, &mut rng)
    };
    let sparse = Csr::from_dense(&dense);

    // Reference with the same skip-zero accumulation order.
    let mut want = Tensor::zeros(rows, dense_cols);
    for r in 0..rows {
        for (k, &v) in dense.row_slice(r).iter().enumerate() {
            if v != 0.0 {
                let brow = table.row_slice(k);
                for (o, &bv) in want.row_slice_mut(r).iter_mut().zip(brow) {
                    *o += v * bv;
                }
            }
        }
    }
    let got = sparse.matmul_dense(&table);
    let matches = got
        .data
        .iter()
        .zip(&want.data)
        .all(|(g, w)| g.to_bits() == w.to_bits());
    assert!(matches, "csr: sparse product diverged from reference");

    let mut sparse_samples = Vec::with_capacity(reps);
    let mut dense_samples = Vec::with_capacity(reps);
    let mut out = Tensor::zeros(0, 0);
    for _ in 0..reps {
        let t0 = Instant::now();
        sparse.matmul_dense_into(&table, &mut out);
        sparse_samples.push(t0.elapsed().as_secs_f64() * 1e6);
        let t0 = Instant::now();
        let d = dense.matmul(&table);
        dense_samples.push(t0.elapsed().as_secs_f64() * 1e6);
        std::hint::black_box(d);
    }
    let sparse_us = median(&mut sparse_samples);
    let dense_us = median(&mut dense_samples);
    let speedup = dense_us / sparse_us;
    eprintln!(
        "csr_onehot: sparse {sparse_us:.0}us  dense {dense_us:.0}us  ({speedup:.1}x, density {:.4})",
        sparse.density()
    );
    CsrSnapshot {
        rows,
        cols,
        dense_cols,
        nnz: sparse.nnz(),
        density: sparse.density(),
        sparse_us,
        dense_us,
        speedup,
        matches_reference_bitwise: matches,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let reps = if smoke { 3 } else { 9 };

    dc_tensor::set_pool_enabled(true);
    dc_tensor::set_fuse_enabled(true);

    let (mlp_rows, lstm_pairs, epochs) = if smoke { (128, 24, 2) } else { (1024, 96, 4) };
    let mut rng = StdRng::seed_from_u64(3);
    let mlp_x = Tensor::randn(mlp_rows, 12, 1.0, &mut rng);
    let mlp_y = Tensor::from_vec(mlp_rows, 1, (0..mlp_rows).map(|i| (i % 2) as f32).collect());
    let mlp = MlpEpochs {
        opts: TrainOpts::default().with_epochs(epochs).with_batch_size(16),
    };
    let lstm = DeeperLstmEpochs::new(lstm_pairs, 10, epochs, 17);
    let lstm_index = Tensor::from_vec(lstm_pairs, 1, (0..lstm_pairs).map(|i| i as f32).collect());

    let epoch_workloads = vec![
        bench_epoch_workload(
            "mlp_epochs",
            "supervised MLP epochs over a chunked feature store, batch 16",
            &mlp,
            &mlp_x,
            Some(&mlp_y),
            mlp_rows / 8,
            3,
            reps,
            smoke,
        ),
        bench_epoch_workload(
            "deeper_lstm_epochs",
            "pair-by-pair DeepER-LSTM epochs driven by a chunked pair-index store, batch 1",
            &lstm,
            &lstm_index,
            None,
            lstm_pairs.div_ceil(8),
            3,
            reps,
            smoke,
        ),
    ];

    let fast_path = bench_fast_path(smoke);
    let demo = larger_than_budget_demo();
    let csr = bench_csr(smoke, reps);

    // Short instrumented streamed pass so the snapshot embeds the
    // data.* counters and gather histogram as dc-obs reports them
    // (timings above run with the obs gate off).
    dc_obs::reset();
    dc_obs::set_enabled(true);
    {
        let mut rng = StdRng::seed_from_u64(71);
        let x = Tensor::randn(64, 6, 1.0, &mut rng);
        let path = temp_path("obs");
        ChunkedStore::write(&path, &x, 8).expect("write obs store");
        let mut ds =
            ChunkedDataset::new(ChunkedStore::open_with_budget(&path, 2).expect("open obs store"));
        let mut order = Vec::new();
        let mut batch = Tensor::zeros(0, 6);
        for _ in 0..3 {
            ds.shuffle_epoch(&mut order, &mut rng);
            // Batch 5 is deliberately misaligned with the 8-row chunks
            // so runs span batch boundaries and the hit counter moves.
            for chunk in order.chunks(5) {
                ds.fill_batch(chunk, &mut batch, None);
            }
        }
        std::fs::remove_file(&path).ok();
    }
    dc_obs::set_enabled(false);
    let obs_data = DataObs::from_report(&dc_obs::report());
    assert!(obs_data.chunk_hit > 0, "obs pass recorded no chunk hits");
    assert!(obs_data.chunk_miss > 0, "obs pass recorded no chunk misses");
    assert!(obs_data.chunk_evict > 0, "obs pass recorded no evictions");
    assert!(obs_data.gather_samples > 0, "obs pass recorded no gathers");

    let snapshot = Snapshot {
        description: "out-of-core chunked store: streamed-vs-resident epoch cost (bitwise-equal \
                      trajectories enforced), zero warm batch allocations on the fast path, \
                      larger-than-budget demo, and the sparse CSR one-hot matmul",
        smoke,
        epoch_workloads,
        fast_path,
        larger_than_budget_demo: demo,
        csr_onehot_matmul: csr,
        obs_data,
    };
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    if smoke {
        eprintln!("smoke mode: skipping BENCH_data.json write");
    } else {
        std::fs::write("BENCH_data.json", json + "\n").expect("write BENCH_data.json");
        eprintln!("wrote BENCH_data.json");
    }
}
