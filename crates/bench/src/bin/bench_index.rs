//! Record the ISSUE 3/8 retrieval-speedup snapshot into
//! `BENCH_index.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_index            # full
//! cargo run --release -p dc-bench --bin bench_index -- --smoke # gate
//! ```
//!
//! `--smoke` shrinks every size so the equality assertions (funnel vs
//! exact, indexed blocker vs seed bucketer) still run in CI without the
//! wall-clock cost, and skips the JSON write.
//!
//! Three comparisons, seeded so reruns time the same work:
//!
//! * **LSH blocking** at n ∈ {1k, 10k}: the seed bucketer
//!   (`dc_er::blocking::reference` — `Vec<bool>` signatures through a
//!   `HashMap` per band, every pair into a `HashSet`) vs the
//!   `dc_index`-backed `LshBlocker`, built from identical hyperplanes.
//!   Pair-set equality is asserted at n=1k before timing.
//! * **Cosine top-k** (k=10) at 10k items: the seed `knn::nearest`
//!   shape (a `String` allocation per item, scalar `cosine` per item, a
//!   full sort for a 10-item answer) vs a prebuilt
//!   `dc_index::CosineIndex` query (one blocked mat-vec + bounded
//!   heap). The one-off index build is recorded separately.
//! * **Quantized retrieval funnel** (ISSUE 8, k=10) at 10k and 100k
//!   items: the exact f32 scan vs the three-tier funnel (1-bit Hamming
//!   prefilter → int8 scoring → exact rescore) on the same
//!   `CosineIndex`. Bitwise hit equality is asserted for every query
//!   before timing; per-tier resident bytes are recorded alongside the
//!   ≥2× acceptance speedup at 100k.

use dc_er::blocking::{reference, LshBlocker};
use dc_index::{CosineIndex, FunnelConfig};
use dc_tensor::tensor::cosine;
use dc_tensor::{kernel, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

#[derive(Serialize)]
struct BlockingRecord {
    n: usize,
    dim: usize,
    bands: usize,
    rows_per_band: usize,
    reps: usize,
    reference_ms: f64,
    indexed_ms: f64,
    /// reference / indexed — the ≥5× acceptance ratio at n=10k.
    speedup: f64,
    candidate_pairs: usize,
}

#[derive(Serialize)]
struct TopkRecord {
    n: usize,
    dim: usize,
    k: usize,
    queries: usize,
    reps: usize,
    brute_ms: f64,
    indexed_query_ms: f64,
    /// One-off cost of normalizing the item matrix.
    index_build_ms: f64,
    /// brute / indexed query — the ≥3× acceptance ratio.
    speedup: f64,
}

#[derive(Serialize)]
struct FunnelRecord {
    n: usize,
    dim: usize,
    k: usize,
    queries: usize,
    reps: usize,
    prefilter_bits: usize,
    hamming_keep: usize,
    rescore_k: usize,
    exact_ms: f64,
    funnel_ms: f64,
    /// One-off cost of building signatures + i8 codes.
    funnel_build_ms: f64,
    /// exact / funnel — the ≥2× acceptance ratio at n=100k.
    speedup: f64,
    /// Resident bytes per funnel tier (1-bit signatures, i8 codes +
    /// scales, f32 rows). quant ≈ exact/4 is the memory acceptance.
    sig_bytes: usize,
    quant_bytes: usize,
    exact_bytes: usize,
}

#[derive(Serialize)]
struct Snapshot {
    description: &'static str,
    threads: usize,
    blocking: Vec<BlockingRecord>,
    topk: TopkRecord,
    funnel: Vec<FunnelRecord>,
    /// The full dc-obs report (tape per-op timings, pool occupancy,
    /// LSH candidate counters) when `DC_OBS` is set; `null` otherwise.
    obs: Option<serde::Value>,
}

/// Minimum wall-clock milliseconds of `f` over `reps` runs: on a
/// shared box the fastest rep is the least noise-polluted estimate of
/// the true cost, and both sides of every comparison get the same
/// treatment.
fn time_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn random_vectors(n: usize, dim: usize, rng: &mut StdRng) -> Vec<Vec<f32>> {
    (0..n)
        .map(|_| Tensor::randn(1, dim, 1.0, rng).data)
        .collect()
}

/// The seed `knn::nearest` shape, verbatim: label allocation per item,
/// scalar cosine, full descending sort, truncate to k.
fn brute_topk(query: &[f32], labels: &[String], items: &Tensor, k: usize) -> Vec<(String, f32)> {
    let mut scored: Vec<(String, f32)> = (0..items.rows)
        .map(|i| (labels[i].to_string(), cosine(query, items.row_slice(i))))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    scored.truncate(k);
    scored
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // dim=64 is the low end of real tuple-embedding widths (DeepER
    // composes d=300 GloVe vectors); bands × rows follow the repo's E4
    // blocking experiments.
    let (bands, rows_per_band, dim) = (8usize, 16usize, 64usize);
    let blocking_ns: &[usize] = if smoke { &[300] } else { &[1000, 10_000] };
    let mut blocking = Vec::new();
    for &n in blocking_ns {
        let mut rng = StdRng::seed_from_u64(42);
        let vectors = random_vectors(n, dim, &mut rng);
        let planes: Vec<Vec<f32>> = (0..bands * rows_per_band)
            .map(|_| Tensor::randn(1, dim, 1.0, &mut rng).data)
            .collect();
        let seed_blocker = reference::LshBlocker::from_planes(planes.clone(), bands, rows_per_band);
        let new_blocker = LshBlocker::from_planes(planes, bands, rows_per_band);
        if n <= 1000 {
            assert_eq!(
                new_blocker.candidates(&vectors),
                seed_blocker.candidates(&vectors),
                "indexed blocker must reproduce the seed pair set"
            );
        }
        let pairs = new_blocker.candidates(&vectors).len();
        let reps = if smoke {
            3
        } else if n <= 1000 {
            9
        } else {
            5
        };
        let reference_ms = time_ms(reps, || {
            black_box(seed_blocker.candidates(&vectors));
        });
        let indexed_ms = time_ms(reps, || {
            black_box(new_blocker.candidates(&vectors));
        });
        let rec = BlockingRecord {
            n,
            dim,
            bands,
            rows_per_band,
            reps,
            reference_ms,
            indexed_ms,
            speedup: reference_ms / indexed_ms,
            candidate_pairs: pairs,
        };
        eprintln!(
            "blocking n={n:5}: reference {reference_ms:.2}ms  indexed {indexed_ms:.2}ms ({:.2}x, {pairs} pairs)",
            rec.speedup
        );
        blocking.push(rec);
    }

    let (n, dim, k, queries) = if smoke {
        (2000usize, 64usize, 10usize, 4usize)
    } else {
        (10_000usize, 64usize, 10usize, 16usize)
    };
    let mut rng = StdRng::seed_from_u64(7);
    let items = Tensor::randn(n, dim, 1.0, &mut rng);
    let labels: Vec<String> = (0..n).map(|i| format!("item-{i}")).collect();
    let query_vecs: Vec<Vec<f32>> = (0..queries)
        .map(|_| Tensor::randn(1, dim, 1.0, &mut rng).data)
        .collect();

    let t0 = Instant::now();
    let index = CosineIndex::build(&items);
    let index_build_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Same winners before timing (brute keeps NaN-unsafe seed sort; the
    // data is finite, so orders agree up to cosine rounding — compare
    // the index sets).
    for q in &query_vecs {
        let brute: Vec<String> = brute_topk(q, &labels, &items, k)
            .into_iter()
            .map(|(l, _)| l)
            .collect();
        let indexed: Vec<&str> = index
            .nearest(q, k)
            .iter()
            .map(|h| labels[h.index].as_str())
            .collect();
        let same = brute
            .iter()
            .filter(|l| indexed.contains(&l.as_str()))
            .count();
        assert!(
            same + 1 >= k,
            "top-{k} sets diverged beyond rounding: {brute:?} vs {indexed:?}"
        );
    }

    let reps = if smoke { 3 } else { 9 };
    let brute_ms = time_ms(reps, || {
        for q in &query_vecs {
            black_box(brute_topk(q, &labels, &items, k));
        }
    });
    let indexed_query_ms = time_ms(reps, || {
        for q in &query_vecs {
            black_box(index.nearest(q, k));
        }
    });
    let topk = TopkRecord {
        n,
        dim,
        k,
        queries,
        reps,
        brute_ms,
        indexed_query_ms,
        index_build_ms,
        speedup: brute_ms / indexed_query_ms,
    };
    eprintln!(
        "topk n={n} k={k}: brute {brute_ms:.2}ms  indexed {indexed_query_ms:.2}ms ({:.2}x; build {index_build_ms:.2}ms)",
        topk.speedup
    );

    // Quantized funnel vs exact scan on the same CosineIndex. Hit
    // equality is bitwise (index AND score): the funnel's tier-3
    // rescore shares the exact scan's dot kernel and top-k order, so
    // any divergence is a recall bug, not rounding.
    let funnel_ns: &[usize] = if smoke { &[2000] } else { &[10_000, 100_000] };
    let (k, queries) = (10usize, if smoke { 4usize } else { 16 });
    let mut funnel_records = Vec::new();
    for &n in funnel_ns {
        let mut rng = StdRng::seed_from_u64(99);
        let items = Tensor::randn(n, dim, 1.0, &mut rng);
        let query_vecs: Vec<Vec<f32>> = (0..queries)
            .map(|_| Tensor::randn(1, dim, 1.0, &mut rng).data)
            .collect();
        // Default budgets; in smoke the set is small enough that the
        // defaults would fall through, so tighten them to keep every
        // tier engaged in the CI gate.
        let cfg = if smoke {
            FunnelConfig::default()
                .with_hamming_keep(n / 4)
                .with_rescore_k(64)
        } else {
            FunnelConfig::default()
        };
        let exact = CosineIndex::build(&items);
        let t0 = Instant::now();
        let funnel = CosineIndex::build_funnel(&items, cfg);
        let funnel_build_ms = t0.elapsed().as_secs_f64() * 1e3;
        for (qi, q) in query_vecs.iter().enumerate() {
            let want = exact.nearest_exact(q, k);
            let got = funnel.nearest(q, k);
            assert_eq!(want.len(), got.len(), "query {qi} at n={n}");
            for (w, g) in want.iter().zip(&got) {
                assert!(
                    w.index == g.index && w.score.to_bits() == g.score.to_bits(),
                    "query {qi} at n={n}: funnel diverged from exact scan"
                );
            }
        }
        let reps = if smoke { 3 } else { 9 };
        let exact_ms = time_ms(reps, || {
            for q in &query_vecs {
                black_box(exact.nearest_exact(q, k));
            }
        });
        let funnel_ms = time_ms(reps, || {
            for q in &query_vecs {
                black_box(funnel.nearest(q, k));
            }
        });
        let bytes = funnel.resident_bytes();
        let rec = FunnelRecord {
            n,
            dim,
            k,
            queries,
            reps,
            prefilter_bits: cfg.prefilter_bits,
            hamming_keep: cfg.hamming_keep,
            rescore_k: cfg.rescore_k,
            exact_ms,
            funnel_ms,
            funnel_build_ms,
            speedup: exact_ms / funnel_ms,
            sig_bytes: bytes.sig,
            quant_bytes: bytes.quant,
            exact_bytes: bytes.exact,
        };
        eprintln!(
            "funnel n={n:6} k={k}: exact {exact_ms:.2}ms  funnel {funnel_ms:.2}ms ({:.2}x; quant {:.1}MB vs f32 {:.1}MB)",
            rec.speedup,
            bytes.quant as f64 / 1e6,
            bytes.exact as f64 / 1e6,
        );
        funnel_records.push(rec);
    }

    // With DC_OBS set, run a short MLP fit so the report carries tape
    // fwd/bwd timings next to the pool and index counters, then embed
    // the report in the snapshot and echo it to stdout.
    if dc_obs::enabled() {
        use dc_nn::{Activation, Adam, LossKind, Mlp};
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::randn(128, 16, 1.0, &mut rng);
        let y = Tensor::from_vec(128, 1, (0..128).map(|i| (i % 2) as f32).collect());
        let mut mlp = Mlp::new(
            &[16, 32, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        let mut opt = Adam::new(0.01);
        mlp.fit(&x, &y, LossKind::bce(), &mut opt, 5, 32, &mut rng);
    }
    let obs = dc_obs::enabled().then(|| {
        let report = dc_obs::report().to_json();
        println!("{report}");
        serde_json::from_str::<serde::Value>(&report).expect("dc-obs report is valid JSON")
    });

    let snapshot = Snapshot {
        description: "LSH blocking candidates (seed bucketer vs dc-index) at 1k/10k, cosine top-10 at 10k items (seed scan vs CosineIndex), and quantized funnel vs exact scan at 10k/100k; min ms over reps",
        threads: kernel::pool().threads(),
        blocking,
        topk,
        funnel: funnel_records,
        obs,
    };
    if smoke {
        eprintln!("smoke mode: all equality assertions passed, skipping BENCH_index.json");
        return;
    }
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    std::fs::write("BENCH_index.json", json + "\n").expect("write BENCH_index.json");
    eprintln!("wrote BENCH_index.json");
}
