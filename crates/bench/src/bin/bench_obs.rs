//! Record the dc-obs gate-overhead snapshot into `BENCH_obs.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_obs
//! ```
//!
//! Measures the per-site cost of the three instrumentation primitives
//! with the gate off (the ISSUE 4 zero-cost budget: ≤2ns/site — one
//! relaxed atomic load + branch) and the enabled counter path for
//! contrast. Each loop runs enough iterations that `Instant` overhead
//! amortises away.

use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

static COUNTER: dc_obs::Counter = dc_obs::Counter::new("bench.counter");
static HIST: dc_obs::Hist = dc_obs::Hist::new("bench.hist");

#[derive(Serialize)]
struct Snapshot {
    description: &'static str,
    iters: u64,
    disabled_counter_ns: f64,
    disabled_timer_ns: f64,
    disabled_span_ns: f64,
    enabled_counter_ns: f64,
}

/// Median per-iteration nanoseconds of `f` over 7 timed runs.
fn per_iter_ns(iters: u64, mut f: impl FnMut(u64)) -> f64 {
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let t0 = Instant::now();
            f(iters);
            t0.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let iters = 10_000_000u64;
    // Force gate initialisation out of the timed region.
    dc_obs::set_enabled(false);

    let disabled_counter_ns = per_iter_ns(iters, |n| {
        for _ in 0..n {
            COUNTER.add(black_box(1));
        }
    });
    let disabled_timer_ns = per_iter_ns(iters, |n| {
        for _ in 0..n {
            black_box(HIST.start());
        }
    });
    let disabled_span_ns = per_iter_ns(iters, |n| {
        for _ in 0..n {
            black_box(dc_obs::span("bench.span"));
        }
    });

    dc_obs::set_enabled(true);
    let enabled_counter_ns = per_iter_ns(iters, |n| {
        for _ in 0..n {
            COUNTER.add(black_box(1));
        }
    });
    dc_obs::set_enabled(false);

    let snapshot = Snapshot {
        description:
            "dc-obs per-site overhead: disabled counter/timer/span (gate load + branch) vs enabled counter (atomic add); median ns over 7 runs",
        iters,
        disabled_counter_ns,
        disabled_timer_ns,
        disabled_span_ns,
        enabled_counter_ns,
    };
    eprintln!(
        "disabled: counter {disabled_counter_ns:.3}ns  timer {disabled_timer_ns:.3}ns  span {disabled_span_ns:.3}ns; enabled counter {enabled_counter_ns:.3}ns"
    );
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    std::fs::write("BENCH_obs.json", json + "\n").expect("write BENCH_obs.json");
    eprintln!("wrote BENCH_obs.json");
}
