//! Record the ISSUE 9 online-serving snapshot into `BENCH_serve.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_serve            # full
//! cargo run --release -p dc-bench --bin bench_serve -- --smoke # gate
//! ```
//!
//! Boots a real `dc-serve` instance (free port, demo tenant) and drives
//! it with an **open-loop** load generator: every client thread sends
//! on a fixed arrival schedule derived from the offered rate, whether
//! or not earlier responses have come back, so queueing delay shows up
//! in the latency numbers instead of silently throttling the offered
//! load. The mix is 70% match (micro-batched GEMM), 15% encode, 10%
//! BM25 search, 5% health.
//!
//! Latency percentiles come from the server's own dc-obs
//! `serve.request.*` histograms — the numbers a production deployment
//! would scrape — and the batch counters report how much coalescing the
//! offered concurrency actually produced. `--smoke` shrinks the run,
//! asserts every response is well-formed, and skips the JSON write.

use dc_serve::testutil::{demo_tenant_spec, http_request};
use dc_serve::{Registry, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Serialize)]
struct EndpointRecord {
    endpoint: String,
    count: u64,
    mean_ns: u64,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
}

#[derive(Serialize)]
struct RateRecord {
    offered_qps: f64,
    duration_s: f64,
    clients: usize,
    sent: u64,
    ok: u64,
    errors: u64,
    /// Completed-OK responses per second of wall clock — the sustained
    /// throughput under this offered load.
    achieved_qps: f64,
    /// serve.batch.requests / serve.batch.flushes during this rate
    /// step: >1 means coalescing happened.
    mean_batch: f64,
    endpoints: Vec<EndpointRecord>,
}

#[derive(Serialize)]
struct Snapshot {
    description: &'static str,
    threads: usize,
    workers: usize,
    batch_window_us: u64,
    batch_max: usize,
    rates: Vec<RateRecord>,
}

/// One open-loop client: send `per_client` requests at fixed spacing,
/// draw the endpoint mix from a seeded RNG, count outcomes.
fn client(
    addr: SocketAddr,
    per_client: u64,
    spacing: Duration,
    seed: u64,
    ok: &AtomicU64,
    errors: &AtomicU64,
    strict: bool,
) {
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    for i in 0..per_client {
        // Open loop: wait for the scheduled send time, not the
        // previous response.
        let due = spacing * i as u32;
        if let Some(sleep) = due.checked_sub(start.elapsed()) {
            std::thread::sleep(sleep);
        }
        let roll: f64 = rng.gen();
        let (method, path, body) = if roll < 0.70 {
            let (a, b) = (rng.gen_range(0..30), rng.gen_range(0..30));
            (
                "POST",
                "/v1/t/demo/match",
                format!("{{\"pairs\":[[{a},{b}]]}}"),
            )
        } else if roll < 0.85 {
            let r = rng.gen_range(0..30);
            ("POST", "/v1/t/demo/encode", format!("{{\"rows\":[{r}]}}"))
        } else if roll < 0.95 {
            (
                "POST",
                "/v1/t/demo/search",
                "{\"query\":\"alice report\",\"k\":3}".to_string(),
            )
        } else {
            ("GET", "/v1/health", String::new())
        };
        let (status, resp) = http_request(addr, method, path, &body);
        if status == 200 {
            ok.fetch_add(1, Ordering::Relaxed);
        } else {
            errors.fetch_add(1, Ordering::Relaxed);
            if strict {
                panic!("{method} {path} -> {status}: {resp}");
            }
        }
    }
}

fn counter(report: &dc_obs::ObsReport, name: &str) -> u64 {
    report
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .unwrap_or(0)
}

fn endpoint_records(report: &dc_obs::ObsReport) -> Vec<EndpointRecord> {
    report
        .timers
        .iter()
        .filter(|t| t.name.starts_with("serve.request."))
        .map(|t| EndpointRecord {
            endpoint: t.name.trim_start_matches("serve.request.").to_string(),
            count: t.hist.count,
            mean_ns: t.hist.sum_ns / t.hist.count.max(1),
            p50_ns: t.hist.quantile_ns(0.50),
            p99_ns: t.hist.quantile_ns(0.99),
            max_ns: t.hist.max_ns,
        })
        .collect()
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    dc_obs::set_enabled(true);

    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(8)
        .with_batch_window_us(300)
        .with_batch_max(32);
    eprintln!("provisioning demo tenant...");
    let registry = Arc::new(Registry::new(cfg.max_tenants));
    registry
        .insert(
            demo_tenant_spec("demo", 7)
                .build(&cfg)
                .expect("provision demo tenant"),
        )
        .expect("register demo tenant");
    let server = dc_serve::start(cfg.clone(), registry).expect("start server");
    let addr = server.addr();
    eprintln!("serving on {addr}");

    let (rates, duration_s, clients): (&[f64], f64, usize) = if smoke {
        (&[200.0], 0.5, 4)
    } else {
        (&[200.0, 1000.0, 4000.0], 3.0, 16)
    };

    let mut rate_records = Vec::new();
    for &offered in rates {
        // Drain counters between steps by diffing before/after.
        let before = dc_obs::report();
        let per_client = ((offered * duration_s) / clients as f64).ceil() as u64;
        let spacing = Duration::from_secs_f64(clients as f64 / offered);
        let ok = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        let t0 = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let (ok, errors) = (&ok, &errors);
                scope.spawn(move || {
                    client(
                        addr,
                        per_client,
                        spacing,
                        0x5eed ^ (c as u64) << 8 ^ offered.to_bits(),
                        ok,
                        errors,
                        smoke,
                    )
                });
            }
        });
        let wall = t0.elapsed().as_secs_f64();
        let after = dc_obs::report();
        let ok = ok.load(Ordering::Relaxed);
        let errors = errors.load(Ordering::Relaxed);
        let flushes =
            counter(&after, "serve.batch.flushes") - counter(&before, "serve.batch.flushes");
        let batched =
            counter(&after, "serve.batch.requests") - counter(&before, "serve.batch.requests");
        let rec = RateRecord {
            offered_qps: offered,
            duration_s: wall,
            clients,
            sent: per_client * clients as u64,
            ok,
            errors,
            achieved_qps: ok as f64 / wall,
            mean_batch: batched as f64 / flushes.max(1) as f64,
            // Cumulative across steps (dc-obs histograms merge); the
            // final step's record carries the full-run distribution.
            endpoints: endpoint_records(&after),
        };
        eprintln!(
            "offered {offered:7.0} qps: achieved {:8.1} qps  ({ok} ok, {errors} err, mean batch {:.2})",
            rec.achieved_qps, rec.mean_batch
        );
        rate_records.push(rec);
    }

    if smoke {
        assert!(
            rate_records.iter().all(|r| r.errors == 0 && r.ok > 0),
            "smoke run must complete every request cleanly"
        );
        eprintln!("smoke mode: all responses well-formed, skipping BENCH_serve.json");
        server.stop();
        return;
    }

    let snapshot = Snapshot {
        description: "open-loop load against a live dc-serve instance (70% micro-batched match, 15% encode, 10% bm25 search, 5% health); sustained QPS per offered rate, latency percentiles from the server's dc-obs serve.request.* histograms (cumulative across rate steps)",
        threads: dc_tensor::kernel::pool().threads(),
        workers: cfg.workers,
        batch_window_us: cfg.batch_window_us,
        batch_max: cfg.batch_max,
        rates: rate_records,
    };
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    std::fs::write("BENCH_serve.json", json + "\n").expect("write BENCH_serve.json");
    eprintln!("wrote BENCH_serve.json");
    server.stop();
}
