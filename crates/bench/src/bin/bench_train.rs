//! Record the allocation-free-training snapshot into `BENCH_train.json`.
//!
//! ```sh
//! cargo run --release -p dc-bench --bin bench_train            # full run
//! cargo run --release -p dc-bench --bin bench_train -- --smoke # CI gate
//! ```
//!
//! Two micro-train workloads — the MLP batch step behind `Mlp::fit` /
//! DeepER-average, and the pair-by-pair DeepER-LSTM step — each timed
//! in two configurations:
//!
//! * **baseline** — `DC_POOL=0` / `DC_FUSE=0` semantics: a fresh tape
//!   per step, every buffer a heap allocation, no elementwise fusion
//!   (the pre-pool hot path);
//! * **pooled** — one tape recycled across steps with pooling and
//!   fusion on (what `run_epochs` does now).
//!
//! Both configurations must produce bitwise-identical loss traces and
//! weights (checked here from identically-seeded models), so the
//! reported speedup buys no accuracy drift. The pooled run also
//! reports its steady-state pool miss rate (~0 after warmup) and an
//! embedded dc-obs report carrying the `tape.pool.*` counters and the
//! `tape.pool.bytes` gauge.
//!
//! `--smoke` shrinks the step counts, keeps the bitwise and
//! miss-rate checks, skips wall-clock assertions entirely and writes
//! no file — that mode is wired into `scripts/lint.sh`.

use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::lstm::{set_lstm_fused, LstmEncoder};
use dc_nn::mlp::Mlp;
use dc_nn::optim::{Adam, Optimizer};
use dc_tensor::{set_fuse_enabled, set_pool_enabled, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct WorkloadSnapshot {
    name: &'static str,
    description: &'static str,
    warmup_steps: usize,
    timed_steps: usize,
    reps: usize,
    baseline_us_per_step: f64,
    pooled_us_per_step: f64,
    reduction_pct: f64,
    warm_misses_per_step: f64,
    pool_hits: u64,
    pool_misses: u64,
    pool_high_water_bytes: usize,
    bitwise_equal: bool,
    /// High-water bytes the static liveness analyzer predicted for one
    /// step from a fresh tape (dc-check `forecast_pool`).
    forecast_high_water_bytes: usize,
    /// Whether the forecast matched the runtime's `PoolStats` exactly.
    forecast_exact: bool,
}

/// The `tape.pool.*` counters and gauge as dc-obs reports them, pulled
/// from an [`dc_obs::ObsReport`] over a short instrumented pooled pass.
#[derive(Serialize)]
struct PoolObs {
    hit: u64,
    miss: u64,
    bytes: u64,
}

impl PoolObs {
    fn from_report(report: &dc_obs::ObsReport) -> PoolObs {
        let counter = |name: &str| {
            report
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        let gauge = |name: &str| {
            report
                .gauges
                .iter()
                .find(|(n, _)| n == name)
                .map_or(0, |(_, v)| *v)
        };
        PoolObs {
            hit: counter("tape.pool.hit"),
            miss: counter("tape.pool.miss"),
            bytes: gauge("tape.pool.bytes"),
        }
    }
}

/// One `lstm_gates` row: per-timestep gate cost, legacy per-gate GEMMs
/// (`DC_LSTM_FUSED=0`) vs fused 4h-wide projections, both pooled.
#[derive(Serialize)]
struct LstmGatesSnapshot {
    tokens: usize,
    unfused_us_per_step: f64,
    fused_us_per_step: f64,
    unfused_us_per_token: f64,
    fused_us_per_token: f64,
    reduction_pct: f64,
}

#[derive(Serialize)]
struct Snapshot {
    description: &'static str,
    smoke: bool,
    workloads: Vec<WorkloadSnapshot>,
    lstm_gates: Vec<LstmGatesSnapshot>,
    obs_pool: PoolObs,
}

/// One training step, abstracted over workload. Implementations must be
/// deterministic given the seed they were built from.
trait Workload {
    fn step(&mut self, tape: &Tape) -> f32;
    /// Loss-bits fingerprint plus all parameter bits, for the
    /// baseline-vs-pooled equivalence check.
    fn fingerprint(&self) -> Vec<u32>;
}

/// The supervised MLP batch step behind `Mlp::fit` and the DeepER
/// average-composition classifier.
struct MlpMicro {
    model: Mlp,
    opt: Adam,
    rng: StdRng,
    x: Tensor,
    y: Tensor,
    last_loss: f32,
}

impl MlpMicro {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(4, 8, 1.0, &mut rng);
        let y = Tensor::from_vec(4, 1, (0..4).map(|i| (i % 2) as f32).collect());
        let model = Mlp::new(
            &[8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        MlpMicro {
            model,
            opt: Adam::new(0.01),
            rng,
            x,
            y,
            last_loss: 0.0,
        }
    }
}

impl Workload for MlpMicro {
    fn step(&mut self, tape: &Tape) -> f32 {
        self.last_loss = self.model.train_batch_on(
            tape,
            &self.x,
            &self.y,
            LossKind::Mse,
            &mut self.opt,
            &mut self.rng,
        );
        self.last_loss
    }

    fn fingerprint(&self) -> Vec<u32> {
        let mut bits = vec![self.last_loss.to_bits()];
        for l in &self.model.layers {
            bits.extend(l.w.data.iter().map(|v| v.to_bits()));
            bits.extend(l.b.data.iter().map(|v| v.to_bits()));
        }
        bits
    }
}

/// The pair-by-pair DeepER-LSTM step: encode two token sequences with a
/// shared LSTM, build |ha−hb| ⧺ ha⊙hb features, classify, backprop
/// through every timestep.
struct DeeperLstmMicro {
    encoder: LstmEncoder,
    classifier: Mlp,
    opt: Adam,
    seq_a: Tensor,
    seq_b: Tensor,
    step_idx: usize,
    last_loss: f32,
}

impl DeeperLstmMicro {
    fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let dim = 8;
        let hidden = 8;
        let tokens = 10;
        let seq_a = Tensor::randn(tokens, dim, 1.0, &mut rng);
        let seq_b = Tensor::randn(tokens, dim, 1.0, &mut rng);
        let encoder = LstmEncoder::new(dim, hidden, &mut rng);
        let classifier = Mlp::new(
            &[2 * hidden, 32, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        );
        DeeperLstmMicro {
            encoder,
            classifier,
            opt: Adam::new(0.01),
            seq_a,
            seq_b,
            step_idx: 0,
            last_loss: 0.0,
        }
    }
}

impl Workload for DeeperLstmMicro {
    fn step(&mut self, tape: &Tape) -> f32 {
        let label = self.step_idx.is_multiple_of(2);
        self.step_idx += 1;
        let lvars = self.encoder.bind(tape);
        let cvars = self.classifier.bind(tape);
        let sa = tape.var_slice(self.seq_a.rows, self.seq_a.cols, &self.seq_a.data);
        let sb = tape.var_slice(self.seq_b.rows, self.seq_b.cols, &self.seq_b.data);
        let ha = self.encoder.forward_tape(tape, sa, &lvars);
        let hb = self.encoder.forward_tape(tape, sb, &lvars);
        let diff = tape.abs(tape.sub(ha, hb));
        let had = tape.mul(ha, hb);
        let feat = tape.concat(&[diff, had]);
        let logit = self.classifier.forward_tape(tape, feat, &cvars, None);
        let target = Tensor::scalar(if label { 1.0 } else { 0.0 });
        let loss = tape.bce_with_logits(logit, target, Tensor::scalar(1.0));
        let lv = tape.item(loss);
        tape.backward(loss);
        self.opt.begin_step();
        self.encoder.apply_grads(&mut self.opt, 0, tape, &lvars);
        let base = self.encoder.slot_count();
        for (slot, (layer, cv)) in self.classifier.layers.iter_mut().zip(&cvars).enumerate() {
            tape.with_grad(cv.w, |gw| {
                tape.with_grad(cv.b, |gb| {
                    layer.apply_grads(&mut self.opt, base + slot, gw, gb)
                })
            });
        }
        self.last_loss = lv;
        lv
    }

    fn fingerprint(&self) -> Vec<u32> {
        let mut bits = vec![self.last_loss.to_bits()];
        for t in [&self.encoder.wx, &self.encoder.wh, &self.encoder.b] {
            bits.extend(t.data.iter().map(|v| v.to_bits()));
        }
        for l in &self.classifier.layers {
            bits.extend(l.w.data.iter().map(|v| v.to_bits()));
            bits.extend(l.b.data.iter().map(|v| v.to_bits()));
        }
        bits
    }
}

/// A bare LSTM training step over one `T×8` sequence — bind, forward,
/// sum-of-squares loss, backward, Adam — used to isolate per-timestep
/// gate cost for the unfused-vs-fused comparison.
struct LstmGatesMicro {
    encoder: LstmEncoder,
    opt: Adam,
    seq: Tensor,
    last_loss: f32,
}

impl LstmGatesMicro {
    fn new(seed: u64, tokens: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let (dim, hidden) = (8, 8);
        let seq = Tensor::randn(tokens, dim, 1.0, &mut rng);
        LstmGatesMicro {
            encoder: LstmEncoder::new(dim, hidden, &mut rng),
            opt: Adam::new(0.01),
            seq,
            last_loss: 0.0,
        }
    }
}

impl Workload for LstmGatesMicro {
    fn step(&mut self, tape: &Tape) -> f32 {
        let lvars = self.encoder.bind(tape);
        let sv = tape.var_slice(self.seq.rows, self.seq.cols, &self.seq.data);
        let h = self.encoder.forward_tape(tape, sv, &lvars);
        let loss = tape.sum(tape.mul(h, h));
        let lv = tape.item(loss);
        tape.backward(loss);
        self.opt.begin_step();
        self.encoder.apply_grads(&mut self.opt, 0, tape, &lvars);
        self.last_loss = lv;
        lv
    }

    fn fingerprint(&self) -> Vec<u32> {
        let mut bits = vec![self.last_loss.to_bits()];
        for t in [&self.encoder.wx, &self.encoder.wh, &self.encoder.b] {
            bits.extend(t.data.iter().map(|v| v.to_bits()));
        }
        bits
    }
}

/// Run `n` baseline steps (pool + fusion off, fresh tape per step).
fn run_baseline(w: &mut dyn Workload, n: usize) {
    set_pool_enabled(false);
    set_fuse_enabled(false);
    for _ in 0..n {
        let tape = Tape::new();
        w.step(&tape);
    }
}

/// Run `n` pooled steps (pool + fusion on) against `tape`, recycling
/// after each.
fn run_pooled(w: &mut dyn Workload, tape: &Tape, n: usize) {
    for _ in 0..n {
        w.step(tape);
        tape.recycle();
    }
}

/// Median of a sample set (sorts in place).
fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

#[allow(clippy::too_many_arguments)]
fn bench_workload(
    name: &'static str,
    description: &'static str,
    make: &dyn Fn(u64) -> Box<dyn Workload>,
    warmup: usize,
    timed: usize,
    reps: usize,
    equiv_steps: usize,
    smoke: bool,
) -> WorkloadSnapshot {
    // Bitwise equivalence: identically-seeded models through both
    // configurations must agree to the last bit.
    let mut wa = make(7);
    run_baseline(wa.as_mut(), equiv_steps);
    let mut wb = make(7);
    set_pool_enabled(true);
    set_fuse_enabled(true);
    let equiv_tape = Tape::new();
    run_pooled(wb.as_mut(), &equiv_tape, equiv_steps);
    let bitwise_equal = wa.fingerprint() == wb.fingerprint();
    assert!(
        bitwise_equal,
        "{name}: pooled/fused training diverged from the DC_POOL=0 baseline"
    );

    // Liveness forecast parity (dc-check): one un-recycled step from a
    // fresh tape, then the static analyzer must verify the recorded
    // graph clean and predict the pool's PoolStats — including the
    // high-water mark — exactly. Runs in --smoke too, so lint gates it.
    set_pool_enabled(true);
    set_fuse_enabled(true);
    let forecast_tape = Tape::new();
    make(7).step(&forecast_tape);
    let root = forecast_tape
        .last_backward_root()
        .expect("workload step runs backward");
    let errors = dc_check::liveness::verify(&forecast_tape, root);
    assert!(
        errors.is_empty(),
        "{name}: liveness verification failed\n{}",
        dc_check::render(&errors)
    );
    let predicted =
        dc_check::forecast_pool(&forecast_tape, root).expect("workload graph is well-formed");
    let actual = forecast_tape.pool_stats();
    let forecast_exact = predicted == actual;
    assert!(
        forecast_exact,
        "{name}: forecast pool stats {predicted:?} != actual {actual:?}"
    );
    let forecast_high_water_bytes = predicted.high_water_bytes;

    // Timing: interleaved baseline/pooled sample pairs so both modes
    // see the same machine conditions. Every sample restarts from the
    // same seed, so each rep times the exact same deterministic step
    // sequence — and stays in the early-training regime the repo's real
    // fits run in (long-converged models drift into denormal moments,
    // which time the FPU, not the allocator).
    set_pool_enabled(true);
    set_fuse_enabled(true);
    let tape = Tape::new();
    {
        // Warm the pool's size classes once; later reps re-use them.
        let mut ww = make(11);
        run_pooled(ww.as_mut(), &tape, warmup);
    }
    let warm = tape.pool_stats();

    let mut base_samples = Vec::with_capacity(reps);
    let mut pooled_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let mut wb = make(11);
        let t0 = Instant::now();
        run_baseline(wb.as_mut(), timed);
        base_samples.push(t0.elapsed().as_secs_f64() * 1e6 / timed as f64);

        let mut wp = make(11);
        set_pool_enabled(true);
        set_fuse_enabled(true);
        let t0 = Instant::now();
        run_pooled(wp.as_mut(), &tape, timed);
        pooled_samples.push(t0.elapsed().as_secs_f64() * 1e6 / timed as f64);
    }
    // Reduction is judged on the per-pair ratios: each baseline sample
    // is paired with the pooled sample taken right after it, so slow
    // spells on a shared box cancel instead of landing on one mode.
    let mut reductions: Vec<f64> = base_samples
        .iter()
        .zip(&pooled_samples)
        .map(|(b, p)| (1.0 - p / b) * 100.0)
        .collect();
    let reduction_pct = median(&mut reductions);
    let baseline_us_per_step = median(&mut base_samples);
    let pooled_us_per_step = median(&mut pooled_samples);
    let stats = tape.pool_stats();
    let warm_misses_per_step = (stats.misses - warm.misses) as f64 / (reps * timed) as f64;
    assert!(
        warm_misses_per_step < 1.0,
        "{name}: pool still missing after warmup ({warm_misses_per_step:.2}/step)"
    );

    eprintln!(
        "{name}: baseline {baseline_us_per_step:.1}us/step  pooled {pooled_us_per_step:.1}us/step  \
         ({reduction_pct:+.1}% reduction, {warm_misses_per_step:.3} misses/step warm)"
    );
    if !smoke {
        assert!(
            reduction_pct >= 30.0,
            "{name}: expected >=30% step-time reduction, measured {reduction_pct:.1}%"
        );
    }

    WorkloadSnapshot {
        name,
        description,
        warmup_steps: warmup,
        timed_steps: timed,
        reps,
        baseline_us_per_step,
        pooled_us_per_step,
        reduction_pct,
        warm_misses_per_step,
        pool_hits: stats.hits,
        pool_misses: stats.misses,
        pool_high_water_bytes: stats.high_water_bytes,
        bitwise_equal,
        forecast_high_water_bytes,
        forecast_exact,
    }
}

/// Time the bare LSTM step at sequence length `tokens` in both gate
/// modes. Like `bench_workload`, samples are interleaved per-pair so
/// shared-box noise cancels; each mode keeps its own recycled tape
/// (the two graphs pool different size classes).
fn bench_lstm_gates(tokens: usize, warmup: usize, timed: usize, reps: usize) -> LstmGatesSnapshot {
    set_pool_enabled(true);
    set_fuse_enabled(true);

    set_lstm_fused(false);
    let tape_unfused = Tape::new();
    {
        let mut w = LstmGatesMicro::new(11, tokens);
        run_pooled(&mut w, &tape_unfused, warmup);
    }
    set_lstm_fused(true);
    let tape_fused = Tape::new();
    {
        let mut w = LstmGatesMicro::new(11, tokens);
        run_pooled(&mut w, &tape_fused, warmup);
    }

    let mut unfused_samples = Vec::with_capacity(reps);
    let mut fused_samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        set_lstm_fused(false);
        let mut w = LstmGatesMicro::new(11, tokens);
        let t0 = Instant::now();
        run_pooled(&mut w, &tape_unfused, timed);
        unfused_samples.push(t0.elapsed().as_secs_f64() * 1e6 / timed as f64);

        set_lstm_fused(true);
        let mut w = LstmGatesMicro::new(11, tokens);
        let t0 = Instant::now();
        run_pooled(&mut w, &tape_fused, timed);
        fused_samples.push(t0.elapsed().as_secs_f64() * 1e6 / timed as f64);
    }
    set_lstm_fused(true);

    let mut reductions: Vec<f64> = unfused_samples
        .iter()
        .zip(&fused_samples)
        .map(|(u, f)| (1.0 - f / u) * 100.0)
        .collect();
    let reduction_pct = median(&mut reductions);
    let unfused_us_per_step = median(&mut unfused_samples);
    let fused_us_per_step = median(&mut fused_samples);
    eprintln!(
        "lstm_gates T={tokens}: unfused {unfused_us_per_step:.1}us/step  \
         fused {fused_us_per_step:.1}us/step  ({reduction_pct:+.1}% reduction)"
    );
    LstmGatesSnapshot {
        tokens,
        unfused_us_per_step,
        fused_us_per_step,
        unfused_us_per_token: unfused_us_per_step / tokens as f64,
        fused_us_per_token: fused_us_per_step / tokens as f64,
        reduction_pct,
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (warmup, timed, reps, equiv_steps) = if smoke {
        (5, 20, 3, 10)
    } else {
        (30, 300, 9, 50)
    };

    let workloads = vec![
        bench_workload(
            "mlp_micro",
            "Mlp::train_batch_on, 4x8 batch, deep narrow [8,8x10,1] relu net, MSE",
            &|seed| Box::new(MlpMicro::new(seed)) as Box<dyn Workload>,
            warmup,
            timed,
            reps,
            equiv_steps,
            smoke,
        ),
        bench_workload(
            "deeper_lstm_micro",
            "DeepER-LSTM pair step: shared LSTM(8) over 2x10 tokens, |a-b| ++ a*b features, [16,32,1] head, BCE",
            &|seed| Box::new(DeeperLstmMicro::new(seed)) as Box<dyn Workload>,
            warmup,
            timed,
            reps,
            equiv_steps,
            smoke,
        ),
    ];

    let lstm_gates: Vec<LstmGatesSnapshot> = [4usize, 16, 64]
        .iter()
        .map(|&tokens| bench_lstm_gates(tokens, warmup, timed, reps))
        .collect();

    // Short instrumented pooled pass so the snapshot embeds the pool
    // counters/gauge as dc-obs reports them (timing above runs with the
    // obs gate off, so instrumentation never skews the measurements).
    dc_obs::reset();
    dc_obs::set_enabled(true);
    let mut w = MlpMicro::new(3);
    set_pool_enabled(true);
    set_fuse_enabled(true);
    let tape = Tape::new();
    run_pooled(&mut w, &tape, 10);
    dc_obs::set_enabled(false);
    let obs_pool = PoolObs::from_report(&dc_obs::report());

    let snapshot = Snapshot {
        description: "training-step time: DC_POOL=0/DC_FUSE=0 fresh-tape baseline vs one recycled pooled tape with fused elementwise chains; bitwise-identical results enforced",
        smoke,
        workloads,
        lstm_gates,
        obs_pool,
    };
    let json = serde_json::to_string(&snapshot).expect("serialize snapshot");
    if smoke {
        eprintln!("smoke mode: skipping BENCH_train.json write");
    } else {
        std::fs::write("BENCH_train.json", json + "\n").expect("write BENCH_train.json");
        eprintln!("wrote BENCH_train.json");
    }
}
