//! Microbenchmarks of the dc-tensor substrate: matmul variants and a
//! full autograd step — the kernels under every model in AutoDC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_tensor::{kernel, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn(n, n, 1.0, &mut rng);
        let b = Tensor::randn(n, n, 1.0, &mut rng);
        group.bench_with_input(BenchmarkId::new("plain", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_t_b", n), &n, |bch, _| {
            bch.iter(|| black_box(a.t_matmul(&b)))
        });
        group.bench_with_input(BenchmarkId::new("a_b_t", n), &n, |bch, _| {
            bch.iter(|| black_box(a.matmul_t(&b)))
        });
    }
    group.finish();
}

fn bench_kernel_sweep(c: &mut Criterion) {
    // ISSUE 2 acceptance sweep: seed-reference vs blocked-serial vs
    // pool-forced kernels at {64, 256, 1024}. `scripts/bench_kernels.sh`
    // records the same comparison into BENCH_kernels.json.
    let mut group = c.benchmark_group("kernel_sweep");
    for &n in &[64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(3);
        let a = Tensor::randn(n, n, 1.0, &mut rng);
        let b = Tensor::randn(n, n, 1.0, &mut rng);
        if n <= 256 {
            // The naive kernel at 1024 is too slow to sample politely.
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |bch, _| {
                bch.iter(|| black_box(kernel::reference::matmul(&a, &b)))
            });
        }
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |bch, _| {
            bch.iter(|| black_box(kernel::matmul_serial(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |bch, _| {
            bch.iter(|| black_box(kernel::matmul_parallel(&a, &b)))
        });
    }
    group.finish();
}

fn bench_autograd_step(c: &mut Criterion) {
    // Forward + backward of a 2-layer MLP batch, the DeepER inner loop.
    let mut rng = StdRng::seed_from_u64(2);
    let x = Tensor::randn(64, 33, 1.0, &mut rng);
    let w1 = Tensor::xavier(33, 32, &mut rng);
    let b1 = Tensor::zeros(1, 32);
    let w2 = Tensor::xavier(32, 1, &mut rng);
    let b2 = Tensor::zeros(1, 1);
    let y = Tensor::from_vec(64, 1, (0..64).map(|i| (i % 2) as f32).collect());

    c.bench_function("autograd_mlp_step_64x33", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let vx = tape.var(x.clone());
            let vw1 = tape.var(w1.clone());
            let vb1 = tape.var(b1.clone());
            let vw2 = tape.var(w2.clone());
            let vb2 = tape.var(b2.clone());
            let h = tape.relu(tape.add_row(tape.matmul(vx, vw1), vb1));
            let logits = tape.add_row(tape.matmul(h, vw2), vb2);
            let loss = tape.bce_with_logits(logits, y.clone(), Tensor::ones(64, 1));
            tape.backward(loss);
            black_box(tape.grad(vw1));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_matmul, bench_kernel_sweep, bench_autograd_step
}
criterion_main!(benches);
