//! E8 timing: imputers on a 200-row people table at 10% missingness.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_clean::impute::{DaeImputer, KnnImputer, SimpleImputer, SimpleStrategy};
use dc_clean::TableEncoder;
use dc_datagen::{people_table, ErrorInjector, ErrorKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_imputers(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let clean = people_table(200, &mut rng);
    let (dirty, _) = ErrorInjector::only(ErrorKind::Null, 0.1).inject(&clean, &[], &mut rng);
    let encoder = TableEncoder::fit(&dirty, 64);

    c.bench_function("impute_mean_mode", |b| {
        b.iter(|| {
            let imp = SimpleImputer::fit(&dirty, SimpleStrategy::MeanMode);
            black_box(imp.impute(&dirty))
        })
    });
    c.bench_function("impute_knn5", |b| {
        b.iter(|| black_box(KnnImputer { k: 5 }.impute(&dirty, &encoder)))
    });
    c.bench_function("impute_dae_train_and_apply", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            let dae = DaeImputer::train(&dirty, encoder.clone(), &[32], 16, 10, &mut r);
            black_box(dae.impute(&dirty))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_imputers
}
criterion_main!(benches);
