//! E11/E12 timing: label-model EM and Dawid–Skene inference.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_weak::crowd::{dawid_skene, simulate_crowd};
use dc_weak::labelmodel::GenerativeLabelModel;
use dc_weak::lf::LabelMatrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn bench_label_model(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let votes = (0..1000)
        .map(|_| {
            (0..5)
                .map(|_| {
                    if rng.gen_bool(0.2) {
                        None
                    } else {
                        Some(rng.gen_bool(0.6))
                    }
                })
                .collect()
        })
        .collect();
    let matrix = LabelMatrix { votes };
    c.bench_function("label_model_em_1000x5", |b| {
        b.iter(|| black_box(GenerativeLabelModel::fit(&matrix, 10)))
    });
}

fn bench_dawid_skene(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let (labels, _) = simulate_crowd(1000, &[0.9, 0.9, 0.6, 0.6, 0.6], 5, &mut rng);
    c.bench_function("dawid_skene_1000x5", |b| {
        b.iter(|| black_box(dawid_skene(&labels, 15)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_label_model, bench_dawid_skene
}
criterion_main!(benches);
