//! E10 timing: plain vs neural-guided synthesis on representative
//! tasks, plus DSL evaluation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_synth::dsl::{Atom, Program};
use dc_synth::{synthesize, GuidanceModel, SynthConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn ex(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
    pairs
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

fn bench_synthesis(c: &mut Criterion) {
    let name_task = ex(&[("John Smith", "J Smith"), ("Jane Doe", "J Doe")]);
    let phone_task = ex(&[
        ("(212) 555 0199", "212-555-0199"),
        ("(617) 555 1234", "617-555-1234"),
    ]);
    let config = SynthConfig::default();

    c.bench_function("synthesize_name_abbrev", |b| {
        b.iter(|| black_box(synthesize(&name_task, &config)))
    });
    c.bench_function("synthesize_phone_plain", |b| {
        b.iter(|| black_box(synthesize(&phone_task, &config)))
    });

    let mut rng = StdRng::seed_from_u64(1);
    let model = GuidanceModel::train(200, 60, &mut rng);
    c.bench_function("synthesize_phone_guided", |b| {
        b.iter(|| black_box(model.synthesize_guided(&phone_task, &config)))
    });
}

fn bench_program_eval(c: &mut Criterion) {
    let program = Program::new(vec![
        Atom::TokenInitial(0),
        Atom::Const(" ".into()),
        Atom::Title(Box::new(Atom::Token(-1))),
    ]);
    c.bench_function("program_run", |b| {
        b.iter(|| black_box(program.run("grace brewster murray hopper")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_synthesis, bench_program_eval
}
criterion_main!(benches);
