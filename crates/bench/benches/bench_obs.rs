//! Microbenchmark of the dc-obs gate: the disabled path must cost a
//! single relaxed load + branch per site (the ISSUE 4 ≤2ns/site
//! budget), and the enabled counter path one more atomic add.
//! `scripts/bench_obs.sh` records the same comparison into
//! `BENCH_obs.json` via the `bench_obs` bin.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

static COUNTER: dc_obs::Counter = dc_obs::Counter::new("bench.counter");
static HIST: dc_obs::Hist = dc_obs::Hist::new("bench.hist");

fn bench_disabled(c: &mut Criterion) {
    dc_obs::set_enabled(false);
    let mut group = c.benchmark_group("obs_disabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| COUNTER.add(black_box(1)));
    });
    group.bench_function("timer", |b| {
        b.iter(|| black_box(HIST.start()));
    });
    group.bench_function("span", |b| {
        b.iter(|| black_box(dc_obs::span("bench.span")));
    });
    group.finish();
}

fn bench_enabled(c: &mut Criterion) {
    dc_obs::set_enabled(true);
    let mut group = c.benchmark_group("obs_enabled");
    group.bench_function("counter_add", |b| {
        b.iter(|| COUNTER.add(black_box(1)));
    });
    group.finish();
    dc_obs::set_enabled(false);
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
