//! E1 timing: SGNS training throughput and similarity queries.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_embed::sgns::planted_topic_corpus;
use dc_embed::{Embeddings, SgnsConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sgns_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let corpus = planted_topic_corpus(4, 8, 300, 8, &mut rng);
    c.bench_function("sgns_train_300_docs", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            black_box(Embeddings::train(
                &corpus,
                &SgnsConfig {
                    dim: 16,
                    epochs: 2,
                    ..Default::default()
                },
                &mut r,
            ))
        })
    });
}

fn bench_similarity_queries(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let corpus = planted_topic_corpus(4, 8, 300, 8, &mut rng);
    let emb = Embeddings::train(&corpus, &SgnsConfig::default(), &mut rng);
    c.bench_function("most_similar_top5", |b| {
        b.iter(|| black_box(emb.most_similar("t0w0", 5)))
    });
    c.bench_function("analogy_top5", |b| {
        b.iter(|| black_box(emb.analogy("t0w0", "t0w1", "t1w0", 5)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sgns_training, bench_similarity_queries
}
criterion_main!(benches);
