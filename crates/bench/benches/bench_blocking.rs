//! E4 timing: candidate generation throughput of LSH vs token vs key
//! blocking as the record count grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_datagen::{ErBenchmark, ErSuite};
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::blocking::{KeyBlocker, LshBlocker, TokenBlocker};
use dc_er::features::tuple_vectors;
use dc_relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_blockers(c: &mut Criterion) {
    let mut group = c.benchmark_group("blocking");
    for &entities in &[50usize, 100] {
        let mut rng = StdRng::seed_from_u64(1);
        let bench = ErBenchmark::generate(ErSuite::Dirty, entities, 3, &mut rng);
        let docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
        let emb = Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 16,
                epochs: 2,
                ..Default::default()
            },
            &mut rng,
        );
        let vectors = tuple_vectors(&emb, &bench.table);
        let lsh = LshBlocker::new(emb.dim(), 8, 4, &mut rng);

        group.bench_with_input(BenchmarkId::new("lsh_8x4", entities), &entities, |b, _| {
            b.iter(|| black_box(lsh.candidates(&vectors)))
        });
        group.bench_with_input(BenchmarkId::new("token", entities), &entities, |b, _| {
            b.iter(|| black_box(TokenBlocker { column: 0 }.candidates(&bench.table)))
        });
        group.bench_with_input(BenchmarkId::new("key3", entities), &entities, |b, _| {
            b.iter(|| {
                black_box(
                    KeyBlocker {
                        column: 0,
                        prefix: 3,
                    }
                    .candidates(&bench.table),
                )
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_blockers
}
criterion_main!(benches);
