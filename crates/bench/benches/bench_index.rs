//! Criterion sweep for the ISSUE 3 retrieval layer: seed brute-force
//! paths vs dc-index, alongside the kernel benches.
//! `scripts/bench_index.sh` records the same comparison (plus the 10k
//! blocking row) into BENCH_index.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dc_er::blocking::{reference, LshBlocker};
use dc_index::CosineIndex;
use dc_tensor::tensor::cosine;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_blocking(c: &mut Criterion) {
    let mut group = c.benchmark_group("lsh_candidates");
    let (bands, rows_per_band, dim) = (8usize, 16usize, 32usize);
    for &n in &[250usize, 1000, 4000] {
        let mut rng = StdRng::seed_from_u64(42);
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|_| Tensor::randn(1, dim, 1.0, &mut rng).data)
            .collect();
        let planes: Vec<Vec<f32>> = (0..bands * rows_per_band)
            .map(|_| Tensor::randn(1, dim, 1.0, &mut rng).data)
            .collect();
        let seed_blocker = reference::LshBlocker::from_planes(planes.clone(), bands, rows_per_band);
        let new_blocker = LshBlocker::from_planes(planes, bands, rows_per_band);
        if n <= 1000 {
            group.bench_with_input(BenchmarkId::new("reference", n), &n, |b, _| {
                b.iter(|| black_box(seed_blocker.candidates(&vectors)))
            });
        }
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |b, _| {
            b.iter(|| black_box(new_blocker.candidates(&vectors)))
        });
    }
    group.finish();
}

fn bench_cosine_topk(c: &mut Criterion) {
    let mut group = c.benchmark_group("cosine_topk");
    let (dim, k) = (64usize, 10usize);
    for &n in &[1000usize, 10_000] {
        let mut rng = StdRng::seed_from_u64(7);
        let items = Tensor::randn(n, dim, 1.0, &mut rng);
        let labels: Vec<String> = (0..n).map(|i| format!("item-{i}")).collect();
        let query = Tensor::randn(1, dim, 1.0, &mut rng).data;
        let index = CosineIndex::build(&items);
        group.bench_with_input(BenchmarkId::new("seed_scan", n), &n, |b, _| {
            b.iter(|| {
                // The seed knn::nearest shape: String per item, scalar
                // cosine, full sort.
                let mut scored: Vec<(String, f32)> = (0..items.rows)
                    .map(|i| (labels[i].to_string(), cosine(&query, items.row_slice(i))))
                    .collect();
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
                scored.truncate(k);
                black_box(scored)
            })
        });
        group.bench_with_input(BenchmarkId::new("cosine_index", n), &n, |b, _| {
            b.iter(|| black_box(index.nearest(&query, k)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_blocking, bench_cosine_topk
}
criterion_main!(benches);
