//! E6/E7 timing: matcher decisions and search queries over a lake.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_datagen::Lake;
use dc_discovery::{search_documents, Bm25Lite, NeuralSearch, SemanticMatcher};
use dc_embed::{Embeddings, SgnsConfig};
use dc_relational::Table;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_discovery(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let lake = Lake::generate(10, 30, &mut rng);
    let refs: Vec<&Table> = lake.tables.iter().collect();
    let sgns = SgnsConfig {
        dim: 16,
        window: 8,
        epochs: 3,
        ..Default::default()
    };
    let matcher = SemanticMatcher::train(&refs, &sgns, &mut rng);
    let emb = Embeddings::train(&search_documents(&refs, 15), &sgns, &mut rng);
    let neural = NeuralSearch::index(emb, &refs, 15);
    let bm25 = Bm25Lite::index(&refs, 15);

    c.bench_function("semantic_match_decision", |b| {
        b.iter(|| black_box(matcher.decide(&lake.tables[0], 0, &lake.tables[1], 0)))
    });
    c.bench_function("neural_search_query", |b| {
        b.iter(|| black_box(neural.search("employee name city")))
    });
    c.bench_function("bm25_search_query", |b| {
        b.iter(|| black_box(bm25.search("employee name city")))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_discovery
}
criterion_main!(benches);
