//! E15 timing: autoencoder-family training steps and VAE/GAN rounds on
//! encoded tuples.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_clean::TableEncoder;
use dc_nn::ae::{Autoencoder, DenoisingAutoencoder, Noise, Vae};
use dc_nn::gan::Gan;
use dc_nn::optim::Adam;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn encoded(rng: &mut StdRng) -> Tensor {
    let table = dc_datagen::people_table(100, rng);
    TableEncoder::fit(&table, 32).encode(&table).0
}

fn bench_ae_steps(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let x = encoded(&mut rng);
    let d = x.cols;

    c.bench_function("ae_train_step", |b| {
        let mut ae = Autoencoder::new(d, &[d / 2], d / 4, &mut rng);
        let mut opt = Adam::new(0.005);
        b.iter(|| black_box(ae.train_step(&x, &x, &mut opt)))
    });

    c.bench_function("dae_epoch", |b| {
        let mut dae =
            DenoisingAutoencoder::new(d, &[d / 2], d / 4, Noise::Masking { p: 0.2 }, &mut rng);
        let mut opt = Adam::new(0.005);
        let mut r = StdRng::seed_from_u64(2);
        b.iter(|| black_box(dae.fit(&x, &mut opt, 1, 32, &mut r)))
    });

    c.bench_function("vae_train_step", |b| {
        let mut vae = Vae::new(d, d / 2, d / 4, &mut rng);
        let mut opt = Adam::new(0.005);
        let mut r = StdRng::seed_from_u64(3);
        b.iter(|| black_box(vae.train_step(&x, &mut opt, &mut r)))
    });

    c.bench_function("gan_round", |b| {
        let mut gan = Gan::new(d, d / 4, d / 2, &mut rng);
        let mut r = StdRng::seed_from_u64(4);
        b.iter(|| black_box(gan.train_round(&x, &mut r)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ae_steps
}
criterion_main!(benches);
