//! E2 timing: heterogeneous-graph construction, random walks, and
//! tuple-as-document training on a people table.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_embed::{CellDocEmbedder, GraphEmbedConfig, GraphEmbedder, SgnsConfig};
use dc_relational::TableGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_graph_build(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let table = dc_datagen::people_table(200, &mut rng);
    let fds = dc_datagen::people_fds();
    c.bench_function("table_graph_build_200_rows", |b| {
        b.iter(|| black_box(TableGraph::build(&table, &fds)))
    });
}

fn bench_walks(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let table = dc_datagen::people_table(200, &mut rng);
    let graph = TableGraph::build(&table, &dc_datagen::people_fds());
    let embedder = GraphEmbedder::new(GraphEmbedConfig {
        walks_per_node: 2,
        walk_length: 8,
        ..Default::default()
    });
    c.bench_function("random_walk_corpus", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(3);
            black_box(embedder.walks(&graph, &mut r))
        })
    });
}

fn bench_celldoc_training(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let table = dc_datagen::people_table(100, &mut rng);
    c.bench_function("celldoc_train_100_rows", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(5);
            black_box(
                CellDocEmbedder::new(SgnsConfig {
                    dim: 16,
                    epochs: 2,
                    ..Default::default()
                })
                .train(&table, &mut r),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_graph_build, bench_walks, bench_celldoc_training
}
criterion_main!(benches);
