//! E3/E13 timing: DeepER training and prediction vs the feature
//! baseline — the "light-weight DL model that can be trained in a
//! matter of minutes even on a CPU" claim in microbench form.

use criterion::{criterion_group, criterion_main, Criterion};
use dc_datagen::{ErBenchmark, ErSuite};
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::baselines::FeatureLogReg;
use dc_er::{Composition, DeepEr, DeepErConfig};
use dc_relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Setup {
    bench: ErBenchmark,
    emb: Embeddings,
    tp: Vec<(usize, usize)>,
    tl: Vec<bool>,
}

fn setup() -> Setup {
    let mut rng = StdRng::seed_from_u64(1);
    let bench = ErBenchmark::generate(ErSuite::Dirty, 40, 3, &mut rng);
    let docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    let emb = Embeddings::train(
        &docs,
        &SgnsConfig {
            dim: 16,
            epochs: 3,
            ..Default::default()
        },
        &mut rng,
    );
    let pairs = bench.labeled_pairs(3, &mut rng);
    Setup {
        tp: pairs.iter().map(|p| (p.a, p.b)).collect(),
        tl: pairs.iter().map(|p| p.label).collect(),
        bench,
        emb,
    }
}

fn bench_deeper_train(c: &mut Criterion) {
    let s = setup();
    c.bench_function("deeper_train_avg", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(2);
            black_box(DeepEr::train(
                s.emb.clone(),
                &s.bench.table,
                &s.tp,
                &s.tl,
                Composition::Average,
                DeepErConfig {
                    epochs: 5,
                    ..Default::default()
                },
                &mut r,
            ))
        })
    });
}

fn bench_deeper_predict(c: &mut Criterion) {
    let s = setup();
    let mut rng = StdRng::seed_from_u64(3);
    let model = DeepEr::train(
        s.emb.clone(),
        &s.bench.table,
        &s.tp,
        &s.tl,
        Composition::Average,
        DeepErConfig {
            epochs: 5,
            ..Default::default()
        },
        &mut rng,
    );
    c.bench_function("deeper_predict", |b| {
        b.iter(|| black_box(model.predict(&s.bench.table, &s.tp)))
    });
}

fn bench_logreg_train(c: &mut Criterion) {
    let s = setup();
    c.bench_function("feature_logreg_train", |b| {
        b.iter(|| {
            let mut r = StdRng::seed_from_u64(4);
            black_box(FeatureLogReg::train(
                &s.bench.table,
                &s.tp,
                &s.tl,
                20,
                &mut r,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_deeper_train, bench_deeper_predict, bench_logreg_train
}
criterion_main!(benches);
