//! Numeric encoding of heterogeneous tables for neural models.
//!
//! Numerics are z-standardised into one slot; categorical/text columns
//! become one-hot blocks over their (capped) observed domain. Nulls
//! encode as zeros with a parallel missing-mask, which is exactly the
//! corruption a masking denoising autoencoder trains on.

use dc_data::{Csr, CsrBuilder};
use dc_relational::{AttrType, Table, Value};
use dc_tensor::Tensor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-column encoding spec.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub enum ColSpec {
    /// Z-standardised numeric column.
    Numeric {
        /// Observed mean.
        mean: f64,
        /// Observed standard deviation (≥ a small floor).
        std: f64,
    },
    /// One-hot categorical over an observed, capped domain.
    Categorical {
        /// Domain values in frequency order.
        values: Vec<String>,
        /// Value → slot lookup.
        #[serde(skip)]
        index: HashMap<String, usize>,
    },
}

impl ColSpec {
    fn width(&self) -> usize {
        match self {
            ColSpec::Numeric { .. } => 1,
            ColSpec::Categorical { values, .. } => values.len(),
        }
    }
}

/// A fitted table encoder.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TableEncoder {
    /// Per-column specs in schema order.
    pub specs: Vec<ColSpec>,
    offsets: Vec<usize>,
    width: usize,
}

impl TableEncoder {
    /// Fit an encoder to a table; categorical domains are capped at
    /// `max_domain` most frequent values (rarer values encode as all
    /// zeros, like nulls).
    pub fn fit(table: &Table, max_domain: usize) -> Self {
        let mut specs = Vec::with_capacity(table.schema.arity());
        for (c, attr) in table.schema.attrs.iter().enumerate() {
            let numeric = matches!(attr.ty, AttrType::Int | AttrType::Float)
                && table
                    .rows
                    .iter()
                    .all(|r| r[c].is_null() || r[c].as_f64().is_some());
            if numeric {
                let vals: Vec<f64> = table.rows.iter().filter_map(|r| r[c].as_f64()).collect();
                let mean = if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                };
                let var = if vals.len() < 2 {
                    1.0
                } else {
                    vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64
                };
                specs.push(ColSpec::Numeric {
                    mean,
                    std: var.sqrt().max(1e-6),
                });
            } else {
                let mut counts: HashMap<String, usize> = HashMap::new();
                for r in &table.rows {
                    if !r[c].is_null() {
                        *counts.entry(r[c].canonical()).or_insert(0) += 1;
                    }
                }
                let mut items: Vec<(String, usize)> = counts.into_iter().collect();
                items.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let values: Vec<String> =
                    items.into_iter().take(max_domain).map(|(v, _)| v).collect();
                let index = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.clone(), i))
                    .collect();
                specs.push(ColSpec::Categorical { values, index });
            }
        }
        let mut offsets = Vec::with_capacity(specs.len());
        let mut acc = 0;
        for s in &specs {
            offsets.push(acc);
            acc += s.width();
        }
        TableEncoder {
            specs,
            offsets,
            width: acc,
        }
    }

    /// Total encoded width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of columns the encoder was fitted on — the shape guard
    /// for [`crate::KnnImputer::try_impute`] and friends.
    pub fn arity(&self) -> usize {
        self.specs.len()
    }

    /// Slot range of column `c`.
    pub fn column_range(&self, c: usize) -> std::ops::Range<usize> {
        self.offsets[c]..self.offsets[c] + self.specs[c].width()
    }

    /// Encode a row into `buf` (length [`Self::width`]); returns the
    /// per-column observed flags.
    pub fn encode_row(&self, row: &[Value], buf: &mut [f32]) -> Vec<bool> {
        buf.iter_mut().for_each(|v| *v = 0.0);
        let mut observed = Vec::with_capacity(row.len());
        for (c, v) in row.iter().enumerate() {
            let range = self.column_range(c);
            let obs = match (&self.specs[c], v) {
                (_, Value::Null) => false,
                (ColSpec::Numeric { mean, std }, v) => match v.as_f64() {
                    Some(x) => {
                        buf[range.start] = ((x - mean) / std) as f32;
                        true
                    }
                    None => false,
                },
                (ColSpec::Categorical { index, .. }, v) => match index.get(&v.canonical()) {
                    Some(&slot) => {
                        buf[range.start + slot] = 1.0;
                        true
                    }
                    None => false,
                },
            };
            observed.push(obs);
        }
        observed
    }

    /// Encode a whole table; returns the matrix and per-row observed
    /// flags.
    pub fn encode(&self, table: &Table) -> (Tensor, Vec<Vec<bool>>) {
        let mut x = Tensor::zeros(table.len(), self.width);
        let mut observed = Vec::with_capacity(table.len());
        for (i, row) in table.rows.iter().enumerate() {
            let obs = self.encode_row(row, x.row_slice_mut(i));
            observed.push(obs);
        }
        (x, observed)
    }

    /// Encode a whole table as a sparse CSR matrix.
    ///
    /// The dense encoding is mostly zeros — each row carries at most
    /// one nonzero per column (the z-score slot or the one-hot slot) in
    /// a `width()`-wide vector dominated by categorical blocks — so the
    /// CSR form stores O(arity) per row instead of O(width). Values
    /// match [`TableEncoder::encode`] exactly, except that encoded
    /// zeros (a cell sitting exactly on the column mean, or any
    /// null/out-of-domain cell) are structural zeros here.
    pub fn encode_csr(&self, table: &Table) -> (Csr, Vec<Vec<bool>>) {
        let mut b = CsrBuilder::new(self.width);
        let mut observed = Vec::with_capacity(table.len());
        let mut entries: Vec<(u32, f32)> = Vec::with_capacity(self.specs.len());
        for row in &table.rows {
            entries.clear();
            let mut obs = Vec::with_capacity(row.len());
            for (c, v) in row.iter().enumerate() {
                let range = self.column_range(c);
                let seen = match (&self.specs[c], v) {
                    (_, Value::Null) => false,
                    (ColSpec::Numeric { mean, std }, v) => match v.as_f64() {
                        Some(x) => {
                            entries.push((range.start as u32, ((x - mean) / std) as f32));
                            true
                        }
                        None => false,
                    },
                    (ColSpec::Categorical { index, .. }, v) => match index.get(&v.canonical()) {
                        Some(&slot) => {
                            entries.push(((range.start + slot) as u32, 1.0));
                            true
                        }
                        None => false,
                    },
                };
                obs.push(seen);
            }
            b.push_row(entries.iter().copied());
            observed.push(obs);
        }
        (b.finish(), observed)
    }

    /// Decode column `c` from an encoded row slice back to a [`Value`].
    pub fn decode_cell(&self, c: usize, encoded_row: &[f32]) -> Value {
        let range = self.column_range(c);
        match &self.specs[c] {
            ColSpec::Numeric { mean, std } => {
                Value::Float(encoded_row[range.start] as f64 * std + mean)
            }
            ColSpec::Categorical { values, .. } => {
                if values.is_empty() {
                    return Value::Null;
                }
                let slice = &encoded_row[range];
                let mut best = 0;
                for (i, &v) in slice.iter().enumerate() {
                    if v > slice[best] {
                        best = i;
                    }
                }
                Value::text(values[best].clone())
            }
        }
    }
}

// Rebuild the skipped index after deserialisation.
impl TableEncoder {
    /// Restore internal lookup tables (needed after `serde` round-trips
    /// because the hash index is not serialised).
    pub fn rebuild_indexes(&mut self) {
        for spec in &mut self.specs {
            if let ColSpec::Categorical { values, index } = spec {
                *index = values
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (v.clone(), i))
                    .collect();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::{AttrType, Schema};

    fn mixed_table() -> Table {
        let mut t = Table::new(
            "m",
            Schema::new(&[("age", AttrType::Int), ("city", AttrType::Categorical)]),
        );
        t.push(vec![Value::Int(20), Value::text("paris")]);
        t.push(vec![Value::Int(40), Value::text("berlin")]);
        t.push(vec![Value::Null, Value::text("paris")]);
        t.push(vec![Value::Int(60), Value::Null]);
        t
    }

    #[test]
    fn width_and_ranges() {
        let enc = TableEncoder::fit(&mixed_table(), 10);
        assert_eq!(enc.width(), 1 + 2);
        assert_eq!(enc.column_range(0), 0..1);
        assert_eq!(enc.column_range(1), 1..3);
    }

    #[test]
    fn encode_standardises_and_one_hots() {
        let t = mixed_table();
        let enc = TableEncoder::fit(&t, 10);
        let (x, obs) = enc.encode(&t);
        // Age mean = 40, so row 1 encodes to 0.
        assert!(x.get(1, 0).abs() < 1e-6);
        // Row 0 city = paris (more frequent → slot 0).
        assert_eq!(x.get(0, 1), 1.0);
        assert_eq!(x.get(0, 2), 0.0);
        // Nulls: observed flags false and zero encoding.
        assert!(!obs[2][0]);
        assert!(!obs[3][1]);
        assert_eq!(x.get(3, 1), 0.0);
        assert_eq!(x.get(3, 2), 0.0);
    }

    #[test]
    fn csr_encode_matches_dense() {
        let t = mixed_table();
        let enc = TableEncoder::fit(&t, 10);
        let (dense, obs_d) = enc.encode(&t);
        let (sparse, obs_s) = enc.encode_csr(&t);
        assert_eq!(obs_d, obs_s);
        assert_eq!(sparse.rows(), t.len());
        assert_eq!(sparse.cols(), enc.width());
        assert_eq!(sparse.to_dense().data, dense.data);
        // At most one nonzero per column per row.
        assert!(sparse.nnz() <= t.len() * enc.arity());
    }

    #[test]
    fn decode_round_trips() {
        let t = mixed_table();
        let enc = TableEncoder::fit(&t, 10);
        let (x, _) = enc.encode(&t);
        let age = enc.decode_cell(0, x.row_slice(0));
        assert!((age.as_f64().expect("num") - 20.0).abs() < 1e-3);
        let city = enc.decode_cell(1, x.row_slice(0));
        assert_eq!(city, Value::text("paris"));
    }

    #[test]
    fn domain_cap_hides_rare_values() {
        let t = mixed_table();
        let enc = TableEncoder::fit(&t, 1); // keep only "paris"
        let (x, obs) = enc.encode(&t);
        // Berlin is out of domain → all zeros, unobserved.
        assert_eq!(x.get(1, 1), 0.0);
        assert!(!obs[1][1]);
    }

    #[test]
    fn constant_numeric_column_keeps_floor_std() {
        let mut t = Table::new("c", Schema::new(&[("x", AttrType::Int)]));
        t.push(vec![Value::Int(5)]);
        t.push(vec![Value::Int(5)]);
        let enc = TableEncoder::fit(&t, 4);
        let (x, _) = enc.encode(&t);
        assert!(x.get(0, 0).is_finite());
    }
}
