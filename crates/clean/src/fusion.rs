//! Knowledge fusion: reconciling conflicting values from multiple
//! sources (§5.3).
//!
//! "Information integration in the presence of multiple, possibly
//! conflicting data is very challenging. ... One could simply treat
//! this as a missing value problem." Three resolvers are provided:
//! majority vote, Dawid–Skene-flavoured source-accuracy weighting, and
//! the treat-as-missing DAE path via [`crate::impute::DaeImputer`].

use dc_relational::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One source's claim about one (entity, attribute) slot.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SourceClaim {
    /// Claiming source id.
    pub source: usize,
    /// Entity (object) id.
    pub entity: usize,
    /// Attribute index.
    pub attr: usize,
    /// The claimed value.
    pub value: Value,
}

/// Which resolver to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FusionStrategy {
    /// Plain per-slot majority vote.
    MajorityVote,
    /// Iterative source-accuracy weighting (data-fusion style EM): a
    /// source's vote counts proportionally to how often it agrees with
    /// the current consensus.
    SourceAccuracy {
        /// EM iterations.
        iterations: usize,
    },
}

/// Resolve claims to one value per `(entity, attr)` slot.
pub fn fuse(claims: &[SourceClaim], strategy: FusionStrategy) -> HashMap<(usize, usize), Value> {
    match strategy {
        FusionStrategy::MajorityVote => fuse_weighted(claims, &uniform_weights(claims)),
        FusionStrategy::SourceAccuracy { iterations } => {
            let mut weights = uniform_weights(claims);
            let mut consensus = fuse_weighted(claims, &weights);
            for _ in 0..iterations {
                // E-step: source accuracy = agreement with consensus.
                let mut agree: HashMap<usize, (f64, f64)> = HashMap::new();
                for c in claims {
                    let entry = agree.entry(c.source).or_insert((0.0, 0.0));
                    entry.1 += 1.0;
                    if consensus.get(&(c.entity, c.attr)) == Some(&c.value) {
                        entry.0 += 1.0;
                    }
                }
                for (src, (hits, total)) in agree {
                    // Laplace-smoothed accuracy turned into a log-odds
                    // vote weight (Dawid–Skene style): two mediocre
                    // sources must not outvote one reliable source, so
                    // the weight must grow super-linearly in accuracy.
                    let acc = (hits + 1.0) / (total + 2.0);
                    let w = (acc / (1.0 - acc)).ln().max(0.05);
                    weights.insert(src, w);
                }
                // M-step: re-vote with new weights.
                consensus = fuse_weighted(claims, &weights);
            }
            consensus
        }
    }
}

fn uniform_weights(claims: &[SourceClaim]) -> HashMap<usize, f64> {
    claims.iter().map(|c| (c.source, 1.0)).collect()
}

fn fuse_weighted(
    claims: &[SourceClaim],
    weights: &HashMap<usize, f64>,
) -> HashMap<(usize, usize), Value> {
    let mut votes: HashMap<(usize, usize), HashMap<String, (f64, Value)>> = HashMap::new();
    for c in claims {
        if c.value.is_null() {
            continue;
        }
        let w = *weights.get(&c.source).unwrap_or(&1.0);
        let slot = votes.entry((c.entity, c.attr)).or_default();
        let entry = slot
            .entry(c.value.canonical())
            .or_insert((0.0, c.value.clone()));
        entry.0 += w;
    }
    votes
        .into_iter()
        .map(|(slot, options)| {
            let best = options
                .into_iter()
                .max_by(|a, b| {
                    a.1 .0
                        .partial_cmp(&b.1 .0)
                        .expect("finite weights")
                        .then(b.0.cmp(&a.0))
                })
                .map(|(_, (_, v))| v)
                .expect("slot has at least one claim");
            (slot, best)
        })
        .collect()
}

/// Accuracy of a fused assignment against ground truth
/// `(entity, attr) → value`.
pub fn fusion_accuracy(
    fused: &HashMap<(usize, usize), Value>,
    truth: &HashMap<(usize, usize), Value>,
) -> f64 {
    if truth.is_empty() {
        return 0.0;
    }
    let hits = truth
        .iter()
        .filter(|(slot, v)| fused.get(slot) == Some(v))
        .count();
    hits as f64 / truth.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Simulate sources with different reliabilities claiming values
    /// for entities; returns (claims, truth).
    fn simulate(
        n_entities: usize,
        source_accuracies: &[f64],
        rng: &mut StdRng,
    ) -> (Vec<SourceClaim>, HashMap<(usize, usize), Value>) {
        let domain = ["paris", "berlin", "rome", "madrid"];
        let mut truth = HashMap::new();
        let mut claims = Vec::new();
        for e in 0..n_entities {
            let true_val = domain[rng.gen_range(0..domain.len())];
            truth.insert((e, 0), Value::text(true_val));
            for (s, &acc) in source_accuracies.iter().enumerate() {
                let claimed = if rng.gen_bool(acc) {
                    true_val
                } else {
                    // A wrong value.
                    loop {
                        let w = domain[rng.gen_range(0..domain.len())];
                        if w != true_val {
                            break w;
                        }
                    }
                };
                claims.push(SourceClaim {
                    source: s,
                    entity: e,
                    attr: 0,
                    value: Value::text(claimed),
                });
            }
        }
        (claims, truth)
    }

    #[test]
    fn majority_vote_resolves_clear_majorities() {
        let mut rng = StdRng::seed_from_u64(1);
        let (claims, truth) = simulate(100, &[0.9, 0.9, 0.9], &mut rng);
        let fused = fuse(&claims, FusionStrategy::MajorityVote);
        assert!(fusion_accuracy(&fused, &truth) > 0.9);
    }

    #[test]
    fn source_accuracy_beats_majority_with_bad_sources() {
        // Two noisy sources + one good one: majority often wrong when
        // the noisy pair agrees by chance; accuracy weighting recovers.
        let mut rng = StdRng::seed_from_u64(2);
        let (claims, truth) = simulate(300, &[0.95, 0.35, 0.35], &mut rng);
        let maj = fusion_accuracy(&fuse(&claims, FusionStrategy::MajorityVote), &truth);
        let em = fusion_accuracy(
            &fuse(&claims, FusionStrategy::SourceAccuracy { iterations: 5 }),
            &truth,
        );
        assert!(em > maj, "EM {em} should beat majority {maj}");
        assert!(em > 0.85, "EM accuracy {em}");
    }

    #[test]
    fn nulls_do_not_vote() {
        let claims = vec![
            SourceClaim {
                source: 0,
                entity: 0,
                attr: 0,
                value: Value::Null,
            },
            SourceClaim {
                source: 1,
                entity: 0,
                attr: 0,
                value: Value::text("x"),
            },
        ];
        let fused = fuse(&claims, FusionStrategy::MajorityVote);
        assert_eq!(fused.get(&(0, 0)), Some(&Value::text("x")));
    }

    #[test]
    fn deterministic_tie_break() {
        let claims = vec![
            SourceClaim {
                source: 0,
                entity: 0,
                attr: 0,
                value: Value::text("a"),
            },
            SourceClaim {
                source: 1,
                entity: 0,
                attr: 0,
                value: Value::text("b"),
            },
        ];
        let f1 = fuse(&claims, FusionStrategy::MajorityVote);
        let f2 = fuse(&claims, FusionStrategy::MajorityVote);
        assert_eq!(f1.get(&(0, 0)), f2.get(&(0, 0)));
    }
}
