//! Outlier detection (§3.1: "for outlier detection, one needs to detect
//! anomalous data that does not match a group of values").
//!
//! Three detectors at increasing sophistication: per-column z-scores,
//! embedding distance to the column centroid, and autoencoder
//! reconstruction error (the deep path, reusing `dc_nn::ae`).

use crate::encode::TableEncoder;
use dc_nn::ae::Autoencoder;
use dc_nn::optim::Adam;
use dc_relational::Table;
use rand::rngs::StdRng;

/// Rows whose value in `col` deviates more than `threshold` standard
/// deviations from the column mean (numeric columns only).
pub fn zscore_outliers(table: &Table, col: usize, threshold: f64) -> Vec<usize> {
    let vals: Vec<(usize, f64)> = table
        .rows
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r[col].as_f64().map(|v| (i, v)))
        .collect();
    if vals.len() < 2 {
        return Vec::new();
    }
    let mean = vals.iter().map(|(_, v)| v).sum::<f64>() / vals.len() as f64;
    let var = vals
        .iter()
        .map(|(_, v)| (v - mean) * (v - mean))
        .sum::<f64>()
        / vals.len() as f64;
    let std = var.sqrt().max(1e-12);
    vals.into_iter()
        .filter(|(_, v)| ((v - mean) / std).abs() > threshold)
        .map(|(i, _)| i)
        .collect()
}

/// Train an autoencoder on the encoded table and return per-row
/// reconstruction errors — high scores are outlier candidates
/// ("anomalous data that does not match a group of values").
pub fn ae_outlier_scores(
    table: &Table,
    encoder: &TableEncoder,
    latent: usize,
    epochs: usize,
    rng: &mut StdRng,
) -> Vec<f32> {
    let (x, _) = encoder.encode(table);
    let mut ae = Autoencoder::new(encoder.width(), &[encoder.width() / 2], latent, rng);
    let mut opt = Adam::new(0.005);
    ae.fit(&x, &mut opt, epochs, 32, rng);
    ae.reconstruction_errors(&x)
}

/// Cosine-distance of each row's embedding vector from the mean vector;
/// rows far from the centroid "do not match the group".
pub fn centroid_distances(vectors: &[Vec<f32>]) -> Vec<f32> {
    use dc_tensor::tensor::cosine;
    if vectors.is_empty() {
        return Vec::new();
    }
    let d = vectors[0].len();
    let mut mean = vec![0.0f32; d];
    for v in vectors {
        for (m, &x) in mean.iter_mut().zip(v) {
            *m += x;
        }
    }
    let inv = 1.0 / vectors.len() as f32;
    mean.iter_mut().for_each(|m| *m *= inv);
    vectors.iter().map(|v| 1.0 - cosine(v, &mean)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::{AttrType, Schema, Value};
    use rand::SeedableRng;

    #[test]
    fn zscore_finds_planted_outlier() {
        let mut t = Table::new("z", Schema::new(&[("x", AttrType::Float)]));
        for _ in 0..30 {
            t.push(vec![Value::Float(10.0)]);
        }
        for i in 0..10 {
            t.push(vec![Value::Float(10.0 + (i as f64) * 0.1)]);
        }
        t.push(vec![Value::Float(1000.0)]);
        let out = zscore_outliers(&t, 0, 3.0);
        assert_eq!(out, vec![40]);
    }

    #[test]
    fn zscore_handles_nulls_and_tiny_columns() {
        let mut t = Table::new("z", Schema::new(&[("x", AttrType::Float)]));
        t.push(vec![Value::Null]);
        assert!(zscore_outliers(&t, 0, 2.0).is_empty());
    }

    #[test]
    fn ae_scores_rank_anomalous_row_highest() {
        // Inliers satisfy y ≈ x; the outlier breaks the correlation
        // while keeping each marginal in range, so per-column z-scores
        // cannot see it but a 1-D-bottleneck autoencoder can.
        let mut rng = StdRng::seed_from_u64(700);
        let mut t = Table::new(
            "corr",
            Schema::new(&[("x", AttrType::Float), ("y", AttrType::Float)]),
        );
        for i in 0..60 {
            let x = (i as f64) / 10.0 - 3.0;
            t.push(vec![Value::Float(x), Value::Float(x)]);
        }
        t.push(vec![Value::Float(2.5), Value::Float(-2.5)]);
        let outlier_row = t.len() - 1;
        assert!(zscore_outliers(&t, 0, 3.0).is_empty());
        assert!(zscore_outliers(&t, 1, 3.0).is_empty());
        let encoder = TableEncoder::fit(&t, 8);
        let scores = ae_outlier_scores(&t, &encoder, 1, 150, &mut rng);
        let max_idx = scores
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        assert_eq!(max_idx, outlier_row, "scores {scores:?}");
    }

    #[test]
    fn centroid_distance_flags_flipped_vector() {
        let mut vs = vec![vec![1.0f32, 0.1]; 20];
        vs.push(vec![-1.0, -0.1]);
        let d = centroid_distances(&vs);
        let max_idx = d
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("nonempty");
        assert_eq!(max_idx, 20);
        assert!(centroid_distances(&[]).is_empty());
    }
}
