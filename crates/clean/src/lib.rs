//! # dc-clean
//!
//! Data cleaning (§5.3 of *"Data Curation with Deep Learning"*):
//! imputation, knowledge fusion, constraint repair, outlier detection
//! and canonical-form transformation.
//!
//! * [`encode::TableEncoder`] — the numeric bridge between typed tables
//!   and the neural models ("additional DC specific challenges include
//!   heterogeneity of data types"): standardised numerics + one-hot
//!   categoricals, with missingness masks.
//! * [`impute`] — mean/median/mode and kNN baselines next to the
//!   MIDA-style [`impute::DaeImputer`]: "a series of promising work on
//!   using DL models such as denoising autoencoders for multiple
//!   imputation ... fill in missing values with plausible predicted
//!   values depending on local (tuple level) and global (relation
//!   level) patterns".
//! * [`fusion`] — knowledge fusion: "in the presence of conflicting
//!   values, treat them as missing and identify the most plausible
//!   predicted values", plus majority-vote and source-accuracy
//!   baselines.
//! * [`repair`] — FD-driven minimal repair (the non-probabilistic
//!   "minimal FD repair" the paper references).
//! * [`outlier`] — z-score, embedding-distance and autoencoder
//!   reconstruction-error detectors.
//! * [`transform`] — canonical-form rewriting ("First Initial. Last
//!   Name", `nnn-nnn-nnnn` phones).

pub mod encode;
pub mod fusion;
pub mod impute;
pub mod outlier;
pub mod repair;
pub mod transform;

pub use encode::TableEncoder;
pub use fusion::{FusionStrategy, SourceClaim};
pub use impute::{DaeImputer, ImputeScore, KnnImputer, SimpleImputer, SimpleStrategy};
pub use outlier::{ae_outlier_scores, zscore_outliers};
pub use repair::{repair_fds, Repair};
pub use transform::{CanonicalForm, Canonicalizer};
