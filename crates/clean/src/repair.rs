//! Minimal FD repair — the "non-probabilistic (such as minimal FD
//! repair)" technique §5.3 cites as the classical alternative the DL
//! imputers are compared with.
//!
//! For each violated FD, rows are grouped by the LHS and every
//! disagreeing RHS is set to the group's majority value; the loop runs
//! to a fixpoint over all FDs (bounded, since each pass only rewrites
//! towards majorities).

use dc_relational::{FunctionalDependency, Table, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One applied repair.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Repair {
    /// Repaired row.
    pub row: usize,
    /// Repaired column.
    pub col: usize,
    /// Value before the repair.
    pub from: Value,
    /// Value after the repair.
    pub to: Value,
}

/// Repair `table` in place until every FD holds (or `max_rounds`
/// passes). Returns the applied repairs.
pub fn repair_fds(
    table: &mut Table,
    fds: &[FunctionalDependency],
    max_rounds: usize,
) -> Vec<Repair> {
    let mut repairs = Vec::new();
    for _round in 0..max_rounds {
        let mut changed = false;
        for fd in fds {
            // Group rows by LHS key.
            let mut groups: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            'rows: for (i, row) in table.rows.iter().enumerate() {
                if row[fd.rhs].is_null() {
                    continue;
                }
                for &l in &fd.lhs {
                    if row[l].is_null() {
                        continue 'rows;
                    }
                }
                let key: Vec<Value> = fd.lhs.iter().map(|&l| row[l].clone()).collect();
                groups.entry(key).or_default().push(i);
            }
            for rows in groups.values() {
                // Majority RHS (deterministic tie-break on canonical).
                let mut counts: HashMap<String, (usize, Value)> = HashMap::new();
                for &i in rows {
                    let v = &table.rows[i][fd.rhs];
                    counts.entry(v.canonical()).or_insert((0, v.clone())).0 += 1;
                }
                if counts.len() <= 1 {
                    continue;
                }
                let (_, (_, majority)) = counts
                    .iter()
                    .max_by(|a, b| a.1 .0.cmp(&b.1 .0).then(b.0.cmp(a.0)))
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .expect("nonempty group");
                for &i in rows {
                    if table.rows[i][fd.rhs] != majority {
                        repairs.push(Repair {
                            row: i,
                            col: fd.rhs,
                            from: table.rows[i][fd.rhs].clone(),
                            to: majority.clone(),
                        });
                        table.rows[i][fd.rhs] = majority.clone();
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    repairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{people_fds, people_table, ErrorInjector, ErrorKind};
    use dc_relational::table::employee_example;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn repairs_figure_4_violation() {
        let mut t = employee_example();
        let fd = FunctionalDependency::new(vec![2], 3); // Dept ID → Name
        assert!(!fd.holds(&t));
        let repairs = repair_fds(&mut t, std::slice::from_ref(&fd), 5);
        assert!(fd.holds(&t));
        // Majority for dept 1 is Human Resources; row 3 (Finance) flips.
        assert_eq!(repairs.len(), 1);
        assert_eq!(repairs[0].row, 3);
        assert_eq!(repairs[0].to, Value::text("Human Resources"));
    }

    #[test]
    fn repairs_injected_violations_and_restores_truth() {
        let mut rng = StdRng::seed_from_u64(600);
        let clean = people_table(300, &mut rng);
        let fds = people_fds();
        let (mut dirty, report) =
            ErrorInjector::only(ErrorKind::FdViolation, 0.03).inject(&clean, &fds, &mut rng);
        assert!(fds.iter().any(|fd| !fd.holds(&dirty)));
        let repairs = repair_fds(&mut dirty, &fds, 10);
        for fd in &fds {
            assert!(fd.holds(&dirty), "{}", fd.display(&dirty));
        }
        assert!(!repairs.is_empty());
        // Majority repair should restore most corrupted cells exactly
        // (errors are a small minority in each group).
        let restored = report
            .errors
            .iter()
            .filter(|e| dirty.rows[e.row][e.col] == e.original)
            .count();
        assert!(
            restored as f64 / report.len() as f64 > 0.8,
            "restored {restored}/{}",
            report.len()
        );
    }

    #[test]
    fn clean_table_needs_no_repairs() {
        let mut rng = StdRng::seed_from_u64(601);
        let mut t = people_table(100, &mut rng);
        let repairs = repair_fds(&mut t, &people_fds(), 5);
        assert!(repairs.is_empty());
    }

    #[test]
    fn repair_is_minimal_flips_minority_only() {
        let mut t = employee_example();
        let fd = FunctionalDependency::new(vec![2], 3);
        let before = t.rows.clone();
        repair_fds(&mut t, &[fd], 5);
        // Only one cell changed.
        let mut diffs = 0;
        for (a, b) in before.iter().zip(&t.rows) {
            for (x, y) in a.iter().zip(b) {
                if x != y {
                    diffs += 1;
                }
            }
        }
        assert_eq!(diffs, 1);
    }
}
