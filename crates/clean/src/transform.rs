//! Canonical-form data transformation (§5.3).
//!
//! "Data Transformation is a fundamental problem in DC where one needs
//! to transform a given column such that all its values are in a
//! canonical form. Examples include 'First Initial. Last Name',
//! nnn-nnn-nnnn format for phone numbers, etc." This module provides
//! the rule-driven canonicaliser; the *learned* transformation path
//! (synthesising a program from examples) lives in `dc-synth`.

use dc_relational::{Table, Value};
use serde::{Deserialize, Serialize};

/// Supported canonical forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CanonicalForm {
    /// `F. Last` — first initial, dot, last token capitalised.
    FirstInitialLastName,
    /// `nnn-nnn-nnnn` — digits only, re-grouped.
    PhoneDashed,
    /// Lowercased, whitespace-collapsed text.
    LowerTrimmed,
    /// Title Case text.
    TitleCase,
}

/// Applies a [`CanonicalForm`] to strings/columns and checks conformity.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Canonicalizer {
    /// The target form.
    pub form: CanonicalForm,
}

impl Canonicalizer {
    /// With the given target form.
    pub fn new(form: CanonicalForm) -> Self {
        Canonicalizer { form }
    }

    /// Transform one string; `None` when the input cannot be put in the
    /// target form (e.g. a phone with the wrong digit count).
    pub fn apply(&self, s: &str) -> Option<String> {
        match self.form {
            CanonicalForm::FirstInitialLastName => {
                let tokens: Vec<&str> = s.split_whitespace().collect();
                if tokens.len() < 2 {
                    return None;
                }
                let first_initial = tokens[0].chars().next()?.to_uppercase();
                let last = tokens.last()?;
                Some(format!("{first_initial}. {}", capitalize(last)))
            }
            CanonicalForm::PhoneDashed => {
                let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
                if digits.len() != 10 {
                    return None;
                }
                Some(format!(
                    "{}-{}-{}",
                    &digits[0..3],
                    &digits[3..6],
                    &digits[6..10]
                ))
            }
            CanonicalForm::LowerTrimmed => Some(
                s.split_whitespace()
                    .collect::<Vec<_>>()
                    .join(" ")
                    .to_lowercase(),
            ),
            CanonicalForm::TitleCase => Some(
                s.split_whitespace()
                    .map(capitalize)
                    .collect::<Vec<_>>()
                    .join(" "),
            ),
        }
    }

    /// Is `s` already in canonical form?
    pub fn conforms(&self, s: &str) -> bool {
        self.apply(s).as_deref() == Some(s)
    }

    /// Canonicalise a column of a table copy; cells that cannot be
    /// transformed are left as-is. Returns the table and the count of
    /// rewritten cells.
    pub fn apply_column(&self, table: &Table, col: usize) -> (Table, usize) {
        let mut out = table.clone();
        let mut rewritten = 0;
        for row in &mut out.rows {
            if let Value::Text(s) = &row[col] {
                if let Some(t) = self.apply(s) {
                    if t != *s {
                        row[col] = Value::Text(t);
                        rewritten += 1;
                    }
                }
            }
        }
        (out, rewritten)
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + &c.as_str().to_lowercase(),
        None => String::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::{AttrType, Schema};

    #[test]
    fn first_initial_last_name() {
        let c = Canonicalizer::new(CanonicalForm::FirstInitialLastName);
        assert_eq!(c.apply("john smith"), Some("J. Smith".into()));
        assert_eq!(c.apply("Mary Jane Watson"), Some("M. Watson".into()));
        assert_eq!(c.apply("plato"), None);
        assert!(c.conforms("J. Smith"));
        assert!(!c.conforms("john smith"));
    }

    #[test]
    fn phone_formats_normalise() {
        let c = Canonicalizer::new(CanonicalForm::PhoneDashed);
        assert_eq!(c.apply("(212) 555 0199"), Some("212-555-0199".into()));
        assert_eq!(c.apply("2125550199"), Some("212-555-0199".into()));
        assert_eq!(c.apply("212-555-0199"), Some("212-555-0199".into()));
        assert_eq!(c.apply("555-0199"), None); // wrong digit count
        assert!(c.conforms("212-555-0199"));
    }

    #[test]
    fn lower_and_title_case() {
        let lower = Canonicalizer::new(CanonicalForm::LowerTrimmed);
        assert_eq!(lower.apply("  John   DOE "), Some("john doe".into()));
        let title = Canonicalizer::new(CanonicalForm::TitleCase);
        assert_eq!(title.apply("john doe"), Some("John Doe".into()));
    }

    #[test]
    fn apply_column_counts_rewrites() {
        let mut t = Table::new("p", Schema::new(&[("phone", AttrType::Text)]));
        t.push(vec![Value::text("(212) 555 0199")]);
        t.push(vec![Value::text("212-555-0199")]); // already canonical
        t.push(vec![Value::text("bad")]);
        t.push(vec![Value::Null]);
        let (out, rewritten) = Canonicalizer::new(CanonicalForm::PhoneDashed).apply_column(&t, 0);
        assert_eq!(rewritten, 1);
        assert_eq!(out.rows[0][0], Value::text("212-555-0199"));
        assert_eq!(out.rows[2][0], Value::text("bad"));
    }
}
