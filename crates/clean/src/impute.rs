//! Missing-value imputation: simple statistics, kNN and the MIDA-style
//! denoising autoencoder (§5.3).
//!
//! "A number of imputation techniques used in other areas (such as
//! mean/median) are not applicable to DC tasks" — they are implemented
//! here precisely so experiment E8 can show where the DAE's
//! pattern-aware predictions pull ahead (correlated attributes) and
//! where the simple baselines suffice.

use crate::encode::TableEncoder;
use dc_core::{DcError, DcResult};
use dc_nn::ae::{DenoisingAutoencoder, Noise};
use dc_nn::optim::Adam;
use dc_nn::train::{run_epochs_with_tape, DaeTrainer, TrainOpts};
use dc_relational::{Table, Value};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Strategy for [`SimpleImputer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SimpleStrategy {
    /// Mean for numerics, mode for everything else.
    MeanMode,
    /// Median for numerics, mode for everything else.
    MedianMode,
}

/// Column-statistic imputation.
#[derive(Clone, Debug)]
pub struct SimpleImputer {
    fills: Vec<Value>,
}

impl SimpleImputer {
    /// Fit fills from the observed values of `table`.
    pub fn fit(table: &Table, strategy: SimpleStrategy) -> Self {
        let fills = (0..table.schema.arity())
            .map(|c| {
                let nums: Vec<f64> = table.rows.iter().filter_map(|r| r[c].as_f64()).collect();
                let all_numeric = table
                    .rows
                    .iter()
                    .all(|r| r[c].is_null() || r[c].as_f64().is_some());
                if all_numeric && !nums.is_empty() {
                    let v = match strategy {
                        SimpleStrategy::MeanMode => nums.iter().sum::<f64>() / nums.len() as f64,
                        SimpleStrategy::MedianMode => {
                            let mut s = nums.clone();
                            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                            s[s.len() / 2]
                        }
                    };
                    Value::Float(v)
                } else {
                    // Mode of canonical strings.
                    let mut counts: std::collections::HashMap<String, usize> =
                        std::collections::HashMap::new();
                    for r in &table.rows {
                        if !r[c].is_null() {
                            *counts.entry(r[c].canonical()).or_insert(0) += 1;
                        }
                    }
                    counts
                        .into_iter()
                        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
                        .map(|(v, _)| Value::text(v))
                        .unwrap_or(Value::Null)
                }
            })
            .collect();
        SimpleImputer { fills }
    }

    /// Fill every null cell of a copy of `table`.
    pub fn impute(&self, table: &Table) -> Table {
        self.try_impute(table)
            .unwrap_or_else(|e| panic!("SimpleImputer::impute: {e}"))
    }

    /// [`Self::impute`] with a structured error instead of a panic when
    /// `table`'s shape does not match the fitted fills — the
    /// service-facing entry (dc-serve returns it as a 4xx).
    pub fn try_impute(&self, table: &Table) -> DcResult<Table> {
        if table.schema.arity() != self.fills.len() {
            return Err(DcError::invalid(format!(
                "SimpleImputer: table has {} columns, imputer was fitted on {}",
                table.schema.arity(),
                self.fills.len()
            )));
        }
        let mut out = table.clone();
        for row in &mut out.rows {
            for (c, v) in row.iter_mut().enumerate() {
                if v.is_null() {
                    *v = self.fills[c].clone();
                }
            }
        }
        Ok(out)
    }
}

/// k-nearest-neighbour imputation over encoded rows.
#[derive(Clone, Debug)]
pub struct KnnImputer {
    /// Neighbours consulted per missing cell.
    pub k: usize,
}

impl KnnImputer {
    /// Impute nulls from the `k` most similar rows (distance over
    /// mutually observed encoded slots; neighbours must observe the
    /// target column).
    pub fn impute(&self, table: &Table, encoder: &TableEncoder) -> Table {
        self.try_impute(table, encoder)
            .unwrap_or_else(|e| panic!("KnnImputer::impute: {e}"))
    }

    /// [`Self::impute`] with a structured error instead of a panic on a
    /// degenerate `k` or a table/encoder shape mismatch — the
    /// service-facing entry (dc-serve returns it as a 4xx).
    pub fn try_impute(&self, table: &Table, encoder: &TableEncoder) -> DcResult<Table> {
        if self.k == 0 {
            return Err(DcError::invalid("KnnImputer: k must be at least 1"));
        }
        if table.schema.arity() != encoder.arity() {
            return Err(DcError::invalid(format!(
                "KnnImputer: table has {} columns, encoder was fitted on {}",
                table.schema.arity(),
                encoder.arity()
            )));
        }
        let (x, observed) = encoder.encode(table);
        let mut out = table.clone();
        for i in 0..table.len() {
            for c in 0..table.schema.arity() {
                if !out.rows[i][c].is_null() {
                    continue;
                }
                // Keep the k nearest rows by distance over shared
                // slots: a bounded heap (dc_index::TopK) instead of
                // scoring into a Vec and fully sorting per cell. Ties
                // break toward the lower row id, like the seed's
                // stable ascending sort.
                let mut top = dc_index::TopK::smallest(self.k);
                for j in (0..table.len()).filter(|&j| j != i && observed[j][c]) {
                    let mut d = 0.0;
                    let mut shared = 0usize;
                    for (cc, (&oi, &oj)) in observed[i].iter().zip(observed[j].iter()).enumerate() {
                        if cc == c || !oi || !oj {
                            continue;
                        }
                        for s in encoder.column_range(cc) {
                            let diff = x.get(i, s) - x.get(j, s);
                            d += diff * diff;
                        }
                        shared += 1;
                    }
                    // No shared evidence → very far.
                    let dist = if shared == 0 {
                        f32::MAX
                    } else {
                        d / shared as f32
                    };
                    top.push(j, dist);
                }
                let neighbours: Vec<usize> =
                    top.into_sorted().into_iter().map(|h| h.index).collect();
                if neighbours.is_empty() {
                    continue;
                }
                out.rows[i][c] = aggregate_neighbours(table, c, &neighbours);
            }
        }
        Ok(out)
    }
}

fn aggregate_neighbours(table: &Table, c: usize, neighbours: &[usize]) -> Value {
    let nums: Vec<f64> = neighbours
        .iter()
        .filter_map(|&j| table.rows[j][c].as_f64())
        .collect();
    let numeric = neighbours
        .iter()
        .all(|&j| table.rows[j][c].as_f64().is_some());
    if numeric && !nums.is_empty() {
        Value::Float(nums.iter().sum::<f64>() / nums.len() as f64)
    } else {
        let mut counts: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        for &j in neighbours {
            if !table.rows[j][c].is_null() {
                *counts.entry(table.rows[j][c].canonical()).or_insert(0) += 1;
            }
        }
        counts
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
            .map(|(v, _)| Value::text(v))
            .unwrap_or(Value::Null)
    }
}

/// MIDA-style multiple imputation with a denoising autoencoder.
pub struct DaeImputer {
    encoder: TableEncoder,
    dae: DenoisingAutoencoder,
}

impl DaeImputer {
    /// Train on the observed parts of `table` (nulls already encode as
    /// zeros, matching the DAE's masking corruption), then impute by
    /// reconstruction.
    pub fn train(
        table: &Table,
        encoder: TableEncoder,
        hidden: &[usize],
        latent: usize,
        epochs: usize,
        rng: &mut StdRng,
    ) -> Self {
        let (x, _) = encoder.encode(table);
        // The step tape: the dc-check probe below and every training
        // step record on it, so the probe's buffer is recycled into the
        // pool instead of being a throwaway allocation.
        let tape = dc_tensor::Tape::new();
        if dc_check::enabled() {
            // The DAE hot path validates its own graphs; here we vet the
            // *input* — a non-finite encoding would poison every epoch.
            let _ = tape.var_from(&x);
            let poisoned = dc_check::sanitize(&tape);
            assert!(
                poisoned.is_empty(),
                "dc-check [DaeImputer::train]: encoded table is not finite\n{}",
                dc_check::render(&poisoned)
            );
            tape.recycle();
        }
        let mut dae = DenoisingAutoencoder::new(
            encoder.width(),
            hidden,
            latent,
            Noise::Masking { p: 0.2 },
            rng,
        );
        let opts = TrainOpts::default()
            .with_epochs(epochs)
            .with_lr(0.005)
            .with_batch_size(32);
        let mut opt = Adam::new(opts.lr);
        let mut trainer = DaeTrainer {
            model: &mut dae,
            opt: &mut opt,
        };
        run_epochs_with_tape("clean.impute", &mut trainer, &x, None, &opts, rng, &tape);
        DaeImputer { encoder, dae }
    }

    /// Fill every null cell with the decoded reconstruction.
    pub fn impute(&self, table: &Table) -> Table {
        self.try_impute(table)
            .unwrap_or_else(|e| panic!("DaeImputer::impute: {e}"))
    }

    /// [`Self::impute`] with a structured error instead of a panic on a
    /// table/encoder shape mismatch — the service-facing entry
    /// (dc-serve returns it as a 4xx).
    pub fn try_impute(&self, table: &Table) -> DcResult<Table> {
        if table.schema.arity() != self.encoder.arity() {
            return Err(DcError::invalid(format!(
                "DaeImputer: table has {} columns, encoder was fitted on {}",
                table.schema.arity(),
                self.encoder.arity()
            )));
        }
        let (x, _) = self.encoder.encode(table);
        let recon = self.dae.denoise(&x);
        let mut out = table.clone();
        for i in 0..table.len() {
            for c in 0..table.schema.arity() {
                if out.rows[i][c].is_null() {
                    out.rows[i][c] = self.encoder.decode_cell(c, recon.row_slice(i));
                }
            }
        }
        Ok(out)
    }

    /// *Multiple* imputation — the "multiple" of MIDA (§5.3: "multiple
    /// imputation (where more than one cell has missing values)"
    /// produces several plausible completions, not one point estimate).
    /// Each draw perturbs the observed inputs with the DAE's own
    /// training corruption before reconstruction, so the spread across
    /// draws reflects the model's uncertainty.
    pub fn impute_multiple(&self, table: &Table, m: usize, rng: &mut StdRng) -> Vec<Table> {
        let (x, _) = self.encoder.encode(table);
        (0..m)
            .map(|_| {
                let corrupted = self.dae.noise.corrupt(&x, rng);
                let recon = self.dae.denoise(&corrupted);
                let mut out = table.clone();
                for i in 0..table.len() {
                    for c in 0..table.schema.arity() {
                        if out.rows[i][c].is_null() {
                            out.rows[i][c] = self.encoder.decode_cell(c, recon.row_slice(i));
                        }
                    }
                }
                out
            })
            .collect()
    }

    /// Per-cell agreement across multiple imputations: for every
    /// originally-null cell, the fraction of draws agreeing with the
    /// modal completion — a confidence score for review queues.
    pub fn imputation_confidence(
        &self,
        table: &Table,
        m: usize,
        rng: &mut StdRng,
    ) -> Vec<((usize, usize), f64)> {
        let draws = self.impute_multiple(table, m, rng);
        let mut out = Vec::new();
        for i in 0..table.len() {
            for c in 0..table.schema.arity() {
                if !table.rows[i][c].is_null() {
                    continue;
                }
                let mut counts: std::collections::HashMap<String, usize> =
                    std::collections::HashMap::new();
                for d in &draws {
                    *counts.entry(d.rows[i][c].canonical()).or_insert(0) += 1;
                }
                let modal = counts.values().copied().max().unwrap_or(0);
                out.push(((i, c), modal as f64 / m.max(1) as f64));
            }
        }
        out
    }
}

/// Imputation quality against ground truth: RMSE on numeric cells and
/// accuracy on categorical cells (scored only where the dirty table was
/// null and the clean table was not).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ImputeScore {
    /// Root-mean-squared error over imputed numeric cells.
    pub numeric_rmse: f64,
    /// Number of numeric cells scored.
    pub numeric_cells: usize,
    /// Exact-match accuracy over imputed categorical cells.
    pub categorical_accuracy: f64,
    /// Number of categorical cells scored.
    pub categorical_cells: usize,
}

/// Score an imputed table cell-by-cell against the clean original.
pub fn score_imputation(clean: &Table, dirty: &Table, imputed: &Table) -> ImputeScore {
    let mut se = 0.0;
    let mut nnum = 0usize;
    let mut hits = 0usize;
    let mut ncat = 0usize;
    for i in 0..clean.len() {
        for c in 0..clean.schema.arity() {
            if !dirty.rows[i][c].is_null() || clean.rows[i][c].is_null() {
                continue;
            }
            let truth = &clean.rows[i][c];
            let guess = &imputed.rows[i][c];
            match truth.as_f64() {
                Some(t) if matches!(truth, Value::Int(_) | Value::Float(_)) => {
                    let g = guess.as_f64().unwrap_or(0.0);
                    se += (t - g) * (t - g);
                    nnum += 1;
                }
                _ => {
                    ncat += 1;
                    if guess.canonical() == truth.canonical() {
                        hits += 1;
                    }
                }
            }
        }
    }
    ImputeScore {
        numeric_rmse: if nnum == 0 {
            0.0
        } else {
            (se / nnum as f64).sqrt()
        },
        numeric_cells: nnum,
        categorical_accuracy: if ncat == 0 {
            0.0
        } else {
            hits as f64 / ncat as f64
        },
        categorical_cells: ncat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{people_table, ErrorInjector, ErrorKind};
    use rand::SeedableRng;

    fn dirty_people(rng: &mut StdRng) -> (Table, Table) {
        let clean = people_table(250, rng);
        let (dirty, _) = ErrorInjector::only(ErrorKind::Null, 0.08).inject(&clean, &[], rng);
        (clean, dirty)
    }

    #[test]
    fn simple_imputer_fills_all_nulls() {
        let mut rng = StdRng::seed_from_u64(500);
        let (_, dirty) = dirty_people(&mut rng);
        let imp = SimpleImputer::fit(&dirty, SimpleStrategy::MeanMode);
        let filled = imp.impute(&dirty);
        assert_eq!(filled.null_rate(), 0.0);
    }

    #[test]
    fn median_differs_from_mean_on_skewed_data() {
        use dc_relational::{AttrType, Schema};
        let mut t = Table::new("s", Schema::new(&[("x", AttrType::Float)]));
        for v in [1.0, 1.0, 1.0, 100.0] {
            t.push(vec![Value::Float(v)]);
        }
        t.push(vec![Value::Null]);
        let mean = SimpleImputer::fit(&t, SimpleStrategy::MeanMode).impute(&t);
        let median = SimpleImputer::fit(&t, SimpleStrategy::MedianMode).impute(&t);
        assert!(mean.rows[4][0].as_f64().expect("num") > 20.0);
        assert!(median.rows[4][0].as_f64().expect("num") < 2.0);
    }

    #[test]
    fn knn_uses_correlated_columns() {
        // city determines country; kNN must exploit it.
        let mut rng = StdRng::seed_from_u64(501);
        let clean = people_table(200, &mut rng);
        let mut dirty = clean.clone();
        // Null out country (col 5) on 30 rows.
        for i in 0..30 {
            dirty.rows[i][5] = Value::Null;
        }
        let encoder = TableEncoder::fit(&dirty, 64);
        let filled = KnnImputer { k: 5 }.impute(&dirty, &encoder);
        let score = score_imputation(&clean, &dirty, &filled);
        assert!(
            score.categorical_accuracy > 0.8,
            "kNN country accuracy {score:?}"
        );
    }

    #[test]
    fn dae_beats_mode_on_correlated_categoricals() {
        let mut rng = StdRng::seed_from_u64(502);
        let clean = people_table(300, &mut rng);
        let mut dirty = clean.clone();
        for i in 0..60 {
            dirty.rows[i][5] = Value::Null; // country
        }
        let encoder = TableEncoder::fit(&dirty, 64);
        let dae = DaeImputer::train(&dirty, encoder, &[48], 24, 60, &mut rng);
        let dae_filled = dae.impute(&dirty);
        let dae_score = score_imputation(&clean, &dirty, &dae_filled);

        let mode_filled = SimpleImputer::fit(&dirty, SimpleStrategy::MeanMode).impute(&dirty);
        let mode_score = score_imputation(&clean, &dirty, &mode_filled);

        assert!(
            dae_score.categorical_accuracy > mode_score.categorical_accuracy,
            "DAE {dae_score:?} vs mode {mode_score:?}"
        );
        assert!(dae_score.categorical_accuracy > 0.6, "{dae_score:?}");
    }

    #[test]
    fn multiple_imputation_draws_differ_but_fill_everything() {
        let mut rng = StdRng::seed_from_u64(504);
        let clean = people_table(200, &mut rng);
        let mut dirty = clean.clone();
        for i in 0..40 {
            dirty.rows[i][5] = Value::Null;
        }
        let encoder = TableEncoder::fit(&dirty, 64);
        let dae = DaeImputer::train(&dirty, encoder, &[48], 24, 40, &mut rng);
        let draws = dae.impute_multiple(&dirty, 5, &mut rng);
        assert_eq!(draws.len(), 5);
        for d in &draws {
            assert_eq!(d.null_rate(), 0.0);
        }
        // Confidence scores are bounded and cover exactly the nulls.
        let conf = dae.imputation_confidence(&dirty, 5, &mut rng);
        assert_eq!(conf.len(), 40);
        for (_, c) in &conf {
            assert!((0.0..=1.0).contains(c));
        }
    }

    #[test]
    fn shape_mismatches_are_structured_errors() {
        use dc_relational::{AttrType, Schema};
        let mut rng = StdRng::seed_from_u64(505);
        let (_, dirty) = dirty_people(&mut rng);
        let encoder = TableEncoder::fit(&dirty, 16);
        let narrow = Table::new("n", Schema::new(&[("x", AttrType::Float)]));

        let simple = SimpleImputer::fit(&dirty, SimpleStrategy::MeanMode);
        assert_eq!(
            simple.try_impute(&narrow).unwrap_err().kind(),
            "invalid_input"
        );
        assert!(simple.try_impute(&dirty).is_ok());

        let knn = KnnImputer { k: 3 };
        assert_eq!(
            knn.try_impute(&narrow, &encoder).unwrap_err().kind(),
            "invalid_input"
        );
        assert_eq!(
            KnnImputer { k: 0 }
                .try_impute(&dirty, &encoder)
                .unwrap_err()
                .kind(),
            "invalid_input"
        );
    }

    #[test]
    fn score_only_counts_originally_missing_cells() {
        let mut rng = StdRng::seed_from_u64(503);
        let clean = people_table(20, &mut rng);
        let dirty = clean.clone(); // nothing missing
        let score = score_imputation(&clean, &dirty, &clean);
        assert_eq!(score.numeric_cells + score.categorical_cells, 0);
    }
}
