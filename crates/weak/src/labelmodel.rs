//! Label models: turning noisy LF votes into training labels.
//!
//! [`majority_vote`] is the baseline; [`GenerativeLabelModel`] is the
//! Snorkel-style generative model (§6.2.4 cites Snorkel's "convenient
//! programming mechanism to specify 'mostly correct' training data"):
//! per-LF accuracies are learned by EM under a conditionally-
//! independent naive-Bayes model, and items get posterior probabilistic
//! labels.

use crate::lf::LabelMatrix;
use serde::{Deserialize, Serialize};

/// A probabilistic label.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ProbLabel {
    /// Posterior probability that the item is positive.
    pub p_true: f64,
}

impl ProbLabel {
    /// Hard decision at 0.5.
    pub fn hard(&self) -> bool {
        self.p_true >= 0.5
    }
}

/// Majority vote over non-abstaining LFs; abstaining items get 0.5.
pub fn majority_vote(matrix: &LabelMatrix) -> Vec<ProbLabel> {
    matrix
        .votes
        .iter()
        .map(|votes| {
            let pos = votes.iter().filter(|v| **v == Some(true)).count();
            let neg = votes.iter().filter(|v| **v == Some(false)).count();
            let p_true = if pos + neg == 0 {
                0.5
            } else {
                pos as f64 / (pos + neg) as f64
            };
            ProbLabel { p_true }
        })
        .collect()
}

/// The generative label model: learns per-LF accuracy by EM.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GenerativeLabelModel {
    /// Learned accuracy of each LF (probability its vote equals the
    /// latent label, given it voted).
    pub accuracies: Vec<f64>,
    /// Learned class prior P(y = true).
    pub prior: f64,
}

impl GenerativeLabelModel {
    /// Fit by EM for `iterations` rounds.
    pub fn fit(matrix: &LabelMatrix, iterations: usize) -> Self {
        let m = matrix.num_lfs();
        let mut acc = vec![0.7f64; m];
        let mut prior = 0.5f64;
        let mut posteriors = majority_vote(matrix)
            .into_iter()
            .map(|p| p.p_true)
            .collect::<Vec<_>>();
        for _ in 0..iterations {
            // M-step: accuracy of each LF under *hard* current labels.
            // Soft counting attenuates towards the consensus accuracy
            // and never lets a strong LF pull away from mediocre ones;
            // hard EM converges to the crisp fixed point.
            for j in 0..m {
                let mut correct = 0.0f64;
                let mut total = 0.0f64;
                for (votes, &p) in matrix.votes.iter().zip(&posteriors) {
                    if (p - 0.5).abs() < 1e-9 {
                        continue; // a tied item carries no signal
                    }
                    let hard = p > 0.5;
                    if let Some(v) = votes[j] {
                        if v == hard {
                            correct += 1.0;
                        }
                        total += 1.0;
                    }
                }
                // Laplace smoothing keeps accuracies off the 0/1 walls.
                acc[j] = ((correct + 1.0) / (total + 2.0)).clamp(0.05, 0.95);
            }
            prior =
                (posteriors.iter().sum::<f64>() / posteriors.len().max(1) as f64).clamp(0.05, 0.95);
            // E-step: naive-Bayes posterior per item.
            for (votes, post) in matrix.votes.iter().zip(posteriors.iter_mut()) {
                let mut log_odds = (prior / (1.0 - prior)).ln();
                for (j, v) in votes.iter().enumerate() {
                    match v {
                        Some(true) => log_odds += (acc[j] / (1.0 - acc[j])).ln(),
                        Some(false) => log_odds -= (acc[j] / (1.0 - acc[j])).ln(),
                        None => {}
                    }
                }
                *post = 1.0 / (1.0 + (-log_odds).exp());
            }
        }
        GenerativeLabelModel {
            accuracies: acc,
            prior,
        }
    }

    /// Posterior labels for a (possibly new) label matrix.
    pub fn predict(&self, matrix: &LabelMatrix) -> Vec<ProbLabel> {
        matrix
            .votes
            .iter()
            .map(|votes| {
                let mut log_odds = (self.prior / (1.0 - self.prior)).ln();
                for (j, v) in votes.iter().enumerate() {
                    let a = self.accuracies[j];
                    match v {
                        Some(true) => log_odds += (a / (1.0 - a)).ln(),
                        Some(false) => log_odds -= (a / (1.0 - a)).ln(),
                        None => {}
                    }
                }
                ProbLabel {
                    p_true: 1.0 / (1.0 + (-log_odds).exp()),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lf::LabelingFunction;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Items are (ground truth, feature noise seeds); LFs see the truth
    /// through per-LF noise.
    fn noisy_matrix(n: usize, lf_accuracies: &[f64], rng: &mut StdRng) -> (LabelMatrix, Vec<bool>) {
        let truth: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let votes = truth
            .iter()
            .map(|&y| {
                lf_accuracies
                    .iter()
                    .map(|&a| {
                        if rng.gen_bool(0.2) {
                            None // abstain 20% of the time
                        } else if rng.gen_bool(a) {
                            Some(y)
                        } else {
                            Some(!y)
                        }
                    })
                    .collect()
            })
            .collect();
        (LabelMatrix { votes }, truth)
    }

    fn acc_of(labels: &[ProbLabel], truth: &[bool]) -> f64 {
        labels
            .iter()
            .zip(truth)
            .filter(|(l, &t)| l.hard() == t)
            .count() as f64
            / truth.len() as f64
    }

    #[test]
    fn majority_vote_handles_abstains() {
        let lfs = vec![LabelingFunction::new("yes", |_: &i32| Some(true))];
        let m = LabelMatrix::build(&[1], &lfs);
        assert_eq!(majority_vote(&m)[0].p_true, 1.0);
        let empty = LabelMatrix {
            votes: vec![vec![None, None]],
        };
        assert_eq!(majority_vote(&empty)[0].p_true, 0.5);
    }

    #[test]
    fn generative_model_recovers_lf_accuracies() {
        let mut rng = StdRng::seed_from_u64(800);
        let (m, _) = noisy_matrix(2000, &[0.9, 0.6, 0.55], &mut rng);
        let model = GenerativeLabelModel::fit(&m, 10);
        assert!(model.accuracies[0] > model.accuracies[1]);
        assert!(model.accuracies[1] >= model.accuracies[2] - 0.05);
        assert!(
            (model.accuracies[0] - 0.9).abs() < 0.1,
            "{:?}",
            model.accuracies
        );
    }

    #[test]
    fn generative_model_beats_majority_with_unequal_lfs() {
        let mut rng = StdRng::seed_from_u64(801);
        let (m, truth) = noisy_matrix(1500, &[0.92, 0.55, 0.55, 0.55], &mut rng);
        let mv = acc_of(&majority_vote(&m), &truth);
        let model = GenerativeLabelModel::fit(&m, 10);
        let gm = acc_of(&model.predict(&m), &truth);
        assert!(gm > mv, "generative {gm} should beat majority {mv}");
        assert!(gm > 0.85, "generative accuracy {gm}");
    }

    #[test]
    fn predict_on_fresh_matrix_uses_learned_accuracies() {
        let mut rng = StdRng::seed_from_u64(802);
        let (train, _) = noisy_matrix(1000, &[0.9, 0.6, 0.6], &mut rng);
        let model = GenerativeLabelModel::fit(&train, 10);
        let (test, truth) = noisy_matrix(500, &[0.9, 0.6, 0.6], &mut rng);
        let acc = acc_of(&model.predict(&test), &truth);
        assert!(acc > 0.8, "held-out accuracy {acc}");
    }
}
