//! Crowdsourced label inference (§6.2.6): "the output of crowd workers
//! are often noisy and hence requires sophisticated algorithms for
//! inferring true labels from noisy labels, learning the skill of
//! workers".
//!
//! Binary Dawid–Skene EM: latent item labels, per-worker accuracy.

use serde::{Deserialize, Serialize};

/// Crowd annotations: `answers[item]` is a list of `(worker, vote)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CrowdLabels {
    /// Per-item worker votes.
    pub answers: Vec<Vec<(usize, bool)>>,
    /// Number of workers.
    pub workers: usize,
}

/// Output of Dawid–Skene inference.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DawidSkeneResult {
    /// Posterior P(label = true) per item.
    pub posteriors: Vec<f64>,
    /// Estimated accuracy per worker.
    pub worker_accuracy: Vec<f64>,
}

impl DawidSkeneResult {
    /// Hard labels at 0.5.
    pub fn hard_labels(&self) -> Vec<bool> {
        self.posteriors.iter().map(|&p| p >= 0.5).collect()
    }
}

/// Run binary Dawid–Skene EM.
pub fn dawid_skene(labels: &CrowdLabels, iterations: usize) -> DawidSkeneResult {
    let n = labels.answers.len();
    let w = labels.workers;
    // Initialise posteriors with per-item majority.
    let mut post: Vec<f64> = labels
        .answers
        .iter()
        .map(|votes| {
            if votes.is_empty() {
                0.5
            } else {
                votes.iter().filter(|(_, v)| *v).count() as f64 / votes.len() as f64
            }
        })
        .collect();
    let mut acc = vec![0.7f64; w];
    let mut prior;
    for _ in 0..iterations {
        // M-step: worker accuracies under *hard* current labels (hard
        // EM — see dc-weak::labelmodel for why soft counting stalls).
        let mut correct = vec![0.0f64; w];
        let mut total = vec![0.0f64; w];
        for (votes, &p) in labels.answers.iter().zip(&post) {
            if (p - 0.5).abs() < 1e-9 {
                continue; // a tied item carries no signal
            }
            let hard = p > 0.5;
            for &(worker, vote) in votes {
                if vote == hard {
                    correct[worker] += 1.0;
                }
                total[worker] += 1.0;
            }
        }
        for j in 0..w {
            acc[j] = ((correct[j] + 1.0) / (total[j] + 2.0)).clamp(0.05, 0.95);
        }
        prior = (post.iter().sum::<f64>() / n.max(1) as f64).clamp(0.05, 0.95);
        // E-step: item posteriors.
        for (votes, p) in labels.answers.iter().zip(post.iter_mut()) {
            let mut log_odds = (prior / (1.0 - prior)).ln();
            for &(worker, vote) in votes {
                let a = acc[worker];
                if vote {
                    log_odds += (a / (1.0 - a)).ln();
                } else {
                    log_odds -= (a / (1.0 - a)).ln();
                }
            }
            *p = 1.0 / (1.0 + (-log_odds).exp());
        }
    }
    DawidSkeneResult {
        posteriors: post,
        worker_accuracy: acc,
    }
}

/// Simulate `workers` annotators with the given accuracies labelling
/// `n` items `votes_per_item` times. Returns `(labels, ground truth)`.
pub fn simulate_crowd(
    n: usize,
    worker_accuracies: &[f64],
    votes_per_item: usize,
    rng: &mut rand::rngs::StdRng,
) -> (CrowdLabels, Vec<bool>) {
    use rand::seq::SliceRandom;
    use rand::Rng;
    let truth: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let mut answers = Vec::with_capacity(n);
    let worker_ids: Vec<usize> = (0..worker_accuracies.len()).collect();
    for &y in &truth {
        let mut chosen = worker_ids.clone();
        chosen.shuffle(rng);
        chosen.truncate(votes_per_item.min(worker_ids.len()));
        let votes = chosen
            .into_iter()
            .map(|wid| {
                let correct = rng.gen_bool(worker_accuracies[wid]);
                (wid, if correct { y } else { !y })
            })
            .collect();
        answers.push(votes);
    }
    (
        CrowdLabels {
            answers,
            workers: worker_accuracies.len(),
        },
        truth,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn accuracy(pred: &[bool], truth: &[bool]) -> f64 {
        pred.iter().zip(truth).filter(|(p, t)| p == t).count() as f64 / truth.len() as f64
    }

    #[test]
    fn recovers_labels_and_worker_skills() {
        let mut rng = StdRng::seed_from_u64(1);
        let skills = [0.95, 0.85, 0.6, 0.55];
        let (labels, truth) = simulate_crowd(800, &skills, 3, &mut rng);
        let result = dawid_skene(&labels, 15);
        let acc = accuracy(&result.hard_labels(), &truth);
        assert!(acc > 0.9, "label recovery {acc}");
        // Estimated skill order matches the simulation.
        assert!(result.worker_accuracy[0] > result.worker_accuracy[2]);
        assert!(result.worker_accuracy[1] > result.worker_accuracy[3]);
    }

    #[test]
    fn beats_majority_when_skills_differ() {
        let mut rng = StdRng::seed_from_u64(2);
        // Agreement-based EM needs the reliable workers to corroborate
        // each other: a *single* good worker cannot be told apart from
        // the weak majority that forms its only reference. Two strong
        // workers among three weak ones is the canonical separable
        // regime.
        let skills = [0.9, 0.9, 0.55, 0.55, 0.55];
        let (labels, truth) = simulate_crowd(1500, &skills, 5, &mut rng);
        let majority: Vec<bool> = labels
            .answers
            .iter()
            .map(|votes| votes.iter().filter(|(_, v)| *v).count() * 2 >= votes.len())
            .collect();
        let ds = dawid_skene(&labels, 15);
        let ds_acc = accuracy(&ds.hard_labels(), &truth);
        let mv_acc = accuracy(&majority, &truth);
        assert!(ds_acc > mv_acc, "DS {ds_acc} vs majority {mv_acc}");
    }

    #[test]
    fn unlabelled_items_stay_uncertain() {
        let labels = CrowdLabels {
            answers: vec![vec![], vec![(0, true)]],
            workers: 1,
        };
        let result = dawid_skene(&labels, 5);
        // An unvoted item's posterior is the class prior — strictly
        // less confident than the voted item's.
        assert!(result.posteriors[0] < result.posteriors[1]);
        assert!(result.posteriors[1] > 0.5);
    }
}
