//! # dc-weak
//!
//! Taming deep learning's hunger for data (§6.2 of *"Data Curation with
//! Deep Learning"*): weak supervision, data augmentation, crowdsourcing
//! and transfer learning.
//!
//! * [`lf`] — labeling functions: "the domain expert can specify a high
//!   level mechanism to generate training data without endeavoring to
//!   make it perfect" (§6.2.4);
//! * [`labelmodel`] — majority vote and a Snorkel-style generative
//!   label model that learns per-LF accuracies by EM and emits
//!   probabilistic labels;
//! * [`augment`] — label-preserving transformations for DC training
//!   pairs (§6.2.2's translation/rotation analogues: typos,
//!   abbreviations, null injection, case noise);
//! * [`crowd`] — Dawid–Skene inference over noisy crowd workers
//!   ("sophisticated algorithms for inferring true labels from noisy
//!   labels, learning the skill of workers", §6.2.6);
//! * [`transfer`] — pre-train + fine-tune utilities (§6.2.5: "train a
//!   DL model for one task and tune the model for the new task").

pub mod augment;
pub mod crowd;
pub mod labelmodel;
pub mod lf;
pub mod transfer;

pub use augment::augment_er_pairs;
pub use crowd::{dawid_skene, CrowdLabels, DawidSkeneResult};
pub use labelmodel::{majority_vote, GenerativeLabelModel, ProbLabel};
pub use lf::{LabelMatrix, LabelingFunction};
pub use transfer::FineTuner;
