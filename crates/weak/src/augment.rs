//! Label-preserving data augmentation for DC training sets (§6.2.2).
//!
//! The image analogues are translation/rotation/shearing; for tuples
//! the transformations are the *error processes curation data actually
//! exhibits* — typos, abbreviations, dropped values, case noise — which
//! preserve the match/non-match label of an ER pair while multiplying
//! the training data ("provides many more synthetic training data").

use dc_relational::{Table, Value};
use rand::rngs::StdRng;
use rand::Rng;

/// One label-preserving perturbation of a tuple.
fn perturb_row(row: &[Value], rng: &mut StdRng) -> Vec<Value> {
    row.iter()
        .map(|v| match v {
            Value::Text(s) => {
                let roll = rng.gen_range(0..4);
                match roll {
                    0 => Value::Text(typo(s, rng)),
                    1 if s.contains(' ') => Value::Text(abbreviate(s, rng)),
                    2 => Value::Text(flip_case(s)),
                    3 if rng.gen_bool(0.3) => Value::Null,
                    _ => v.clone(),
                }
            }
            other => other.clone(),
        })
        .collect()
}

fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars;
    out.swap(i, i + 1);
    out.into_iter().collect()
}

fn abbreviate(s: &str, rng: &mut StdRng) -> String {
    let tokens: Vec<&str> = s.split(' ').collect();
    let i = rng.gen_range(0..tokens.len());
    tokens
        .iter()
        .enumerate()
        .map(|(j, t)| {
            if j == i {
                t.chars().next().map(String::from).unwrap_or_default()
            } else {
                t.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join(" ")
}

fn flip_case(s: &str) -> String {
    if s.chars().any(|c| c.is_uppercase()) {
        s.to_lowercase()
    } else {
        s.to_uppercase()
    }
}

/// Augment labelled ER pairs `copies` times: each copy perturbs one
/// side of the pair and appends it as a new row, keeping the label.
/// Returns the grown table plus the extended pair/label lists (the
/// originals come first, unchanged).
pub fn augment_er_pairs(
    table: &Table,
    pairs: &[(usize, usize)],
    labels: &[bool],
    copies: usize,
    rng: &mut StdRng,
) -> (Table, Vec<(usize, usize)>, Vec<bool>) {
    assert_eq!(pairs.len(), labels.len());
    let mut out = table.clone();
    let mut out_pairs = pairs.to_vec();
    let mut out_labels = labels.to_vec();
    for _ in 0..copies {
        for (&(a, b), &label) in pairs.iter().zip(labels) {
            // Perturb one side at random; a perturbed duplicate is
            // still a duplicate, a perturbed non-match is (with our
            // closed domains) still a non-match.
            let (keep, perturb) = if rng.gen_bool(0.5) { (a, b) } else { (b, a) };
            let new_row = perturb_row(&table.rows[perturb], rng);
            out.push(new_row);
            let new_idx = out.len() - 1;
            out_pairs.push((keep, new_idx));
            out_labels.push(label);
        }
    }
    (out, out_pairs, out_labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::{ErBenchmark, ErSuite};
    use rand::SeedableRng;

    #[test]
    fn augmentation_grows_data_preserving_labels() {
        let mut rng = StdRng::seed_from_u64(1);
        let bench = ErBenchmark::generate(ErSuite::Clean, 20, 2, &mut rng);
        let pairs = bench.labeled_pairs(2, &mut rng);
        let p: Vec<(usize, usize)> = pairs.iter().map(|x| (x.a, x.b)).collect();
        let l: Vec<bool> = pairs.iter().map(|x| x.label).collect();
        let (table, ap, al) = augment_er_pairs(&bench.table, &p, &l, 2, &mut rng);
        assert_eq!(ap.len(), p.len() * 3);
        assert_eq!(al.len(), ap.len());
        assert_eq!(table.len(), bench.table.len() + 2 * p.len());
        // Originals preserved verbatim.
        assert_eq!(&ap[..p.len()], &p[..]);
        assert_eq!(&al[..l.len()], &l[..]);
        // New pair indexes are valid.
        for &(a, b) in &ap {
            assert!(a < table.len() && b < table.len());
        }
    }

    #[test]
    fn perturbations_change_text_but_rarely_destroy_it() {
        let mut rng = StdRng::seed_from_u64(2);
        let row = vec![Value::text("john smith"), Value::Int(5)];
        let mut changed = 0;
        for _ in 0..50 {
            let p = perturb_row(&row, &mut rng);
            assert_eq!(p[1], Value::Int(5), "non-text cells untouched");
            if p[0] != row[0] {
                changed += 1;
            }
        }
        assert!(changed > 20, "perturbation too weak: {changed}/50");
    }

    #[test]
    fn flip_case_round_trips() {
        assert_eq!(flip_case("abc"), "ABC");
        assert_eq!(flip_case("ABC"), "abc");
        assert_eq!(flip_case("Abc"), "abc");
    }

    #[test]
    fn zero_copies_is_identity() {
        let mut rng = StdRng::seed_from_u64(3);
        let bench = ErBenchmark::generate(ErSuite::Clean, 5, 1, &mut rng);
        let (t, p, l) = augment_er_pairs(&bench.table, &[(0, 1)], &[false], 0, &mut rng);
        assert_eq!(t.len(), bench.table.len());
        assert_eq!(p, vec![(0, 1)]);
        assert_eq!(l, vec![false]);
    }
}
