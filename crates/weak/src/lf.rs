//! Labeling functions and the label matrix they produce.
//!
//! A labeling function votes `Some(true)`, `Some(false)` or abstains
//! (`None`) on each item — the §6.2.4 programming model ("she can say
//! that if two tuples have the same country but different capitals,
//! they are in error").

/// The boxed voting closure inside a [`LabelingFunction`].
type Labeler<T> = Box<dyn Fn(&T) -> Option<bool> + Send + Sync>;

/// A named weak labeler over items of type `T`.
pub struct LabelingFunction<T> {
    /// Human-readable name (shown in diagnostics).
    pub name: String,
    f: Labeler<T>,
}

impl<T> LabelingFunction<T> {
    /// Wrap a closure as a labeling function.
    pub fn new(
        name: impl Into<String>,
        f: impl Fn(&T) -> Option<bool> + Send + Sync + 'static,
    ) -> Self {
        LabelingFunction {
            name: name.into(),
            f: Box::new(f),
        }
    }

    /// Vote on one item.
    pub fn label(&self, item: &T) -> Option<bool> {
        (self.f)(item)
    }
}

/// The `items × functions` vote matrix.
#[derive(Clone, Debug, PartialEq)]
pub struct LabelMatrix {
    /// `votes[i][j]` is LF `j`'s vote on item `i`.
    pub votes: Vec<Vec<Option<bool>>>,
}

impl LabelMatrix {
    /// Apply every LF to every item.
    pub fn build<T>(items: &[T], lfs: &[LabelingFunction<T>]) -> Self {
        LabelMatrix {
            votes: items
                .iter()
                .map(|it| lfs.iter().map(|lf| lf.label(it)).collect())
                .collect(),
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.votes.len()
    }

    /// True when no item was labelled.
    pub fn is_empty(&self) -> bool {
        self.votes.is_empty()
    }

    /// Number of labeling functions.
    pub fn num_lfs(&self) -> usize {
        self.votes.first().map(Vec::len).unwrap_or(0)
    }

    /// Fraction of items on which LF `j` votes.
    pub fn coverage(&self, j: usize) -> f64 {
        if self.votes.is_empty() {
            return 0.0;
        }
        let n = self.votes.iter().filter(|v| v[j].is_some()).count();
        n as f64 / self.votes.len() as f64
    }

    /// Fraction of items where LFs `a` and `b` both vote and disagree.
    pub fn conflict(&self, a: usize, b: usize) -> f64 {
        if self.votes.is_empty() {
            return 0.0;
        }
        let n = self
            .votes
            .iter()
            .filter(|v| matches!((v[a], v[b]), (Some(x), Some(y)) if x != y))
            .count();
        n as f64 / self.votes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lfs() -> Vec<LabelingFunction<i32>> {
        vec![
            LabelingFunction::new("positive", |x: &i32| (*x > 0).then_some(true)),
            LabelingFunction::new("negative", |x: &i32| (*x < 0).then_some(false)),
            LabelingFunction::new("even_true", |x: &i32| Some(x % 2 == 0)),
        ]
    }

    #[test]
    fn matrix_shape_and_votes() {
        let items = [3, -2, 0];
        let m = LabelMatrix::build(&items, &lfs());
        assert_eq!(m.len(), 3);
        assert_eq!(m.num_lfs(), 3);
        assert_eq!(m.votes[0], vec![Some(true), None, Some(false)]);
        assert_eq!(m.votes[1], vec![None, Some(false), Some(true)]);
    }

    #[test]
    fn coverage_counts_non_abstains() {
        let items = [3, -2, 0, 5];
        let m = LabelMatrix::build(&items, &lfs());
        assert_eq!(m.coverage(0), 0.5); // votes on 3 and 5
        assert_eq!(m.coverage(2), 1.0);
    }

    #[test]
    fn conflict_requires_both_votes() {
        let items = [3, -2];
        let m = LabelMatrix::build(&items, &lfs());
        // LF0 vs LF2 on item 0: true vs false → conflict on 1 of 2.
        assert_eq!(m.conflict(0, 2), 0.5);
        // LF0 abstains on -2 → no conflict there.
        assert_eq!(m.conflict(0, 1), 0.0);
    }
}
