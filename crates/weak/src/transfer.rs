//! Transfer learning utilities (§6.2.5): "train a DL model for one task
//! and tune the model for the new task by using the limited labeled
//! data instead of starting from scratch", and the two pre-trained-
//! model modes of §3.3 — (a) feature extraction, (b) fine-tuning.

use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::mlp::Mlp;
use dc_nn::optim::Optimizer;
use dc_nn::train::{run_epochs, Batch, EpochStats, StepStats, TrainCtx, TrainOpts, Trainer};
use dc_tensor::{Tape, Tensor};
use rand::rngs::StdRng;

/// A pre-trained trunk with a fresh task head; the first
/// `frozen_layers` trunk layers are excluded from updates.
pub struct FineTuner {
    /// The model (trunk layers + new head as the final layer).
    pub model: Mlp,
    /// Number of leading layers never updated.
    pub frozen_layers: usize,
}

impl FineTuner {
    /// Replace the head of a pre-trained model with a fresh layer of
    /// `out_dim` outputs, freezing the first `frozen_layers` layers.
    ///
    /// Mode (a) of §3.3 — pure feature extraction — is
    /// `frozen_layers = trunk depth`; mode (b) — fine-tuning — freezes
    /// fewer.
    pub fn new(
        mut pretrained: Mlp,
        out_dim: usize,
        frozen_layers: usize,
        rng: &mut StdRng,
    ) -> Self {
        let last = pretrained
            .layers
            .pop()
            .expect("pretrained model has layers");
        let feature_dim = last.in_dim();
        pretrained.layers.push(dc_nn::linear::Linear::new(
            feature_dim,
            out_dim,
            Activation::Identity,
            rng,
        ));
        assert!(frozen_layers < pretrained.layers.len());
        FineTuner {
            model: pretrained,
            frozen_layers,
        }
    }

    /// One fine-tuning step; only unfrozen layers receive updates.
    /// Returns the loss.
    ///
    /// Records on a throwaway tape; the pooled hot path used by
    /// [`run_epochs`] is [`FineTuner::train_batch_on`].
    pub fn train_batch(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        loss: LossKind,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let tape = Tape::new();
        self.train_batch_on(&tape, x, y, loss, opt)
    }

    /// [`FineTuner::train_batch`] recording on a caller-owned
    /// (typically recycled) tape.
    pub fn train_batch_on(
        &mut self,
        tape: &Tape,
        x: &Tensor,
        y: &Tensor,
        loss: LossKind,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let vx = tape.var_from(x);
        let vars = self.model.bind(tape);
        let out = self.model.forward_tape(tape, vx, &vars, None);
        let loss_var = match loss {
            LossKind::Mse => tape.mse_loss(out, y.clone()),
            LossKind::Bce { w_neg, w_pos } => {
                let labels: Vec<bool> = y.data.iter().map(|&v| v >= 0.5).collect();
                tape.bce_with_logits(
                    out,
                    dc_nn::loss::target_tensor(&labels),
                    dc_nn::loss::weight_tensor(&labels, w_neg, w_pos),
                )
            }
            LossKind::SoftmaxCe => {
                let labels: Vec<usize> = y.data.iter().map(|&v| v as usize).collect();
                tape.softmax_ce(out, labels)
            }
        };
        let lv = tape.item(loss_var);
        tape.backward(loss_var);
        opt.begin_step();
        for (slot, (layer, vars)) in self.model.layers.iter_mut().zip(&vars).enumerate() {
            if slot < self.frozen_layers {
                continue;
            }
            tape.with_grad(vars.w, |gw| {
                tape.with_grad(vars.b, |gb| layer.apply_grads(opt, slot, gw, gb))
            });
        }
        lv
    }

    /// Fine-tune for `opts.epochs` shuffled minibatch passes through
    /// the unified [`run_epochs`] loop; returns per-epoch mean losses.
    pub fn fit(
        &mut self,
        x: &Tensor,
        y: &Tensor,
        loss: LossKind,
        opt: &mut dyn Optimizer,
        opts: &TrainOpts,
        rng: &mut StdRng,
    ) -> Vec<EpochStats> {
        let mut trainer = FineTuneTrainer {
            tuner: self,
            loss,
            opt,
        };
        run_epochs("weak.finetune", &mut trainer, x, Some(y), opts, rng)
    }
}

/// [`Trainer`] over a [`FineTuner`] with a fixed loss and optimiser.
pub struct FineTuneTrainer<'a> {
    /// The fine-tuner being trained.
    pub tuner: &'a mut FineTuner,
    /// Loss applied to each batch.
    pub loss: LossKind,
    /// Optimiser shared across steps.
    pub opt: &'a mut dyn Optimizer,
}

impl Trainer for FineTuneTrainer<'_> {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let loss =
            self.tuner
                .train_batch_on(ctx.tape, &batch.x, batch.targets(), self.loss, self.opt);
        StepStats { loss, aux: 0.0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_nn::optim::Adam;
    use rand::SeedableRng;

    /// Source task: classify x by sign of (x₀ + x₁). Target task: sign
    /// of (x₀ + x₁) XOR shifted — related representation, new head.
    #[test]
    fn fine_tuning_converges_faster_than_scratch_with_frozen_trunk() {
        let mut rng = StdRng::seed_from_u64(1);
        // Pre-train on source task.
        let xs = Tensor::randn(200, 4, 1.0, &mut rng);
        let ys = Tensor::from_vec(
            200,
            1,
            (0..200)
                .map(|i| ((xs.get(i, 0) + xs.get(i, 1)) > 0.0) as u8 as f32)
                .collect(),
        );
        let mut source = Mlp::new(
            &[4, 16, 1],
            Activation::Tanh,
            Activation::Identity,
            &mut rng,
        );
        let mut opt = Adam::new(0.02);
        source.fit(&xs, &ys, LossKind::bce(), &mut opt, 60, 32, &mut rng);

        // Target task: same decision boundary, inverted labels — the
        // trunk's representation transfers, only the head must flip.
        let xt = Tensor::randn(40, 4, 1.0, &mut rng);
        let yt = Tensor::from_vec(
            40,
            1,
            (0..40)
                .map(|i| ((xt.get(i, 0) + xt.get(i, 1)) <= 0.0) as u8 as f32)
                .collect(),
        );

        let mut tuner = FineTuner::new(source.clone(), 1, 1, &mut rng);
        let mut topt = Adam::new(0.05);
        for _ in 0..40 {
            tuner.train_batch(&xt, &yt, LossKind::bce(), &mut topt);
        }
        let tuned_pred: Vec<bool> = tuner
            .model
            .predict_proba(&xt)
            .iter()
            .map(|&p| p >= 0.5)
            .collect();
        let gold: Vec<bool> = yt.data.iter().map(|&v| v >= 0.5).collect();
        let tuned_acc = dc_nn::metrics::accuracy(&tuned_pred, &gold);
        assert!(tuned_acc > 0.85, "fine-tuned accuracy {tuned_acc}");
    }

    #[test]
    fn frozen_layers_do_not_move() {
        let mut rng = StdRng::seed_from_u64(2);
        let source = Mlp::new(&[3, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut tuner = FineTuner::new(source, 1, 1, &mut rng);
        let before = tuner.model.layers[0].w.clone();
        let x = Tensor::randn(16, 3, 1.0, &mut rng);
        let y = Tensor::from_vec(16, 1, vec![1.0; 16]);
        let mut opt = Adam::new(0.05);
        for _ in 0..10 {
            tuner.train_batch(&x, &y, LossKind::bce(), &mut opt);
        }
        assert_eq!(tuner.model.layers[0].w, before, "frozen trunk moved");
        // The head must have moved.
        assert!(tuner.model.layers[1].w.data.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn fit_through_unified_loop_learns() {
        let mut rng = StdRng::seed_from_u64(4);
        let source = Mlp::new(&[3, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let mut tuner = FineTuner::new(source, 1, 1, &mut rng);
        let x = Tensor::randn(32, 3, 1.0, &mut rng);
        let y = Tensor::from_vec(
            32,
            1,
            (0..32).map(|i| (x.get(i, 0) > 0.0) as u8 as f32).collect(),
        );
        let mut opt = Adam::new(0.05);
        let opts = TrainOpts::default().with_epochs(30).with_batch_size(8);
        let trace = tuner.fit(&x, &y, LossKind::bce(), &mut opt, &opts, &mut rng);
        assert_eq!(trace.len(), 30);
        assert!(trace.last().expect("trace").loss < trace.first().expect("trace").loss);
    }

    #[test]
    #[should_panic(expected = "frozen_layers")]
    fn cannot_freeze_everything() {
        let mut rng = StdRng::seed_from_u64(3);
        let source = Mlp::new(&[3, 8, 1], Activation::Tanh, Activation::Identity, &mut rng);
        let _ = FineTuner::new(source, 1, 2, &mut rng);
    }
}
