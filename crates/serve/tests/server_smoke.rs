//! End-to-end smoke over real sockets: concurrent clients against a
//! running server, interleaving valid work with malformed requests, and
//! checking that every valid response is solo-exact while every
//! malformed one gets a structured 4xx — and the service outlives all
//! of it.

use dc_serve::testutil::{http_request, tiny_tenant_spec};
use dc_serve::{engine, Registry, ServeConfig};
use std::sync::Arc;

#[test]
fn concurrent_clients_get_solo_exact_answers_and_errors_dont_kill_it() {
    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(4)
        .with_batch_window_us(2_000);
    let registry = Arc::new(Registry::new(cfg.max_tenants));
    let tenant = registry
        .insert(tiny_tenant_spec("acme", 99).build(&cfg).unwrap())
        .unwrap();
    let server = dc_serve::start(cfg, registry).unwrap();
    let addr = server.addr();

    let pairs = [(0usize, 1usize), (2, 3)];
    let solo: Vec<u32> = engine::match_pairs(&tenant.model(), tenant.table(), &pairs)
        .unwrap()
        .iter()
        .map(|s| s.to_bits())
        .collect();

    let handles: Vec<_> = (0..12)
        .map(|c| {
            std::thread::spawn(move || match c % 4 {
                // Valid match: must be 200 with solo-exact scores.
                0 | 1 => http_request(
                    addr,
                    "POST",
                    "/v1/t/acme/match",
                    "{\"pairs\":[[0,1],[2,3]]}",
                ),
                // Malformed JSON: must be 400.
                2 => http_request(addr, "POST", "/v1/t/acme/match", "{oops"),
                // Unknown tenant: must be 404.
                _ => http_request(addr, "POST", "/v1/t/ghost/match", "{\"pairs\":[[0,1]]}"),
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        let (status, body) = h.join().unwrap();
        match c % 4 {
            0 | 1 => {
                assert_eq!(status, 200, "valid match failed: {body}");
                let served: Vec<u32> = body
                    .split_once('[')
                    .map(|(_, rest)| rest.split(']').next().unwrap_or(""))
                    .unwrap_or("")
                    .split(',')
                    .filter_map(|s| s.trim().parse::<f32>().ok())
                    .map(|s| s.to_bits())
                    .collect();
                assert_eq!(served, solo, "served scores must be solo-exact");
            }
            2 => {
                assert_eq!(status, 400, "malformed JSON must be 400: {body}");
                assert!(body.contains("invalid_input"));
            }
            _ => {
                assert_eq!(status, 404, "unknown tenant must be 404: {body}");
                assert!(body.contains("not_found"));
            }
        }
    }

    // The service survived all of the above.
    let (status, _) = http_request(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200);
    let (status, body) = http_request(addr, "GET", "/v1/tenants", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"acme\""));
    server.stop();
}

#[test]
fn oversized_bodies_and_bad_methods_are_refused() {
    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(1)
        .with_max_body_bytes(256);
    let registry = Arc::new(Registry::new(4));
    registry
        .insert(tiny_tenant_spec("acme", 7).build(&cfg).unwrap())
        .unwrap();
    let server = dc_serve::start(cfg, registry).unwrap();
    let addr = server.addr();

    let big = format!("{{\"pairs\":[{}]}}", "[0,1],".repeat(100) + "[0,1]");
    let (status, body) = http_request(addr, "POST", "/v1/t/acme/match", &big);
    assert_eq!(status, 429, "body over the limit must be refused: {body}");
    assert!(body.contains("limit"));

    let (status, _) = http_request(addr, "DELETE", "/v1/t/acme/match", "");
    assert_eq!(status, 404, "unrouted method+path is a 404");

    let (status, _) = http_request(addr, "GET", "/v1/health", "");
    assert_eq!(status, 200, "service lives on after refusals");
    server.stop();
}
