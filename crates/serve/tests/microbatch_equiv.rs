//! The tentpole guarantee: responses computed through the micro-batcher
//! are **bitwise identical** to running each request alone, whatever
//! the batch composition. `scripts/lint.sh` runs this binary under
//! `DC_THREADS=1`, `=2`, and the default, so the guarantee is checked
//! across worker-pool splits too.
//!
//! Why it holds: the batch closures call the `ROW_TILE`-aligned
//! inference paths, where every request's rows land on full kernel
//! tiles — each row's output is a pure function of that row's inputs,
//! independent of what else shares the GEMM.

use dc_serve::testutil::tiny_tenant_spec;
use dc_serve::{engine, ServeConfig, Tenant};
use std::sync::Arc;

/// A wide window and cap so concurrent submissions genuinely coalesce.
fn tenant() -> Arc<Tenant> {
    let cfg = ServeConfig::default()
        .with_batch_window_us(20_000)
        .with_batch_max(16);
    Arc::new(tiny_tenant_spec("t", 0xbeef).build(&cfg).unwrap())
}

#[test]
fn batched_match_is_bitwise_equal_to_solo() {
    dc_obs::set_enabled(true);
    let tenant = tenant();
    let n = tenant.rows();
    // Per-client workloads of different lengths, overlapping pairs.
    let workloads: Vec<Vec<(usize, usize)>> = (0..12)
        .map(|c| {
            (0..=c % 4)
                .map(|j| ((c + j) % n, (c * 3 + j * 7 + 1) % n))
                .collect()
        })
        .collect();
    // Solo baseline: each workload alone, straight through the engine.
    let solo: Vec<Vec<u32>> = workloads
        .iter()
        .map(|w| {
            engine::match_pairs(&tenant.model(), tenant.table(), w)
                .unwrap()
                .iter()
                .map(|s| s.to_bits())
                .collect()
        })
        .collect();
    // Batched: all workloads concurrently, coalescing in the batcher.
    let flushes_before = batch_flushes();
    let handles: Vec<_> = workloads
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, w)| {
            let t = tenant.clone();
            std::thread::spawn(move || (i, t.match_pairs(w).unwrap()))
        })
        .collect();
    let mut batched: Vec<Vec<u32>> = vec![Vec::new(); workloads.len()];
    for h in handles {
        let (i, scores) = h.join().unwrap();
        batched[i] = scores.iter().map(|s| s.to_bits()).collect();
    }
    assert_eq!(batched, solo, "micro-batched scores must be bitwise solo");
    let flushed = batch_flushes() - flushes_before;
    assert!(
        flushed < workloads.len() as u64,
        "12 concurrent requests must coalesce into fewer batches (got {flushed})"
    );
}

#[test]
fn batched_encode_is_bitwise_equal_to_solo() {
    let tenant = tenant();
    let n = tenant.rows();
    let workloads: Vec<Vec<usize>> = (0..10)
        .map(|c| (0..=(c % 3)).map(|j| (c * 5 + j) % n).collect())
        .collect();
    let solo: Vec<Vec<Vec<u32>>> = workloads
        .iter()
        .map(|w| {
            engine::encode_rows(&tenant.model(), tenant.table(), w)
                .unwrap()
                .iter()
                .map(|v| v.iter().map(|s| s.to_bits()).collect())
                .collect()
        })
        .collect();
    let handles: Vec<_> = workloads
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, w)| {
            let t = tenant.clone();
            std::thread::spawn(move || (i, t.encode_rows(w).unwrap()))
        })
        .collect();
    let mut batched: Vec<Vec<Vec<u32>>> = vec![Vec::new(); workloads.len()];
    for h in handles {
        let (i, vecs) = h.join().unwrap();
        batched[i] = vecs
            .iter()
            .map(|v| v.iter().map(|s| s.to_bits()).collect())
            .collect();
    }
    assert_eq!(
        batched, solo,
        "micro-batched embeddings must be bitwise solo"
    );
}

#[test]
fn a_malformed_request_cannot_poison_a_batch() {
    let tenant = tenant();
    let n = tenant.rows();
    // One bad client among good ones: the bad one fails alone (it is
    // rejected before enqueue), every good one still gets solo-exact
    // scores.
    let good: Vec<(usize, usize)> = vec![(0, 1), (1, 2)];
    let solo: Vec<u32> = engine::match_pairs(&tenant.model(), tenant.table(), &good)
        .unwrap()
        .iter()
        .map(|s| s.to_bits())
        .collect();
    let handles: Vec<_> = (0..8)
        .map(|c| {
            let t = tenant.clone();
            let good = good.clone();
            std::thread::spawn(move || {
                if c == 3 {
                    Err(t.match_pairs(vec![(0, n + 10)]).unwrap_err())
                } else {
                    Ok(t.match_pairs(good).unwrap())
                }
            })
        })
        .collect();
    for (c, h) in handles.into_iter().enumerate() {
        match h.join().unwrap() {
            Err(e) => {
                assert_eq!(c, 3);
                assert_eq!(e.kind(), "invalid_input");
            }
            Ok(scores) => {
                let bits: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
                assert_eq!(bits, solo);
            }
        }
    }
}

fn batch_flushes() -> u64 {
    dc_obs::report()
        .counters
        .iter()
        .find(|(name, _)| name == "serve.batch.flushes")
        .map(|&(_, v)| v)
        .unwrap_or(0)
}
