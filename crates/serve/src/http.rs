//! A minimal std-only HTTP/1.1 layer: exactly what the JSON endpoints
//! need — request line, headers, `Content-Length` bodies, keep-alive —
//! and nothing more. Malformed input surfaces as
//! [`DcError`] so the server can answer with a structured 4xx instead
//! of dying.

use dc_core::{DcError, DcResult};
use std::io::{BufRead, Write};

/// Largest accepted request line + header block.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// One parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Path without query string.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

impl Request {
    /// Body as UTF-8, or a 4xx-shaped error.
    pub fn body_str(&self) -> DcResult<&str> {
        std::str::from_utf8(&self.body)
            .map_err(|_| DcError::invalid("request body is not valid UTF-8"))
    }
}

/// Read one request off a buffered connection. `Ok(None)` means the
/// client closed cleanly before sending anything (normal keep-alive
/// teardown); errors are protocol violations the caller should answer
/// with `e.http_status()` and then close.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> DcResult<Option<Request>> {
    let mut line = String::new();
    match read_crlf_line(stream, &mut line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(DcError::invalid(format!("request line: {e}"))),
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| DcError::invalid("empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| DcError::invalid("request line has no target"))?;
    let version = parts
        .next()
        .ok_or_else(|| DcError::invalid("request line has no HTTP version"))?;
    if !version.starts_with("HTTP/1.") {
        return Err(DcError::invalid(format!("unsupported version {version}")));
    }
    let path = target.split('?').next().unwrap_or("").to_string();

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; HTTP/1.0 to close.
    let mut keep_alive = version == "HTTP/1.1";
    let mut head_bytes = line.len();
    loop {
        line.clear();
        read_crlf_line(stream, &mut line)
            .map_err(|e| DcError::invalid(format!("header line: {e}")))?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(DcError::limit("request headers exceed 8 KiB"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(DcError::invalid(format!("malformed header {line:?}")));
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse()
                .map_err(|_| DcError::invalid(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    if content_length > max_body {
        return Err(DcError::limit(format!(
            "request body of {content_length} bytes exceeds the {max_body}-byte limit"
        )));
    }
    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(|e| DcError::invalid(format!("truncated body: {e}")))?;
    Ok(Some(Request {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Read a `\r\n`-terminated line into `out` (terminator stripped).
/// Returns bytes consumed; 0 means EOF before any byte.
fn read_crlf_line(stream: &mut impl BufRead, out: &mut String) -> std::io::Result<usize> {
    let mut raw = Vec::new();
    let mut n = 0;
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if n == 0 {
                    return Ok(0);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "EOF mid-line",
                ));
            }
            Ok(_) => {
                n += 1;
                if n > MAX_HEAD_BYTES {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        "line too long",
                    ));
                }
                if byte[0] == b'\n' {
                    if raw.last() == Some(&b'\r') {
                        raw.pop();
                    }
                    break;
                }
                raw.push(byte[0]);
            }
            Err(e) => return Err(e),
        }
    }
    out.push_str(
        std::str::from_utf8(&raw).map_err(|_| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 header")
        })?,
    );
    Ok(n)
}

/// Write one JSON response (status line, minimal headers, body).
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Status",
    };
    let conn = if keep_alive { "keep-alive" } else { "close" };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {conn}\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str, max_body: usize) -> DcResult<Option<Request>> {
        read_request(&mut BufReader::new(raw.as_bytes()), max_body)
    }

    #[test]
    fn parses_post_with_body_and_keep_alive() {
        let req = parse(
            "POST /v1/t/acme/match?x=1 HTTP/1.1\r\nHost: h\r\nContent-Length: 4\r\n\r\nabcd",
            1024,
        )
        .unwrap()
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/t/acme/match");
        assert_eq!(req.body, b"abcd");
        assert!(req.keep_alive);
        let closing = parse("GET /v1/health HTTP/1.1\r\nConnection: close\r\n\r\n", 1024)
            .unwrap()
            .unwrap();
        assert!(!closing.keep_alive);
    }

    #[test]
    fn malformed_requests_are_structured_errors() {
        assert!(parse("", 10).unwrap().is_none(), "clean EOF");
        assert_eq!(
            parse("GARBAGE\r\n\r\n", 10).unwrap_err().kind(),
            "invalid_input"
        );
        assert_eq!(
            parse("GET / SMTP/1.0\r\n\r\n", 10).unwrap_err().kind(),
            "invalid_input"
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort", 1024)
                .unwrap_err()
                .kind(),
            "invalid_input"
        );
        assert_eq!(
            parse(
                "POST / HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello world",
                10
            )
            .unwrap_err()
            .kind(),
            "limit"
        );
        assert_eq!(
            parse("POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n", 10)
                .unwrap_err()
                .kind(),
            "invalid_input"
        );
    }

    #[test]
    fn response_is_well_formed() {
        let mut out = Vec::new();
        write_response(&mut out, 404, "{\"e\":1}", false).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(s.contains("Content-Length: 7\r\n"));
        assert!(s.contains("Connection: close\r\n"));
        assert!(s.ends_with("{\"e\":1}"));
    }
}
