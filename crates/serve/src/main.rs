//! `cargo run -p dc-serve [addr]` — start the demo service: one
//! fully-loaded tenant (`demo`, seed 7) with match/encode/impute/
//! search/index endpoints, plus `/v1/health`, `/v1/stats`, and
//! `/v1/tenants`. The bind address comes from the first CLI argument,
//! then `DC_SERVE_ADDR`, then the default `127.0.0.1:7700`.

use dc_serve::{testutil, Registry, ServeConfig};
use std::sync::Arc;

fn main() {
    let addr = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("DC_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7700".to_string());
    let cfg = ServeConfig::default().with_addr(addr);
    eprintln!("provisioning demo tenant (training a small DeepER matcher)...");
    let registry = Arc::new(Registry::new(cfg.max_tenants));
    let tenant = testutil::demo_tenant_spec("demo", 7)
        .build(&cfg)
        .expect("provision demo tenant");
    registry.insert(tenant).expect("register demo tenant");
    let server = dc_serve::start(cfg, registry).expect("start server");
    eprintln!("dc-serve listening on http://{}", server.addr());
    eprintln!("try: curl http://{}/v1/health", server.addr());
    eprintln!(
        "     curl -d '{{\"pairs\":[[0,1],[2,3]]}}' http://{}/v1/t/demo/match",
        server.addr()
    );
    // Serve until killed; the accept/handler/maintenance threads carry
    // the work from here.
    loop {
        std::thread::park();
    }
}
