//! dc-serve self-test: boots a real server on a free port and checks
//! the service invariants end to end over actual sockets — health,
//! bitwise match-vs-engine agreement, structured 4xx errors that leave
//! the service alive, incremental-index round trips, and hot reload.
//! Silent on success (tallies go to dc-obs; set `DC_OBS` to dump the
//! report); exits non-zero with the failed check names on stderr, so
//! `scripts/lint.sh` can gate on it.

use dc_serve::testutil::{demo_tenant_spec, http_request, raw_request};
use dc_serve::{engine, Registry, ServeConfig};
use std::sync::Arc;

fn main() {
    dc_obs::set_enabled(true);
    let mut failures: Vec<String> = Vec::new();
    let mut check = |name: &str, ok: bool| {
        dc_obs::counter_add("selftest", "checks", 1);
        if !ok {
            dc_obs::counter_add("selftest", "failures", 1);
            failures.push(name.to_string());
        }
    };

    let cfg = ServeConfig::default()
        .with_addr("127.0.0.1:0")
        .with_workers(2)
        .with_batch_window_us(200);
    let registry = Arc::new(Registry::new(cfg.max_tenants));
    let tenant = registry
        .insert(
            demo_tenant_spec("demo", 7)
                .build(&cfg)
                .expect("provision demo tenant"),
        )
        .expect("register demo tenant");
    let server = dc_serve::start(cfg, registry).expect("start server");
    let addr = server.addr();

    // 1. Health and tenant listing answer.
    let (status, body) = http_request(addr, "GET", "/v1/health", "");
    check(
        "health returns 200 ok",
        status == 200 && body.contains("ok"),
    );
    let (status, body) = http_request(addr, "GET", "/v1/tenants", "");
    check(
        "tenant listing names the demo tenant",
        status == 200 && body.contains("\"demo\""),
    );

    // 2. Served match scores are bitwise the engine's solo scores.
    let pairs = [(0usize, 1usize), (2, 3), (1, 4)];
    let solo = engine::match_pairs(&tenant.model(), tenant.table(), &pairs).expect("solo match");
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/t/demo/match",
        "{\"pairs\":[[0,1],[2,3],[1,4]]}",
    );
    let served: Vec<f32> = body
        .split_once('[')
        .map(|(_, rest)| rest.split(']').next().unwrap_or(""))
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    check(
        "served match equals engine solo bitwise",
        status == 200
            && served.len() == solo.len()
            && served
                .iter()
                .zip(&solo)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
    );

    // 3. Malformed requests are structured 4xx and the service lives on.
    let (status, body) = http_request(addr, "POST", "/v1/t/demo/match", "{\"pairs\": not json");
    check(
        "malformed JSON is a 400 with an error body",
        status == 400 && body.contains("invalid_input"),
    );
    let (status, _) = http_request(addr, "POST", "/v1/t/demo/match", "{\"pairs\":[[0,999999]]}");
    check("out-of-range pair is a 400", status == 400);
    let (status, _) = http_request(addr, "POST", "/v1/t/nope/match", "{\"pairs\":[[0,1]]}");
    check("unknown tenant is a 404", status == 404);
    let raw = raw_request(addr, b"NONSENSE\r\n\r\n");
    check(
        "protocol garbage gets an HTTP error reply",
        raw.starts_with("HTTP/1.1 400"),
    );
    let (status, _) = http_request(addr, "GET", "/v1/health", "");
    check(
        "service is still alive after the malformed batch",
        status == 200,
    );

    // 4. Impute and search endpoints answer.
    let (status, body) = http_request(addr, "POST", "/v1/t/demo/impute", "{}");
    check(
        "impute with default k answers 200",
        status == 200 && body.contains("\"filled\""),
    );
    let (status, body) = http_request(
        addr,
        "POST",
        "/v1/t/demo/search",
        "{\"query\":\"alice\",\"k\":3}",
    );
    check(
        "bm25 search answers 200 with hits",
        status == 200 && body.contains("\"hits\""),
    );
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/t/demo/search",
        "{\"query\":\"alice\",\"k\":3,\"engine\":\"neural\"}",
    );
    check("neural search answers 200", status == 200);
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/t/demo/search",
        "{\"query\":\"x\",\"engine\":\"psychic\"}",
    );
    check("unknown engine is a 400", status == 400);

    // 5. Incremental index over HTTP: insert twice, see the pair.
    let sig = format!("{{\"scores\":{:?}}}", vec![1.0f32; 32]);
    let (s1, b1) = http_request(addr, "POST", "/v1/t/demo/index/insert", &sig);
    let (s2, _) = http_request(addr, "POST", "/v1/t/demo/index/insert", &sig);
    let (s3, pairs_body) = http_request(addr, "GET", "/v1/t/demo/index/pairs", "");
    check(
        "index insert/insert/pairs round-trips",
        s1 == 200
            && s2 == 200
            && s3 == 200
            && b1.contains("\"id\"")
            && pairs_body.contains("[0,1]"),
    );
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/t/demo/index/insert",
        "{\"scores\":[1.0]}",
    );
    check("wrong-width signature is a 400", status == 400);

    // 6. Checkpoint + hot reload over HTTP bumps the generation and
    //    preserves scores bitwise.
    let ckpt = std::env::temp_dir().join("dc_serve_selftest_ckpt.json");
    let ckpt_body = format!("{{\"path\":{:?}}}", ckpt.to_str().unwrap());
    let (s1, _) = http_request(addr, "POST", "/v1/t/demo/checkpoint", &ckpt_body);
    let (s2, gen_body) = http_request(addr, "POST", "/v1/t/demo/reload", &ckpt_body);
    let (_, body_after) = http_request(
        addr,
        "POST",
        "/v1/t/demo/match",
        "{\"pairs\":[[0,1],[2,3],[1,4]]}",
    );
    let served_after: Vec<f32> = body_after
        .split_once('[')
        .map(|(_, rest)| rest.split(']').next().unwrap_or(""))
        .unwrap_or("")
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .collect();
    check(
        "checkpoint/reload bumps generation and keeps scores bitwise",
        s1 == 200
            && s2 == 200
            && gen_body.contains("\"generation\":2")
            && served_after
                .iter()
                .zip(&solo)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
    );
    std::fs::remove_file(&ckpt).ok();
    let (status, _) = http_request(
        addr,
        "POST",
        "/v1/t/demo/reload",
        "{\"path\":\"/nope.json\"}",
    );
    check("reload of a missing checkpoint is a 404", status == 404);

    server.stop();

    if !failures.is_empty() {
        for name in &failures {
            eprintln!("FAIL {name}");
        }
        eprintln!("{} dc-serve self-test(s) failed", failures.len());
        std::process::exit(1);
    }
    if std::env::var_os("DC_OBS").is_some() {
        println!("{}", dc_obs::report().to_json());
    }
}
