//! Service configuration with chainable `with_*` builders (DESIGN.md
//! §10 convention).

/// Tunables for [`crate::server::start`]. Construct with
/// [`ServeConfig::default`] and override per field:
///
/// ```
/// use dc_serve::ServeConfig;
/// let cfg = ServeConfig::default()
///     .with_addr("127.0.0.1:0")
///     .with_workers(2)
///     .with_batch_window_us(200);
/// assert_eq!(cfg.workers, 2);
/// ```
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// HTTP handler threads. These only parse/route — all GEMM work
    /// inside a handler still runs on the shared dc-tensor worker pool,
    /// so raising this does not oversubscribe the kernels.
    pub workers: usize,
    /// Micro-batch window in microseconds: how long the first request
    /// of a batch waits for company before the fused GEMM launches.
    pub batch_window_us: u64,
    /// Requests per micro-batch at which the window closes early.
    pub batch_max: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Most tenants the registry will hold.
    pub max_tenants: usize,
    /// Incremental-index overflow length at which the background
    /// maintenance thread compacts a tenant's index.
    pub compact_threshold: usize,
    /// Poll period of the background maintenance thread, milliseconds.
    pub compact_interval_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7700".to_string(),
            workers: 4,
            batch_window_us: 500,
            batch_max: 32,
            max_body_bytes: 1 << 20,
            max_tenants: 16,
            compact_threshold: 256,
            compact_interval_ms: 50,
        }
    }
}

impl ServeConfig {
    /// Set the bind address (chainable builder).
    pub fn with_addr(mut self, addr: impl Into<String>) -> Self {
        self.addr = addr.into();
        self
    }

    /// Set the HTTP handler thread count (chainable builder).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the micro-batch time window in microseconds (chainable
    /// builder).
    pub fn with_batch_window_us(mut self, us: u64) -> Self {
        self.batch_window_us = us;
        self
    }

    /// Set the micro-batch size cap (chainable builder).
    pub fn with_batch_max(mut self, n: usize) -> Self {
        self.batch_max = n.max(1);
        self
    }

    /// Set the largest accepted request body in bytes (chainable
    /// builder).
    pub fn with_max_body_bytes(mut self, n: usize) -> Self {
        self.max_body_bytes = n;
        self
    }

    /// Set the tenant-count limit (chainable builder).
    pub fn with_max_tenants(mut self, n: usize) -> Self {
        self.max_tenants = n.max(1);
        self
    }

    /// Set the overflow length that triggers background compaction
    /// (chainable builder).
    pub fn with_compact_threshold(mut self, n: usize) -> Self {
        self.compact_threshold = n.max(1);
        self
    }

    /// Set the maintenance-thread poll period in milliseconds
    /// (chainable builder).
    pub fn with_compact_interval_ms(mut self, ms: u64) -> Self {
        self.compact_interval_ms = ms.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_chain_and_clamp() {
        let cfg = ServeConfig::default()
            .with_addr("0.0.0.0:0")
            .with_workers(0)
            .with_batch_window_us(10)
            .with_batch_max(0)
            .with_max_body_bytes(512)
            .with_max_tenants(0)
            .with_compact_threshold(0)
            .with_compact_interval_ms(0);
        assert_eq!(cfg.addr, "0.0.0.0:0");
        assert_eq!(cfg.workers, 1, "worker count clamps to 1");
        assert_eq!(cfg.batch_max, 1, "batch cap clamps to 1");
        assert_eq!(cfg.max_tenants, 1);
        assert_eq!(cfg.compact_threshold, 1);
        assert_eq!(cfg.compact_interval_ms, 1);
        assert_eq!(cfg.max_body_bytes, 512);
    }
}
