//! dc-serve: the online, multi-tenant curation service.
//!
//! Everything the offline pipeline does — DeepER matching, tuple
//! encoding, kNN imputation, BM25/neural dataset search, LSH blocking —
//! exposed as a long-lived JSON-over-HTTP service with:
//!
//! * **request micro-batching** ([`batch::MicroBatcher`]): concurrent
//!   match/encode requests against one tenant coalesce into a single
//!   `ROW_TILE`-aligned GEMM, with responses **bitwise identical** to
//!   solo execution (the `microbatch_equiv` test proves it under
//!   `DC_THREADS` = 1, 2, and default);
//! * **incremental blocking** ([`dc_index::IncrementalLshIndex`]):
//!   inserts and deletes without rebuilding, compacted by a background
//!   thread;
//! * **per-tenant models** with generation-swapped hot reload
//!   ([`tenant::Tenant::reload`]);
//! * structured errors: malformed requests come back as
//!   [`dc_core::DcError`] JSON with a 4xx status, never a dead worker.
//!
//! The whole stack is `std`-only — the HTTP layer ([`http`]) is a
//! ~150-line HTTP/1.1 subset, not a framework.
//!
//! ```no_run
//! use dc_serve::{testutil, Registry, ServeConfig};
//! use std::sync::Arc;
//!
//! let cfg = ServeConfig::default().with_addr("127.0.0.1:0").with_workers(2);
//! let registry = Arc::new(Registry::new(cfg.max_tenants));
//! registry
//!     .insert(testutil::tiny_tenant_spec("acme", 7).build(&cfg).unwrap())
//!     .unwrap();
//! let server = dc_serve::start(cfg, registry).unwrap();
//! println!("listening on {}", server.addr());
//! server.stop();
//! ```

pub mod batch;
pub mod config;
pub mod engine;
pub mod http;
pub mod server;
pub mod tenant;
pub mod testutil;

pub use batch::MicroBatcher;
pub use config::ServeConfig;
pub use server::{start, ServerHandle};
pub use tenant::{Registry, Tenant, TenantSpec};
