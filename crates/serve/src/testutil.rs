//! Deterministic tenant provisioning for tests, the selftest binary,
//! and the demo server: everything is seeded, so two calls with the
//! same `(name, seed)` produce bitwise-identical models.

use crate::tenant::TenantSpec;
use dc_clean::TableEncoder;
use dc_datagen::{ErBenchmark, ErSuite, ErrorInjector, ErrorKind, Lake};
use dc_discovery::NeuralSearch;
use dc_embed::{Embeddings, SgnsConfig};
use dc_er::{Composition, DeepEr, DeepErConfig};
use dc_relational::tokenize_tuple;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// Train a small DeepER matcher over a generated clean-suite benchmark.
/// Returns the model, its word embeddings, and the benchmark table.
fn trained_matcher(
    entities: usize,
    dim: usize,
    epochs: usize,
    rng: &mut StdRng,
) -> (DeepEr, Embeddings, ErBenchmark) {
    let bench = ErBenchmark::generate(ErSuite::Clean, entities, 2, rng);
    let mut docs: Vec<Vec<String>> = bench.table.rows.iter().map(|r| tokenize_tuple(r)).collect();
    docs.extend(dc_datagen::corpus::domain_corpus(150, rng));
    let emb = Embeddings::train(
        &docs,
        &SgnsConfig {
            dim,
            epochs: 3,
            ..Default::default()
        },
        rng,
    );
    let pairs = bench.labeled_pairs(2, rng);
    let tp: Vec<(usize, usize)> = pairs.iter().map(|p| (p.a, p.b)).collect();
    let tl: Vec<bool> = pairs.iter().map(|p| p.label).collect();
    let model = DeepEr::train(
        emb.clone(),
        &bench.table,
        &tp,
        &tl,
        Composition::Average,
        DeepErConfig::default()
            .with_epochs(epochs)
            .with_hidden(&[dim]),
        rng,
    );
    (model, emb, bench)
}

/// The smallest useful tenant: a matcher over ~15 entities, no search
/// or imputation workloads. Fast enough for unit tests.
pub fn tiny_tenant_spec(name: &str, seed: u64) -> TenantSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let (model, _, bench) = trained_matcher(15, 12, 5, &mut rng);
    TenantSpec::new(name, model, bench.table)
}

/// A fully-loaded tenant: matcher, dirty table + encoder for
/// imputation, lake tables behind BM25, and a neural search index.
/// Used by the demo binary, the selftest, and the integration tests.
pub fn demo_tenant_spec(name: &str, seed: u64) -> TenantSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let (model, emb, bench) = trained_matcher(30, 12, 6, &mut rng);
    let (dirty, _) = ErrorInjector::only(ErrorKind::Null, 0.06).inject(&bench.table, &[], &mut rng);
    let encoder = TableEncoder::fit(&dirty, 32);
    let lake = Lake::generate(6, 24, &mut rng);
    let refs: Vec<&dc_relational::Table> = lake.tables.iter().collect();
    let neural = NeuralSearch::index(emb, &refs, 10);
    TenantSpec::new(name, model, bench.table)
        .with_dirty(dirty, encoder)
        .with_search_tables(lake.tables)
        .with_neural(neural)
}

/// Bare-bones blocking HTTP client for exercising a running server:
/// one `Connection: close` request, returns `(status, body)`. Panics on
/// transport failures — it only runs inside tests and the selftest.
pub fn http_request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// Send a raw byte blob (possibly not even HTTP) and return the raw
/// response text; for protocol-violation tests.
pub fn raw_request(addr: SocketAddr, blob: &[u8]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(blob).expect("send blob");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw
}
