//! The request loop: accept thread → connection queue → handler
//! threads → route → JSON response, plus the background maintenance
//! thread that compacts incremental indexes.
//!
//! Handler threads only parse and route; every GEMM a handler triggers
//! runs on the shared dc-tensor worker pool, so HTTP concurrency and
//! kernel parallelism stay independently tunable. Any [`DcError`]
//! bubbling out of routing becomes a structured JSON error response
//! with the matching HTTP status — a malformed request never terminates
//! the service (proven by the `server_smoke` test).
//!
//! # Endpoints
//!
//! | Method + path | Body | Reply |
//! |---|---|---|
//! | `GET /v1/health` | — | `{"status":"ok"}` |
//! | `GET /v1/stats` | — | dc-obs report (enable with `DC_OBS=1`) |
//! | `GET /v1/tenants` | — | name/generation/rows per tenant |
//! | `POST /v1/t/{t}/match` | `{"pairs":[[a,b],...]}` | match scores (micro-batched) |
//! | `POST /v1/t/{t}/encode` | `{"rows":[r,...]}` | tuple embeddings (micro-batched) |
//! | `POST /v1/t/{t}/impute` | `{"k":3}` | cells filled by kNN imputation |
//! | `POST /v1/t/{t}/search` | `{"query":"...","k":5,"engine":"bm25"\|"neural"}` | ranked tables |
//! | `POST /v1/t/{t}/index/insert` | `{"scores":[...]}` | new item id |
//! | `POST /v1/t/{t}/index/delete` | `{"id":n}` | tombstone ack |
//! | `GET /v1/t/{t}/index/pairs` | — | candidate pairs + overflow length |
//! | `POST /v1/t/{t}/checkpoint` | `{"path":"..."}` | save live model as JSON |
//! | `POST /v1/t/{t}/reload` | `{"path":"..."}` | hot-swap model, new generation |

use crate::config::ServeConfig;
use crate::http::{read_request, write_response, Request};
use crate::tenant::Registry;
use dc_core::{DcError, DcResult};
use serde::Value;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

static REQUESTS: dc_obs::Counter = dc_obs::Counter::new("serve.requests");
static ERRORS: dc_obs::Counter = dc_obs::Counter::new("serve.errors");

/// A running service instance; dropping the handle does **not** stop it
/// — call [`ServerHandle::stop`].
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    queue: Arc<ConnQueue>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal every thread to stop and join them. Idempotent.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.queue.close();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Blocking MPMC queue of accepted connections.
struct ConnQueue {
    q: Mutex<(VecDeque<TcpStream>, bool)>,
    cv: Condvar,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            q: Mutex::new((VecDeque::new(), false)),
            cv: Condvar::new(),
        }
    }

    fn push(&self, s: TcpStream) {
        let mut q = self.q.lock().expect("conn queue");
        q.0.push_back(s);
        drop(q);
        self.cv.notify_one();
    }

    /// Blocks until a connection or close; `None` means shut down.
    fn pop(&self) -> Option<TcpStream> {
        let mut q = self.q.lock().expect("conn queue");
        loop {
            if let Some(s) = q.0.pop_front() {
                return Some(s);
            }
            if q.1 {
                return None;
            }
            q = self.cv.wait(q).expect("conn queue");
        }
    }

    fn close(&self) {
        self.q.lock().expect("conn queue").1 = true;
        self.cv.notify_all();
    }
}

/// Bind, spawn the accept/handler/maintenance threads, and return.
pub fn start(cfg: ServeConfig, registry: Arc<Registry>) -> DcResult<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)
        .map_err(|e| DcError::internal(format!("bind {}: {e}", cfg.addr)))?;
    let addr = listener
        .local_addr()
        .map_err(|e| DcError::internal(format!("local_addr: {e}")))?;
    let stop = Arc::new(AtomicBool::new(false));
    let queue = Arc::new(ConnQueue::new());
    let mut threads = Vec::new();

    // Accept loop.
    {
        let (stop, queue) = (stop.clone(), queue.clone());
        threads.push(
            std::thread::Builder::new()
                .name("dc-serve-accept".into())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(s) = conn {
                            queue.push(s);
                        }
                    }
                })
                .expect("spawn accept thread"),
        );
    }

    // Handler threads.
    for i in 0..cfg.workers {
        let (queue, registry, cfg) = (queue.clone(), registry.clone(), cfg.clone());
        threads.push(
            std::thread::Builder::new()
                .name(format!("dc-serve-worker-{i}"))
                .spawn(move || {
                    while let Some(stream) = queue.pop() {
                        serve_connection(stream, &registry, &cfg);
                    }
                })
                .expect("spawn handler thread"),
        );
    }

    // Background maintenance: compact overflowing incremental indexes.
    {
        let (stop, registry, cfg) = (stop.clone(), registry.clone(), cfg.clone());
        threads.push(
            std::thread::Builder::new()
                .name("dc-serve-maint".into())
                .spawn(move || {
                    let period = Duration::from_millis(cfg.compact_interval_ms);
                    while !stop.load(Ordering::SeqCst) {
                        for tenant in registry.all() {
                            tenant.maybe_compact(cfg.compact_threshold);
                        }
                        std::thread::sleep(period);
                    }
                })
                .expect("spawn maintenance thread"),
        );
    }

    Ok(ServerHandle {
        addr,
        stop,
        threads,
        queue,
    })
}

/// Serve one connection's keep-alive request loop.
fn serve_connection(stream: TcpStream, registry: &Registry, cfg: &ServeConfig) {
    // A stuck client must not pin a handler thread forever.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader, cfg.max_body_bytes) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(e) => {
                // Protocol-level garbage: answer once, then close (the
                // stream may be desynchronized).
                ERRORS.incr();
                let _ = write_response(&mut writer, e.http_status(), &error_body(&e), false);
                return;
            }
        };
        REQUESTS.incr();
        let keep_alive = req.keep_alive;
        let start = Instant::now();
        let (endpoint, result) = route(&req, registry);
        dc_obs::record_ns("serve.request", endpoint, start.elapsed().as_nanos() as u64);
        let ok = match result {
            Ok(body) => write_response(&mut writer, 200, &body, keep_alive),
            Err(e) => {
                ERRORS.incr();
                write_response(&mut writer, e.http_status(), &error_body(&e), keep_alive)
            }
        };
        if ok.is_err() || !keep_alive {
            return;
        }
    }
}

#[derive(Serialize)]
struct ErrorBody {
    error: String,
    message: String,
}

fn error_body(e: &DcError) -> String {
    serde_json::to_string(&ErrorBody {
        error: e.kind().to_string(),
        message: e.message().to_string(),
    })
    .unwrap_or_else(|_| "{\"error\":\"internal\"}".to_string())
}

#[derive(Serialize)]
struct TenantInfo {
    name: String,
    generation: u64,
    rows: usize,
    index_overflow: usize,
}

#[derive(Serialize)]
struct MatchResp {
    scores: Vec<f32>,
    generation: u64,
}

#[derive(Serialize)]
struct EncodeResp {
    embeddings: Vec<Vec<f32>>,
    generation: u64,
}

#[derive(Serialize)]
struct ImputeResp {
    filled: usize,
    k: usize,
}

#[derive(Serialize)]
struct Bm25Resp {
    hits: Vec<(usize, f64)>,
}

#[derive(Serialize)]
struct NeuralResp {
    hits: Vec<(usize, f32)>,
}

#[derive(Serialize)]
struct InsertResp {
    id: usize,
}

#[derive(Serialize)]
struct PairsResp {
    pairs: Vec<(usize, usize)>,
    overflow: usize,
}

#[derive(Serialize)]
struct GenerationResp {
    generation: u64,
}

#[derive(Deserialize)]
struct MatchReq {
    pairs: Vec<(usize, usize)>,
}

#[derive(Deserialize)]
struct EncodeReq {
    rows: Vec<usize>,
}

#[derive(Deserialize)]
struct InsertReq {
    scores: Vec<f32>,
}

#[derive(Deserialize)]
struct IdReq {
    id: usize,
}

#[derive(Deserialize)]
struct PathReq {
    path: String,
}

/// Parse a JSON body into a request struct, mapping parse failures to
/// 4xx-shaped errors.
fn parse<T: serde::de::DeserializeOwned>(req: &Request) -> DcResult<T> {
    serde_json::from_str(req.body_str()?).map_err(|e| DcError::invalid(format!("bad request: {e}")))
}

/// Fetch an optional numeric field from a JSON object body (the derive
/// treats missing fields as errors, so optionals go through `Value`).
fn opt_usize(body: &Value, key: &str, default: usize) -> DcResult<usize> {
    match body.as_object() {
        Some(obj) => match obj.iter().find(|(k, _)| k == key) {
            Some((_, v)) => serde::from_field(obj, key)
                .map_err(|e| DcError::invalid(format!("bad request: {e}, got {}", v.kind()))),
            None => Ok(default),
        },
        None => Err(DcError::invalid("request body must be a JSON object")),
    }
}

fn opt_str(body: &Value, key: &str, default: &'static str) -> DcResult<String> {
    match body.as_object() {
        Some(obj) => match obj.iter().find(|(k, _)| k == key) {
            Some(_) => serde::from_field::<String>(obj, key)
                .map_err(|e| DcError::invalid(format!("bad request: {e}"))),
            None => Ok(default.to_string()),
        },
        None => Err(DcError::invalid("request body must be a JSON object")),
    }
}

fn to_json<T: Serialize>(value: &T) -> DcResult<String> {
    serde_json::to_string(value).map_err(|e| DcError::internal(format!("serialize response: {e}")))
}

/// Route one request. Returns the static endpoint name (the
/// `serve.request.{name}` histogram key) and the JSON result.
fn route(req: &Request, registry: &Registry) -> (&'static str, DcResult<String>) {
    let segs: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segs.as_slice()) {
        ("GET", ["v1", "health"]) => ("health", Ok("{\"status\":\"ok\"}".to_string())),
        ("GET", ["v1", "stats"]) => ("stats", Ok(dc_obs::report().to_json())),
        ("GET", ["v1", "tenants"]) => ("tenants", {
            let infos: Vec<TenantInfo> = registry
                .all()
                .iter()
                .map(|t| TenantInfo {
                    name: t.name().to_string(),
                    generation: t.generation(),
                    rows: t.rows(),
                    index_overflow: t.index_pairs().1,
                })
                .collect();
            to_json(&infos)
        }),
        ("POST", ["v1", "t", name, rest @ ..]) => {
            let name = (*name).to_string();
            let (endpoint, out): (&'static str, DcResult<String>) = match rest {
                ["match"] => (
                    "match",
                    registry.get(&name).and_then(|t| {
                        let body: MatchReq = parse(req)?;
                        let scores = t.match_pairs(body.pairs)?;
                        to_json(&MatchResp {
                            scores,
                            generation: t.generation(),
                        })
                    }),
                ),
                ["encode"] => (
                    "encode",
                    registry.get(&name).and_then(|t| {
                        let body: EncodeReq = parse(req)?;
                        let embeddings = t.encode_rows(body.rows)?;
                        to_json(&EncodeResp {
                            embeddings,
                            generation: t.generation(),
                        })
                    }),
                ),
                ["impute"] => (
                    "impute",
                    registry.get(&name).and_then(|t| {
                        let body: Value = parse(req)?;
                        let k = opt_usize(&body, "k", 3)?;
                        let (filled, _) = t.impute(k)?;
                        to_json(&ImputeResp { filled, k })
                    }),
                ),
                ["search"] => (
                    "search",
                    registry.get(&name).and_then(|t| {
                        let body: Value = parse(req)?;
                        let query = opt_str(&body, "query", "")?;
                        let k = opt_usize(&body, "k", 5)?;
                        match opt_str(&body, "engine", "bm25")?.as_str() {
                            "bm25" => to_json(&Bm25Resp {
                                hits: t.search_bm25(&query, k)?,
                            }),
                            "neural" => {
                                let shortlist = opt_usize(&body, "shortlist", 4 * k)?;
                                to_json(&NeuralResp {
                                    hits: t.search_neural(&query, k, shortlist)?,
                                })
                            }
                            other => Err(DcError::invalid(format!(
                                "unknown search engine {other:?} (bm25|neural)"
                            ))),
                        }
                    }),
                ),
                ["index", "insert"] => (
                    "index_insert",
                    registry.get(&name).and_then(|t| {
                        let body: InsertReq = parse(req)?;
                        to_json(&InsertResp {
                            id: t.index_insert(&body.scores)?,
                        })
                    }),
                ),
                ["index", "delete"] => (
                    "index_delete",
                    registry.get(&name).and_then(|t| {
                        let body: IdReq = parse(req)?;
                        t.index_delete(body.id)?;
                        Ok("{\"deleted\":true}".to_string())
                    }),
                ),
                ["checkpoint"] => (
                    "checkpoint",
                    registry.get(&name).and_then(|t| {
                        let body: PathReq = parse(req)?;
                        t.save_checkpoint(&body.path)?;
                        to_json(&GenerationResp {
                            generation: t.generation(),
                        })
                    }),
                ),
                ["reload"] => (
                    "reload",
                    registry.get(&name).and_then(|t| {
                        let body: PathReq = parse(req)?;
                        to_json(&GenerationResp {
                            generation: t.reload(&body.path)?,
                        })
                    }),
                ),
                _ => (
                    "unknown",
                    Err(DcError::not_found(format!("no route {}", req.path))),
                ),
            };
            (endpoint, out)
        }
        ("GET", ["v1", "t", name, "index", "pairs"]) => ("index_pairs", {
            registry.get(name).and_then(|t| {
                let (pairs, overflow) = t.index_pairs();
                to_json(&PairsResp { pairs, overflow })
            })
        }),
        _ => (
            "unknown",
            Err(DcError::not_found(format!(
                "no route {} {}",
                req.method, req.path
            ))),
        ),
    }
}
