//! Request micro-batching: coalesce concurrent submissions into one
//! fused execution.
//!
//! The first request to arrive becomes the batch **leader**: it waits
//! up to the configured window (or until the size cap) for followers,
//! then takes the whole queue and runs the batch function once on its
//! own thread. Followers just park on a channel until the leader hands
//! them their slice of the result. While a leader is executing, the
//! next arrival starts a new batch — windows pipeline instead of
//! serializing.
//!
//! Correctness burden: the batch function must be **per-item batch
//! invariant** — item `i`'s output may not depend on which other items
//! shared the batch. dc-serve's match/encode closures get this from the
//! `ROW_TILE`-aligned inference paths (`DeepEr::try_predict_aligned`,
//! `LstmEncoder::encode_batch_aligned`): every GEMM row group is padded
//! to full kernel tiles, so each row's result is a pure bitwise
//! function of that row's inputs for every `DC_THREADS`. The
//! `microbatch_equiv` integration test proves batched == solo bitwise.
//!
//! Validation must happen **before** [`MicroBatcher::submit`]: one
//! malformed request must fail alone with a 4xx, never poison a batch.

use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

static BATCH_FLUSHES: dc_obs::Counter = dc_obs::Counter::new("serve.batch.flushes");
static BATCH_REQUESTS: dc_obs::Counter = dc_obs::Counter::new("serve.batch.requests");
static BATCH_RUN: dc_obs::Hist = dc_obs::Hist::new("serve.batch.run");

struct Queue<I, O> {
    items: Vec<I>,
    replies: Vec<mpsc::Sender<O>>,
    /// Whether some thread is currently collecting this queue.
    has_leader: bool,
}

/// A leader/follower micro-batcher; see the module docs.
pub struct MicroBatcher<I, O> {
    queue: Mutex<Queue<I, O>>,
    /// Followers signal here when the size cap fills, so the leader
    /// stops waiting out the window.
    full: Condvar,
    window: Duration,
    max: usize,
    #[allow(clippy::type_complexity)]
    run: Box<dyn Fn(Vec<I>) -> Vec<O> + Send + Sync>,
}

impl<I: Send, O: Send> MicroBatcher<I, O> {
    /// A batcher executing `run` over each coalesced batch. `run` must
    /// return exactly one output per input, in order.
    pub fn new(
        window: Duration,
        max: usize,
        run: impl Fn(Vec<I>) -> Vec<O> + Send + Sync + 'static,
    ) -> Self {
        MicroBatcher {
            queue: Mutex::new(Queue {
                items: Vec::new(),
                replies: Vec::new(),
                has_leader: false,
            }),
            full: Condvar::new(),
            window,
            max: max.max(1),
            run: Box::new(run),
        }
    }

    /// Submit one item and block until its result arrives (directly,
    /// when this thread ends up leading the batch; via the leader
    /// otherwise).
    pub fn submit(&self, item: I) -> O {
        let (tx, rx) = mpsc::channel();
        let lead = {
            let mut q = self.queue.lock().expect("batch queue");
            q.items.push(item);
            q.replies.push(tx);
            if q.has_leader {
                if q.items.len() >= self.max {
                    self.full.notify_one();
                }
                false
            } else {
                q.has_leader = true;
                true
            }
        };
        if lead {
            self.lead();
        }
        rx.recv().expect("batch leader dropped the reply channel")
    }

    /// Wait out the window (or the size cap), then take and execute the
    /// queue. Runs on the submitting thread of the batch's first item.
    fn lead(&self) {
        let deadline = Instant::now() + self.window;
        let mut q = self.queue.lock().expect("batch queue");
        while q.items.len() < self.max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (qq, wait) = self
                .full
                .wait_timeout(q, deadline - now)
                .expect("batch queue");
            q = qq;
            if wait.timed_out() {
                break;
            }
        }
        let items = std::mem::take(&mut q.items);
        let replies = std::mem::take(&mut q.replies);
        q.has_leader = false;
        drop(q);
        BATCH_FLUSHES.incr();
        BATCH_REQUESTS.add(items.len() as u64);
        let timer = BATCH_RUN.start();
        let outs = (self.run)(items);
        drop(timer);
        debug_assert_eq!(outs.len(), replies.len(), "run must map 1:1");
        for (reply, out) in replies.into_iter().zip(outs) {
            // A follower that gave up (it cannot, today) would surface
            // here as a send error; results for live followers always
            // deliver.
            let _ = reply.send(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn solo_submit_round_trips() {
        let b = MicroBatcher::new(Duration::from_micros(100), 8, |xs: Vec<u32>| {
            xs.into_iter().map(|x| x * 2).collect()
        });
        assert_eq!(b.submit(21), 42);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_map_one_to_one() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        // A long window so all 16 threads land in few batches; the
        // batch fn tags each item with its own value, proving replies
        // are routed to the right submitter.
        let b = Arc::new(MicroBatcher::new(
            Duration::from_millis(40),
            16,
            move |xs: Vec<u64>| {
                c2.fetch_add(1, Ordering::SeqCst);
                xs.into_iter().map(|x| x + 1000).collect()
            },
        ));
        let handles: Vec<_> = (0..16u64)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || (i, b.submit(i)))
            })
            .collect();
        for h in handles {
            let (i, out) = h.join().unwrap();
            assert_eq!(out, i + 1000);
        }
        let n = calls.load(Ordering::SeqCst);
        assert!(
            (1..16).contains(&n),
            "16 submissions coalesced into {n} batches"
        );
    }

    #[test]
    fn size_cap_closes_the_window_early() {
        let b = Arc::new(MicroBatcher::new(
            Duration::from_secs(5), // would be an eternity if the cap failed
            4,
            |xs: Vec<u32>| xs,
        ));
        let start = Instant::now();
        let handles: Vec<_> = (0..4u32)
            .map(|i| {
                let b = b.clone();
                std::thread::spawn(move || b.submit(i))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            start.elapsed() < Duration::from_secs(2),
            "cap of 4 must flush without waiting out the 5 s window"
        );
    }
}
