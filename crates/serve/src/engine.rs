//! The one execution path behind both the HTTP endpoints and the
//! `autodc::pipeline` facade.
//!
//! Every function here is a thin, stateless delegation to a
//! `try_`-prefixed fallible entry on the owning crate, chosen so that:
//!
//! * malformed inputs come back as [`dc_core::DcError`] (the server
//!   maps them to 4xx) instead of panicking a worker;
//! * inference goes through the **`ROW_TILE`-aligned** paths, whose
//!   per-row results are bitwise independent of batch composition and
//!   `DC_THREADS` — the property request micro-batching
//!   ([`crate::batch::MicroBatcher`]) needs, and the reason the offline
//!   `autodc::pipeline` produces bit-identical scores to the online
//!   service.

use dc_clean::{KnnImputer, TableEncoder};
use dc_core::DcResult;
use dc_discovery::{Bm25Lite, NeuralSearch};
use dc_er::DeepEr;
use dc_relational::Table;

/// Match scores for record pairs of `table`, through the aligned
/// (batch-invariant) DeepER path.
pub fn match_pairs(model: &DeepEr, table: &Table, pairs: &[(usize, usize)]) -> DcResult<Vec<f32>> {
    model.try_predict_aligned(table, pairs)
}

/// Tuple embeddings for `rows` of `table`, through the aligned encoder.
pub fn encode_rows(model: &DeepEr, table: &Table, rows: &[usize]) -> DcResult<Vec<Vec<f32>>> {
    model.try_encode(table, rows)
}

/// kNN-impute the nulls of `table` under a fitted `encoder`.
pub fn impute_knn(table: &Table, encoder: &TableEncoder, k: usize) -> DcResult<Table> {
    KnnImputer { k }.try_impute(table, encoder)
}

/// BM25 keyword top-k over the indexed tables.
pub fn search_bm25(index: &Bm25Lite, query: &str, k: usize) -> DcResult<Vec<(usize, f64)>> {
    index.try_search_topk(query, k)
}

/// Neural (DRMM-style interaction) top-k over the indexed tables.
pub fn search_neural(
    index: &NeuralSearch,
    query: &str,
    k: usize,
    shortlist: usize,
) -> DcResult<Vec<(usize, f32)>> {
    index.try_search_topk(query, k, shortlist)
}
