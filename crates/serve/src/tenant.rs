//! Per-tenant model state and the multi-tenant registry.
//!
//! Each [`Tenant`] owns everything one customer's requests touch: the
//! record table and trained DeepER matcher (match/encode), a fitted
//! encoder plus dirty table (impute), BM25/neural search indexes over
//! its lake, and a mutable [`IncrementalLshIndex`] for streaming
//! blocking. Match and encode requests flow through per-tenant
//! [`MicroBatcher`]s so concurrent requests against the same model
//! coalesce into one aligned GEMM.
//!
//! **Hot reload** is generation-swapped: the live model is an
//! `Arc<DeepEr>` behind an `RwLock`; [`Tenant::reload`] parses the new
//! checkpoint *outside* the lock, then swaps the `Arc` and bumps the
//! generation counter. In-flight batches keep the snapshot `Arc` they
//! cloned at batch start — a reload never tears scores mid-batch, and
//! the next batch picks up the new generation.

use crate::batch::MicroBatcher;
use crate::config::ServeConfig;
use crate::engine;
use dc_clean::TableEncoder;
use dc_core::{check_pairs, DcError, DcResult};
use dc_discovery::{Bm25Lite, NeuralSearch};
use dc_er::DeepEr;
use dc_index::{IncrementalLshIndex, LshConfig};
use dc_relational::Table;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

static TENANTS: dc_obs::Gauge = dc_obs::Gauge::new("serve.tenants");
static RELOADS: dc_obs::Counter = dc_obs::Counter::new("serve.reloads");
static COMPACTIONS: dc_obs::Counter = dc_obs::Counter::new("serve.compactions");

type MatchBatcher = MicroBatcher<Vec<(usize, usize)>, DcResult<Vec<f32>>>;
type EncodeBatcher = MicroBatcher<Vec<usize>, DcResult<Vec<Vec<f32>>>>;

/// Everything needed to provision one tenant; finalized by
/// [`TenantSpec::build`]. Chainable `with_*` builders, like every other
/// config in the workspace.
pub struct TenantSpec {
    name: String,
    model: DeepEr,
    table: Table,
    dirty: Option<(Table, TableEncoder)>,
    search_tables: Vec<Table>,
    neural: Option<NeuralSearch>,
    lsh: LshConfig,
}

impl TenantSpec {
    /// A tenant serving `model` over `table` (match/encode only until
    /// more capabilities are added).
    pub fn new(name: impl Into<String>, model: DeepEr, table: Table) -> Self {
        TenantSpec {
            name: name.into(),
            model,
            table,
            dirty: None,
            search_tables: Vec::new(),
            neural: None,
            lsh: LshConfig {
                bands: 4,
                rows_per_band: 8,
                probes: 1,
            },
        }
    }

    /// Attach an imputation workload: a table with nulls and the
    /// encoder fitted to it (chainable builder).
    pub fn with_dirty(mut self, dirty: Table, encoder: TableEncoder) -> Self {
        self.dirty = Some((dirty, encoder));
        self
    }

    /// Attach the tenant's lake tables; BM25 search indexes them at
    /// build time (chainable builder).
    pub fn with_search_tables(mut self, tables: Vec<Table>) -> Self {
        self.search_tables = tables;
        self
    }

    /// Attach a pre-built neural search index (chainable builder).
    pub fn with_neural(mut self, neural: NeuralSearch) -> Self {
        self.neural = Some(neural);
        self
    }

    /// Override the incremental blocking index's banding (chainable
    /// builder).
    pub fn with_lsh(mut self, lsh: LshConfig) -> Self {
        self.lsh = lsh;
        self
    }

    /// Finalize: wire the micro-batchers (window/size from `cfg`) and
    /// build the per-tenant indexes.
    pub fn build(self, cfg: &ServeConfig) -> DcResult<Tenant> {
        let table = Arc::new(self.table);
        let model = Arc::new(RwLock::new(Arc::new(self.model)));
        let window = Duration::from_micros(cfg.batch_window_us);

        let (t, m) = (table.clone(), model.clone());
        let match_batcher = MicroBatcher::new(window, cfg.batch_max, move |jobs| {
            let snapshot = m.read().expect("model lock").clone();
            let lens: Vec<usize> = jobs.iter().map(Vec::len).collect();
            let all: Vec<(usize, usize)> = jobs.into_iter().flatten().collect();
            match engine::match_pairs(&snapshot, &t, &all) {
                Ok(scores) => {
                    let mut off = 0;
                    lens.iter()
                        .map(|&l| {
                            off += l;
                            Ok(scores[off - l..off].to_vec())
                        })
                        .collect()
                }
                Err(e) => lens.iter().map(|_| Err(e.clone())).collect(),
            }
        });

        let (t, m) = (table.clone(), model.clone());
        let encode_batcher =
            MicroBatcher::new(window, cfg.batch_max, move |jobs: Vec<Vec<usize>>| {
                let snapshot = m.read().expect("model lock").clone();
                let lens: Vec<usize> = jobs.iter().map(Vec::len).collect();
                let all: Vec<usize> = jobs.into_iter().flatten().collect();
                match engine::encode_rows(&snapshot, &t, &all) {
                    Ok(vecs) => {
                        let mut it = vecs.into_iter();
                        lens.iter()
                            .map(|&l| Ok(it.by_ref().take(l).collect()))
                            .collect()
                    }
                    Err(e) => lens.iter().map(|_| Err(e.clone())).collect(),
                }
            });

        let refs: Vec<&Table> = self.search_tables.iter().collect();
        let bm25 = Bm25Lite::index(&refs, 10);
        Ok(Tenant {
            name: self.name,
            table,
            dirty: self.dirty,
            model,
            generation: AtomicU64::new(1),
            index: Mutex::new(IncrementalLshIndex::new(self.lsh)?),
            bm25,
            neural: self.neural,
            match_batcher,
            encode_batcher,
        })
    }
}

/// One tenant's live state; see the module docs.
pub struct Tenant {
    name: String,
    table: Arc<Table>,
    dirty: Option<(Table, TableEncoder)>,
    model: Arc<RwLock<Arc<DeepEr>>>,
    generation: AtomicU64,
    index: Mutex<IncrementalLshIndex>,
    bm25: Bm25Lite,
    neural: Option<NeuralSearch>,
    match_batcher: MatchBatcher,
    encode_batcher: EncodeBatcher,
}

impl std::fmt::Debug for Tenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tenant")
            .field("name", &self.name)
            .field("rows", &self.table.len())
            .field("generation", &self.generation())
            .finish_non_exhaustive()
    }
}

impl Tenant {
    /// Tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Rows in the tenant's record table.
    pub fn rows(&self) -> usize {
        self.table.len()
    }

    /// Current model generation (starts at 1; each reload bumps it).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A snapshot of the live model — stable for as long as the caller
    /// holds the `Arc`, even across reloads.
    pub fn model(&self) -> Arc<DeepEr> {
        self.model.read().expect("model lock").clone()
    }

    /// The tenant's record table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Match scores for `pairs`, micro-batched with concurrent
    /// requests. Validation runs **before** enqueue so a malformed
    /// request fails alone and cannot poison a batch.
    pub fn match_pairs(&self, pairs: Vec<(usize, usize)>) -> DcResult<Vec<f32>> {
        check_pairs(&pairs, self.table.len())?;
        self.match_batcher.submit(pairs)
    }

    /// Tuple embeddings for `rows`, micro-batched with concurrent
    /// requests. Same validate-before-enqueue contract as
    /// [`Tenant::match_pairs`].
    pub fn encode_rows(&self, rows: Vec<usize>) -> DcResult<Vec<Vec<f32>>> {
        if let Some(&bad) = rows.iter().find(|&&r| r >= self.table.len()) {
            return Err(DcError::invalid(format!(
                "row {bad} out of range for a table of {} rows",
                self.table.len()
            )));
        }
        self.encode_batcher.submit(rows)
    }

    /// kNN-impute the tenant's dirty table; returns `(cells filled,
    /// imputed table)`.
    pub fn impute(&self, k: usize) -> DcResult<(usize, Table)> {
        let (dirty, encoder) = self
            .dirty
            .as_ref()
            .ok_or_else(|| DcError::not_found("tenant has no imputation workload"))?;
        let filled_table = engine::impute_knn(dirty, encoder, k)?;
        let before = count_nulls(dirty);
        let after = count_nulls(&filled_table);
        Ok((before - after, filled_table))
    }

    /// BM25 keyword search over the tenant's lake tables.
    pub fn search_bm25(&self, query: &str, k: usize) -> DcResult<Vec<(usize, f64)>> {
        engine::search_bm25(&self.bm25, query, k)
    }

    /// Neural search over the tenant's lake tables (404 when the tenant
    /// was provisioned without a neural index).
    pub fn search_neural(
        &self,
        query: &str,
        k: usize,
        shortlist: usize,
    ) -> DcResult<Vec<(usize, f32)>> {
        let neural = self
            .neural
            .as_ref()
            .ok_or_else(|| DcError::not_found("tenant has no neural search index"))?;
        engine::search_neural(neural, query, k, shortlist)
    }

    /// Insert a signature-score row into the incremental blocking
    /// index; returns the new item id.
    pub fn index_insert(&self, scores: &[f32]) -> DcResult<usize> {
        self.index.lock().expect("index lock").insert_scores(scores)
    }

    /// Tombstone an item of the blocking index.
    pub fn index_delete(&self, id: usize) -> DcResult<()> {
        self.index.lock().expect("index lock").delete(id)
    }

    /// Current candidate pairs plus the overflow-tier length.
    pub fn index_pairs(&self) -> (Vec<(usize, usize)>, usize) {
        let idx = self.index.lock().expect("index lock");
        (idx.candidate_pairs(), idx.overflow_len())
    }

    /// Compact the blocking index if its overflow tier reached
    /// `threshold`; the background maintenance thread calls this.
    pub fn maybe_compact(&self, threshold: usize) -> bool {
        let mut idx = self.index.lock().expect("index lock");
        if idx.overflow_len() >= threshold {
            idx.compact();
            COMPACTIONS.incr();
            true
        } else {
            false
        }
    }

    /// Write the live model as a JSON checkpoint.
    pub fn save_checkpoint(&self, path: &str) -> DcResult<()> {
        let json = serde_json::to_string(&*self.model())
            .map_err(|e| DcError::internal(format!("serialize checkpoint: {e}")))?;
        std::fs::write(path, json).map_err(|e| DcError::internal(format!("write {path}: {e}")))
    }

    /// Hot-reload the model from a JSON checkpoint: parse outside the
    /// lock, swap the `Arc`, bump and return the generation. In-flight
    /// batches finish on their snapshot.
    pub fn reload(&self, path: &str) -> DcResult<u64> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| DcError::not_found(format!("checkpoint {path}: {e}")))?;
        let fresh: DeepEr = serde_json::from_str(&json)
            .map_err(|e| DcError::invalid(format!("checkpoint {path}: {e}")))?;
        *self.model.write().expect("model lock") = Arc::new(fresh);
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        RELOADS.incr();
        Ok(generation)
    }
}

fn count_nulls(table: &Table) -> usize {
    table
        .rows
        .iter()
        .flat_map(|r| r.iter())
        .filter(|v| v.is_null())
        .count()
}

/// The multi-tenant registry: name → [`Tenant`], capacity-limited.
pub struct Registry {
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    max: usize,
}

impl Registry {
    /// An empty registry holding at most `max` tenants.
    pub fn new(max: usize) -> Self {
        Registry {
            tenants: RwLock::new(HashMap::new()),
            max: max.max(1),
        }
    }

    /// Add (or replace, same name) a tenant. New names beyond the
    /// capacity limit are refused with a 429-shaped error.
    pub fn insert(&self, tenant: Tenant) -> DcResult<Arc<Tenant>> {
        let mut map = self.tenants.write().expect("registry lock");
        if !map.contains_key(tenant.name()) && map.len() >= self.max {
            return Err(DcError::limit(format!(
                "registry is full ({} tenants)",
                self.max
            )));
        }
        let tenant = Arc::new(tenant);
        map.insert(tenant.name().to_string(), tenant.clone());
        TENANTS.set(map.len() as u64);
        Ok(tenant)
    }

    /// Look a tenant up by name.
    pub fn get(&self, name: &str) -> DcResult<Arc<Tenant>> {
        self.tenants
            .read()
            .expect("registry lock")
            .get(name)
            .cloned()
            .ok_or_else(|| DcError::not_found(format!("tenant {name:?}")))
    }

    /// All tenants, name-sorted (listing endpoint, maintenance sweep).
    pub fn all(&self) -> Vec<Arc<Tenant>> {
        let map = self.tenants.read().expect("registry lock");
        let mut out: Vec<Arc<Tenant>> = map.values().cloned().collect();
        out.sort_by(|a, b| a.name().cmp(b.name()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::tiny_tenant_spec;

    #[test]
    fn registry_enforces_capacity_and_lookup() {
        let cfg = ServeConfig::default().with_batch_window_us(50);
        let reg = Registry::new(2);
        reg.insert(tiny_tenant_spec("a", 11).build(&cfg).unwrap())
            .unwrap();
        reg.insert(tiny_tenant_spec("b", 12).build(&cfg).unwrap())
            .unwrap();
        // Replacing an existing name is fine at capacity...
        reg.insert(tiny_tenant_spec("b", 13).build(&cfg).unwrap())
            .unwrap();
        // ...a third name is not.
        let err = reg
            .insert(tiny_tenant_spec("c", 14).build(&cfg).unwrap())
            .unwrap_err();
        assert_eq!(err.kind(), "limit");
        assert_eq!(reg.get("a").unwrap().name(), "a");
        assert_eq!(reg.get("zzz").unwrap_err().kind(), "not_found");
        let names: Vec<String> = reg.all().iter().map(|t| t.name().to_string()).collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn match_validates_before_enqueue_and_scores_solo() {
        let cfg = ServeConfig::default().with_batch_window_us(50);
        let tenant = tiny_tenant_spec("t", 21).build(&cfg).unwrap();
        let n = tenant.rows();
        assert_eq!(
            tenant.match_pairs(vec![(0, n)]).unwrap_err().kind(),
            "invalid_input"
        );
        let scores = tenant.match_pairs(vec![(0, 1), (1, 2)]).unwrap();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
        let embs = tenant.encode_rows(vec![0, 2]).unwrap();
        assert_eq!(embs.len(), 2);
        assert_eq!(
            tenant.encode_rows(vec![n]).unwrap_err().kind(),
            "invalid_input"
        );
    }

    #[test]
    fn reload_round_trips_and_bumps_generation() {
        let cfg = ServeConfig::default().with_batch_window_us(50);
        let tenant = tiny_tenant_spec("t", 31).build(&cfg).unwrap();
        let before = tenant.match_pairs(vec![(0, 1), (2, 3)]).unwrap();
        assert_eq!(tenant.generation(), 1);
        let path = std::env::temp_dir().join("dc_serve_tenant_ckpt_test.json");
        let path = path.to_str().unwrap();
        tenant.save_checkpoint(path).unwrap();
        assert_eq!(tenant.reload(path).unwrap(), 2);
        let after = tenant.match_pairs(vec![(0, 1), (2, 3)]).unwrap();
        let (b, a): (Vec<u32>, Vec<u32>) = (
            before.iter().map(|s| s.to_bits()).collect(),
            after.iter().map(|s| s.to_bits()).collect(),
        );
        assert_eq!(b, a, "checkpoint round-trip must preserve scores bitwise");
        std::fs::remove_file(path).ok();
        assert_eq!(
            tenant.reload("/nonexistent/ckpt.json").unwrap_err().kind(),
            "not_found"
        );
    }

    #[test]
    fn incremental_index_endpoints_work() {
        let cfg = ServeConfig::default().with_batch_window_us(50);
        let tenant = tiny_tenant_spec("t", 41)
            .with_lsh(LshConfig {
                bands: 2,
                rows_per_band: 4,
                probes: 0,
            })
            .build(&cfg)
            .unwrap();
        let a = tenant.index_insert(&[1.0; 8]).unwrap();
        let b = tenant.index_insert(&[1.0; 8]).unwrap();
        assert_eq!(
            tenant.index_insert(&[1.0; 3]).unwrap_err().kind(),
            "invalid_input"
        );
        let (pairs, overflow) = tenant.index_pairs();
        assert_eq!(pairs, vec![(a, b)]);
        assert_eq!(overflow, 2);
        assert!(tenant.maybe_compact(1));
        assert_eq!(tenant.index_pairs().1, 0, "compaction drains the overflow");
        tenant.index_delete(b).unwrap();
        assert!(tenant.index_pairs().0.is_empty());
    }
}
