//! Column matchers: semantic (embedding coherent groups) vs syntactic
//! (name string similarity).
//!
//! §5.1: the semantic matcher "was able to surface links that were
//! previously unknown to the analysts" (same meaning, different names)
//! and "helped discard spurious results obtained from other syntactical
//! and structural matchers" (shared name tokens, unrelated values).
//! Experiment E6 scores both behaviours on the planted lake.

use dc_embed::coherent::coherent_group_similarity;
use dc_embed::{Embeddings, SgnsConfig};
use dc_relational::tokenize::{jaccard, tokenize};
use dc_relational::Table;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// A column endpoint: `(table index, column index)` within a lake.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Table index.
    pub table: usize,
    /// Column index.
    pub column: usize,
}

/// A matcher verdict on a column pair.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MatchDecision {
    /// The similarity score in `[−1, 1]`.
    pub score: f32,
    /// Whether the matcher links the pair.
    pub linked: bool,
}

/// Syntactic matcher: token Jaccard over column *names* — the baseline
/// whose spurious links the semantic matcher must discard.
#[derive(Clone, Copy, Debug)]
pub struct SyntacticMatcher {
    /// Link threshold on name-token Jaccard.
    pub threshold: f64,
}

impl SyntacticMatcher {
    /// Decide on a pair of column names.
    pub fn decide(&self, name_a: &str, name_b: &str) -> MatchDecision {
        let ja = jaccard(&tokenize(name_a), &tokenize(name_b));
        MatchDecision {
            score: ja as f32,
            linked: ja >= self.threshold,
        }
    }
}

/// Semantic matcher over value embeddings with coherent groups.
///
/// Column *contents* are embedded by treating every column as a
/// document of its values, so values that share columns anywhere in the
/// lake cluster together; a pair of columns is linked when the average
/// pairwise similarity of (samples of) their value sets is high.
pub struct SemanticMatcher {
    emb: Embeddings,
    /// Link threshold on coherent-group similarity.
    pub threshold: f32,
    /// Values sampled per column when deciding.
    pub sample: usize,
}

impl SemanticMatcher {
    /// Train value embeddings from the lake's column contents.
    pub fn train(tables: &[&Table], config: &SgnsConfig, rng: &mut StdRng) -> Self {
        let docs = column_documents(tables);
        SemanticMatcher {
            emb: Embeddings::train(&docs, config, rng),
            threshold: 0.35,
            sample: 20,
        }
    }

    /// Access the underlying value embeddings.
    pub fn embeddings(&self) -> &Embeddings {
        &self.emb
    }

    /// Decide on a pair of columns given their tables.
    pub fn decide(
        &self,
        table_a: &Table,
        col_a: usize,
        table_b: &Table,
        col_b: usize,
    ) -> MatchDecision {
        let group_a = column_value_tokens(table_a, col_a, self.sample);
        let group_b = column_value_tokens(table_b, col_b, self.sample);
        let score = coherent_group_similarity(&self.emb, &group_a, &group_b).unwrap_or(0.0);
        MatchDecision {
            score,
            linked: score >= self.threshold,
        }
    }
}

/// One document per column: its (distinct, tokenised) values. Shared
/// values act as bridges between columns of the same domain across
/// tables.
pub fn column_documents(tables: &[&Table]) -> Vec<Vec<String>> {
    let mut docs = Vec::new();
    for t in tables {
        for c in 0..t.schema.arity() {
            let mut doc = Vec::new();
            for v in t.distinct(c) {
                doc.extend(tokenize(&v.canonical()));
            }
            if !doc.is_empty() {
                docs.push(doc);
            }
        }
    }
    docs
}

fn column_value_tokens(table: &Table, col: usize, sample: usize) -> Vec<String> {
    let mut out = Vec::new();
    for v in table.distinct(col).into_iter().take(sample) {
        out.extend(tokenize(&v.canonical()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::Lake;
    use rand::SeedableRng;

    fn trained_lake() -> (Lake, SemanticMatcher) {
        let mut rng = StdRng::seed_from_u64(300);
        let lake = Lake::generate(10, 40, &mut rng);
        let refs: Vec<&Table> = lake.tables.iter().collect();
        let matcher = SemanticMatcher::train(
            &refs,
            &SgnsConfig {
                dim: 24,
                window: 8,
                epochs: 6,
                ..Default::default()
            },
            &mut rng,
        );
        (lake, matcher)
    }

    #[test]
    fn semantic_matcher_scores_true_links_above_spurious() {
        let (lake, matcher) = trained_lake();
        let avg = |links: &[dc_datagen::PlantedLink]| {
            let mut s = 0.0;
            for l in links {
                s += matcher
                    .decide(&lake.tables[l.a.0], l.a.1, &lake.tables[l.b.0], l.b.1)
                    .score;
            }
            s / links.len().max(1) as f32
        };
        let semantic = avg(&lake.semantic_links());
        let spurious = avg(&lake.spurious_links());
        assert!(
            semantic > spurious + 0.2,
            "semantic {semantic} vs spurious {spurious}"
        );
    }

    #[test]
    fn syntactic_matcher_falls_for_shared_tokens() {
        let m = SyntacticMatcher { threshold: 0.3 };
        // "site location" (city domain) vs "site region" (country
        // domain): shared token, different meaning.
        let d = m.decide("site location", "site region");
        assert!(d.linked, "syntactic matcher should (wrongly) link these");
        // And it cannot see same-meaning different-name links.
        let d2 = m.decide("city", "municipality");
        assert!(!d2.linked);
    }

    #[test]
    fn semantic_matcher_surfaces_renamed_links() {
        // The §5.1 "isoform ↔ Protein" case: same domain, disjoint
        // names. Count how many same-domain different-name pairs the
        // semantic matcher links.
        let (lake, matcher) = trained_lake();
        let mut surfaced = 0usize;
        let mut total = 0usize;
        for l in lake.semantic_links() {
            let na = &lake.tables[l.a.0].schema.attrs[l.a.1].name;
            let nb = &lake.tables[l.b.0].schema.attrs[l.b.1].name;
            if na == nb {
                continue; // trivially discoverable by name
            }
            total += 1;
            if matcher
                .decide(&lake.tables[l.a.0], l.a.1, &lake.tables[l.b.0], l.b.1)
                .linked
            {
                surfaced += 1;
            }
        }
        assert!(total > 0);
        assert!(
            surfaced as f64 / total as f64 > 0.6,
            "surfaced only {surfaced}/{total} renamed links"
        );
    }

    #[test]
    fn column_documents_skip_empty_columns() {
        let mut t = Table::new(
            "e",
            dc_relational::Schema::new(&[
                ("a", dc_relational::AttrType::Text),
                ("b", dc_relational::AttrType::Text),
            ]),
        );
        t.push(vec![
            dc_relational::Value::text("x"),
            dc_relational::Value::Null,
        ]);
        let docs = column_documents(&[&t]);
        assert_eq!(docs.len(), 1);
    }
}
