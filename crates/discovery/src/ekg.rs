//! The enterprise knowledge graph (EKG).
//!
//! §5.1 (footnote 3): "An EKG is a graph structure whose nodes are data
//! elements such as tables, attributes and reference data such as
//! ontologies and mapping tables and whose edges represent different
//! relationships between nodes." Discovered semantic links are
//! materialised here; search uses it to "simultaneously return other
//! datasets that are thematically related".

use crate::matcher::ColumnRef;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A node in the EKG.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EkgNode {
    /// A table, by lake index.
    Table(usize),
    /// A column of a table.
    Column(ColumnRef),
    /// An external ontology term.
    Ontology(String),
}

/// An edge kind in the EKG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EkgEdge {
    /// Table contains column.
    Contains,
    /// Two columns matched semantically, with the matcher score.
    SemanticLink(f32),
    /// A column maps to an ontology term.
    OntologyRef,
}

/// The enterprise knowledge graph.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Ekg {
    nodes: Vec<EkgNode>,
    index: HashMap<EkgNode, usize>,
    adj: Vec<Vec<(usize, EkgEdge)>>,
}

impl Ekg {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a node, returning its id.
    pub fn add_node(&mut self, node: EkgNode) -> usize {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        self.index.insert(node.clone(), id);
        self.nodes.push(node);
        self.adj.push(Vec::new());
        id
    }

    /// Add an undirected edge.
    pub fn add_edge(&mut self, a: EkgNode, b: EkgNode, edge: EkgEdge) {
        let ia = self.add_node(a);
        let ib = self.add_node(b);
        self.adj[ia].push((ib, edge.clone()));
        self.adj[ib].push((ia, edge));
    }

    /// Register a table with `arity` columns (adds Contains edges).
    pub fn add_table(&mut self, table: usize, arity: usize) {
        for column in 0..arity {
            self.add_edge(
                EkgNode::Table(table),
                EkgNode::Column(ColumnRef { table, column }),
                EkgEdge::Contains,
            );
        }
    }

    /// Record a discovered semantic link between two columns.
    pub fn add_semantic_link(&mut self, a: ColumnRef, b: ColumnRef, score: f32) {
        self.add_edge(
            EkgNode::Column(a),
            EkgNode::Column(b),
            EkgEdge::SemanticLink(score),
        );
    }

    /// Node count.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// All semantic links incident to any column of `table`.
    pub fn links_of_table(&self, table: usize) -> Vec<(ColumnRef, ColumnRef, f32)> {
        let mut out = Vec::new();
        for (id, node) in self.nodes.iter().enumerate() {
            let EkgNode::Column(cr) = node else { continue };
            if cr.table != table {
                continue;
            }
            for (to, edge) in &self.adj[id] {
                if let (EkgNode::Column(other), EkgEdge::SemanticLink(s)) = (&self.nodes[*to], edge)
                {
                    out.push((*cr, *other, *s));
                }
            }
        }
        out
    }

    /// Tables thematically related to `table`: reachable through at
    /// least one semantic link (one hop of columns).
    pub fn thematically_related(&self, table: usize) -> Vec<usize> {
        let mut seen = HashSet::new();
        for (_, other, _) in self.links_of_table(table) {
            if other.table != table {
                seen.insert(other.table);
            }
        }
        let mut out: Vec<usize> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cr(table: usize, column: usize) -> ColumnRef {
        ColumnRef { table, column }
    }

    #[test]
    fn tables_and_columns_intern_once() {
        let mut g = Ekg::new();
        g.add_table(0, 3);
        g.add_table(0, 3); // idempotent in node count (edges duplicate)
        assert_eq!(g.node_count(), 4); // 1 table + 3 columns
    }

    #[test]
    fn semantic_links_surface_per_table() {
        let mut g = Ekg::new();
        g.add_table(0, 2);
        g.add_table(1, 2);
        g.add_semantic_link(cr(0, 1), cr(1, 0), 0.8);
        let links = g.links_of_table(0);
        assert_eq!(links.len(), 1);
        assert_eq!(links[0].1, cr(1, 0));
        assert_eq!(links[0].2, 0.8);
        // Symmetric view from table 1.
        assert_eq!(g.links_of_table(1).len(), 1);
    }

    #[test]
    fn thematic_relation_is_one_hop_over_links() {
        let mut g = Ekg::new();
        for t in 0..3 {
            g.add_table(t, 2);
        }
        g.add_semantic_link(cr(0, 0), cr(1, 1), 0.7);
        g.add_semantic_link(cr(1, 0), cr(2, 0), 0.9);
        assert_eq!(g.thematically_related(0), vec![1]);
        assert_eq!(g.thematically_related(1), vec![0, 2]);
        assert_eq!(g.thematically_related(2), vec![1]);
    }

    #[test]
    fn ontology_nodes_attach() {
        let mut g = Ekg::new();
        g.add_edge(
            EkgNode::Column(cr(0, 0)),
            EkgNode::Ontology("protein".into()),
            EkgEdge::OntologyRef,
        );
        assert_eq!(g.node_count(), 2);
    }
}
