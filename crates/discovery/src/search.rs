//! Table search: neural IR vs keyword baseline (§5.1).
//!
//! "At its core, information retrieval involves two key steps: (a)
//! generating good representations for query and documents and (b)
//! finding relevance between query and documents." [`NeuralSearch`]
//! embeds tables and natural-language queries in the same vector space
//! and ranks by cosine; [`Bm25Lite`] is the keyword baseline; the EKG
//! expands top results with thematically related tables.

use crate::ekg::Ekg;
use dc_embed::Embeddings;
use dc_relational::tokenize::tokenize;
use dc_relational::Table;
use dc_tensor::tensor::cosine;
use std::collections::HashMap;

/// Embedding-based table search.
///
/// Relevance is *soft keyword matching* (the max-pooling interaction
/// of DRMM-style neural IR): each query token contributes the cosine of
/// its best-matching table token, and the table's score is the mean
/// over query tokens. This is robust where single mean-pooled table
/// vectors are not — averaging hundreds of one-off value tokens drowns
/// the few informative ones, while per-token max pooling keeps them.
pub struct NeuralSearch {
    emb: Embeddings,
    table_token_ids: Vec<Vec<usize>>,
}

impl NeuralSearch {
    /// Index tables under the given (word-level) embeddings, keeping
    /// per-table deduplicated token sets (name, column names, sampled
    /// values).
    pub fn index(emb: Embeddings, tables: &[&Table], values_per_column: usize) -> Self {
        // All-but-the-top: strip the common direction so token cosines
        // discriminate (see dc_embed::Embeddings::postprocessed).
        let emb = emb.postprocessed(1);
        let table_token_ids = tables
            .iter()
            .map(|t| {
                let mut ids: Vec<usize> = table_tokens(t, values_per_column)
                    .iter()
                    .filter_map(|tok| emb.vocab.id(tok))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();
        NeuralSearch {
            emb,
            table_token_ids,
        }
    }

    /// Rank all tables for a natural-language query; returns
    /// `(table index, score)` sorted descending. Tables with no
    /// representable content sink to the bottom with score −1.
    pub fn search(&self, query: &str) -> Vec<(usize, f32)> {
        let qids: Vec<usize> = tokenize(query)
            .iter()
            .filter_map(|t| self.emb.vocab.id(t))
            .collect();
        let mut scored: Vec<(usize, f32)> = self
            .table_token_ids
            .iter()
            .enumerate()
            .map(|(i, tids)| {
                if qids.is_empty() || tids.is_empty() {
                    return (i, -1.0);
                }
                let mut total = 0.0;
                for &q in &qids {
                    let qv = self.emb.vectors.row_slice(q);
                    let best = tids
                        .iter()
                        .map(|&t| {
                            if t == q {
                                1.0 // exact keyword hit
                            } else {
                                cosine(qv, self.emb.vectors.row_slice(t))
                            }
                        })
                        .fold(f32::NEG_INFINITY, f32::max);
                    total += best;
                }
                (i, total / qids.len() as f32)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        scored
    }

    /// Search, then expand each of the top `k` results with tables the
    /// EKG marks as thematically related (deduplicated, order kept).
    pub fn search_with_expansion(&self, query: &str, k: usize, ekg: &Ekg) -> Vec<usize> {
        let ranked = self.search(query);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &(t, _) in ranked.iter().take(k) {
            if seen.insert(t) {
                out.push(t);
            }
            for rel in ekg.thematically_related(t) {
                if seen.insert(rel) {
                    out.push(rel);
                }
            }
        }
        out
    }
}

/// Training documents for search embeddings: one per column, holding
/// the table-name tokens, the column-name tokens and the column's
/// distinct values — so schema vocabulary ("city") and content
/// vocabulary ("paris") land in the same embedding neighbourhood, which
/// is what lets a natural-language query reach tables by either.
pub fn search_documents(tables: &[&Table], values_per_column: usize) -> Vec<Vec<String>> {
    let mut docs = Vec::new();
    for t in tables {
        for c in 0..t.schema.arity() {
            let mut doc = tokenize(&t.name);
            doc.extend(tokenize(&t.schema.attrs[c].name));
            for v in t.distinct(c).into_iter().take(values_per_column) {
                doc.extend(tokenize(&v.canonical()));
            }
            docs.push(doc);
        }
    }
    docs
}

fn table_tokens(t: &Table, values_per_column: usize) -> Vec<String> {
    let mut tokens = tokenize(&t.name);
    for a in &t.schema.attrs {
        tokens.extend(tokenize(&a.name));
    }
    for c in 0..t.schema.arity() {
        for v in t.distinct(c).into_iter().take(values_per_column) {
            tokens.extend(tokenize(&v.canonical()));
        }
    }
    tokens
}

/// A small BM25 keyword ranker over table token bags — the syntactic
/// baseline E7 compares against.
pub struct Bm25Lite {
    docs: Vec<HashMap<String, f64>>,
    doc_len: Vec<f64>,
    avg_len: f64,
    df: HashMap<String, usize>,
    n: usize,
}

impl Bm25Lite {
    const K1: f64 = 1.2;
    const B: f64 = 0.75;

    /// Index tables as token bags.
    pub fn index(tables: &[&Table], values_per_column: usize) -> Self {
        let mut docs = Vec::new();
        let mut df: HashMap<String, usize> = HashMap::new();
        for t in tables {
            let mut tf: HashMap<String, f64> = HashMap::new();
            for tok in table_tokens(t, values_per_column) {
                *tf.entry(tok).or_insert(0.0) += 1.0;
            }
            for tok in tf.keys() {
                *df.entry(tok.clone()).or_insert(0) += 1;
            }
            docs.push(tf);
        }
        let doc_len: Vec<f64> = docs.iter().map(|d| d.values().sum()).collect();
        let avg_len = if doc_len.is_empty() {
            1.0
        } else {
            doc_len.iter().sum::<f64>() / doc_len.len() as f64
        };
        Bm25Lite {
            n: docs.len(),
            docs,
            doc_len,
            avg_len,
            df,
        }
    }

    /// Rank all tables for a query.
    pub fn search(&self, query: &str) -> Vec<(usize, f64)> {
        let qtokens = tokenize(query);
        let mut scored: Vec<(usize, f64)> = (0..self.n)
            .map(|i| {
                let mut s = 0.0;
                for q in &qtokens {
                    let Some(&tf) = self.docs[i].get(q) else {
                        continue;
                    };
                    let df = *self.df.get(q).unwrap_or(&0) as f64;
                    let idf = (((self.n as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln();
                    let denom =
                        tf + Self::K1 * (1.0 - Self::B + Self::B * self.doc_len[i] / self.avg_len);
                    s += idf * tf * (Self::K1 + 1.0) / denom;
                }
                (i, s)
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
        scored
    }
}

/// Mean reciprocal rank of the first relevant item per query.
/// `rankings[q]` is the ranked list of item ids; `relevant[q]` the gold
/// set.
pub fn mrr(rankings: &[Vec<usize>], relevant: &[Vec<usize>]) -> f64 {
    assert_eq!(rankings.len(), relevant.len());
    if rankings.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (ranking, rel) in rankings.iter().zip(relevant) {
        for (i, item) in ranking.iter().enumerate() {
            if rel.contains(item) {
                total += 1.0 / (i + 1) as f64;
                break;
            }
        }
    }
    total / rankings.len() as f64
}

/// Precision@k averaged over queries.
pub fn precision_at(k: usize, rankings: &[Vec<usize>], relevant: &[Vec<usize>]) -> f64 {
    assert_eq!(rankings.len(), relevant.len());
    if rankings.is_empty() || k == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (ranking, rel) in rankings.iter().zip(relevant) {
        let hits = ranking.iter().take(k).filter(|i| rel.contains(i)).count();
        total += hits as f64 / k as f64;
    }
    total / rankings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::Lake;
    use dc_embed::SgnsConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lake_and_search() -> (Lake, NeuralSearch, Bm25Lite) {
        let mut rng = StdRng::seed_from_u64(400);
        let lake = Lake::generate(12, 30, &mut rng);
        let refs: Vec<&Table> = lake.tables.iter().collect();
        // Word embeddings over column documents + name tokens.
        let mut docs = crate::matcher::column_documents(&refs);
        for t in &refs {
            docs.push(
                t.schema
                    .attrs
                    .iter()
                    .flat_map(|a| tokenize(&a.name))
                    .collect(),
            );
        }
        let emb = Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 24,
                window: 8,
                epochs: 6,
                ..Default::default()
            },
            &mut rng,
        );
        let neural = NeuralSearch::index(emb, &refs, 15);
        let bm25 = Bm25Lite::index(&refs, 15);
        (lake, neural, bm25)
    }

    #[test]
    fn neural_search_finds_relevant_tables() {
        let (lake, neural, _) = lake_and_search();
        let queries = lake.search_queries();
        let mut rankings = Vec::new();
        let mut relevant = Vec::new();
        for (q, rel) in &queries {
            if rel.is_empty() {
                continue;
            }
            rankings.push(neural.search(q).into_iter().map(|(i, _)| i).collect());
            relevant.push(rel.clone());
        }
        let score = mrr(&rankings, &relevant);
        assert!(score > 0.5, "neural MRR {score}");
    }

    #[test]
    fn bm25_ranks_keyword_matches_first() {
        let (lake, _, bm25) = lake_and_search();
        let queries = lake.search_queries();
        let (q, rel) = queries
            .iter()
            .find(|(_, rel)| !rel.is_empty())
            .expect("some query has relevant tables");
        let top = bm25.search(q)[0].0;
        // BM25's top hit should at least be a table whose *name tokens or
        // values* contain the query keyword — sanity, not superiority.
        let ranked: Vec<usize> = bm25.search(q).into_iter().map(|(i, _)| i).collect();
        let p = precision_at(rel.len().min(3), &[ranked], std::slice::from_ref(rel));
        assert!(p > 0.0, "bm25 found nothing for {q}; top was {top}");
    }

    #[test]
    fn expansion_adds_thematically_related() {
        let (lake, neural, _) = lake_and_search();
        let mut ekg = Ekg::new();
        for (i, t) in lake.tables.iter().enumerate() {
            ekg.add_table(i, t.schema.arity());
        }
        // Manually link table 0 and table 1.
        ekg.add_semantic_link(
            crate::matcher::ColumnRef {
                table: 0,
                column: 0,
            },
            crate::matcher::ColumnRef {
                table: 1,
                column: 0,
            },
            0.9,
        );
        let (q, _) = &lake.search_queries()[0];
        let plain: Vec<usize> = neural.search(q).into_iter().map(|(i, _)| i).collect();
        let expanded = neural.search_with_expansion(q, 1, &ekg);
        assert!(!expanded.is_empty());
        // If table 0 or 1 is the top hit, its partner must follow.
        if plain[0] == 0 {
            assert!(expanded.contains(&1));
        }
        if plain[0] == 1 {
            assert!(expanded.contains(&0));
        }
    }

    #[test]
    fn metric_edge_cases() {
        assert_eq!(mrr(&[], &[]), 0.0);
        assert_eq!(precision_at(0, &[vec![1]], &[vec![1]]), 0.0);
        let r = mrr(&[vec![3, 1, 2]], &[vec![2]]);
        assert!((r - 1.0 / 3.0).abs() < 1e-9);
        let p = precision_at(2, &[vec![1, 2, 3]], &[vec![2, 3]]);
        assert!((p - 0.5).abs() < 1e-9);
    }
}
