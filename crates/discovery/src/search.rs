//! Table search: neural IR vs keyword baseline (§5.1).
//!
//! "At its core, information retrieval involves two key steps: (a)
//! generating good representations for query and documents and (b)
//! finding relevance between query and documents." [`NeuralSearch`]
//! embeds tables and natural-language queries in the same vector space
//! and ranks by cosine; [`Bm25Lite`] is the keyword baseline; the EKG
//! expands top results with thematically related tables.

use crate::ekg::Ekg;
use dc_embed::Embeddings;
use dc_index::{desc_nan_last, i32_goodness, topk_scores, Order, QuantizedSet, SignatureSet, TopK};
use dc_relational::tokenize::tokenize;
use dc_relational::Table;
use dc_tensor::kernel::dot_i8;
use dc_tensor::tensor::cosine;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Sign bits per table-centroid signature in the [`NeuralSearch`]
/// prefilter — one `u64` word.
const PREFILTER_BITS: usize = 64;

/// Fixed seed for the prefilter hyperplanes: the shortlist must not
/// depend on ambient RNG state, only on the indexed tables.
const PREFILTER_SEED: u64 = 0xd15c_05e6;

/// Embedding-based table search.
///
/// Relevance is *soft keyword matching* (the max-pooling interaction
/// of DRMM-style neural IR): each query token contributes the cosine of
/// its best-matching table token, and the table's score is the mean
/// over query tokens. This is robust where single mean-pooled table
/// vectors are not — averaging hundreds of one-off value tokens drowns
/// the few informative ones, while per-token max pooling keeps them.
///
/// [`NeuralSearch::search`] rescopes every table; at lake scale use
/// [`NeuralSearch::search_topk`], which prefilters to a Hamming-nearest
/// shortlist over bit-packed table-centroid signatures (built once at
/// index time through [`dc_index`]) and pays the full interaction score
/// only for the shortlist.
pub struct NeuralSearch {
    emb: Embeddings,
    table_token_ids: Vec<Vec<usize>>,
    /// Hyperplanes behind the centroid signatures (`PREFILTER_BITS×dim`).
    sig_planes: Tensor,
    /// Mean table centroid; signatures are of centered centroids
    /// (centroids cluster in one orthant, where raw signs carry no
    /// information — same trick as `dc_er::blocking`).
    centroid_mean: Vec<f32>,
    /// Bit-packed signature per table.
    table_sigs: SignatureSet,
    /// Int8-quantized centered centroids (per-column scales) — the
    /// middle tier of the retrieval funnel in
    /// [`NeuralSearch::search_topk`].
    centroid_quant: QuantizedSet,
}

impl NeuralSearch {
    /// Index tables under the given (word-level) embeddings, keeping
    /// per-table deduplicated token sets (name, column names, sampled
    /// values) plus a bit-packed centroid signature for the
    /// [`NeuralSearch::search_topk`] prefilter.
    pub fn index(emb: Embeddings, tables: &[&Table], values_per_column: usize) -> Self {
        // All-but-the-top: strip the common direction so token cosines
        // discriminate (see dc_embed::Embeddings::postprocessed).
        let emb = emb.postprocessed(1);
        let table_token_ids: Vec<Vec<usize>> = tables
            .iter()
            .map(|t| {
                let mut ids: Vec<usize> = table_tokens(t, values_per_column)
                    .iter()
                    .filter_map(|tok| emb.vocab.id(tok))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            })
            .collect();

        let dim = emb.dim();
        let n = table_token_ids.len();
        // Table-token incidence as a unit-value CSR over the vocabulary
        // (row i flags table i's token ids, already sorted ascending).
        // centroid sums become one CSR×dense matmul that runs
        // row-parallel over the shared pool; unit values (`1.0 * x`)
        // accumulated in ascending id order keep every sum bitwise
        // equal to the serial per-table `centroid_into` loop.
        let centroids = table_incidence_csr(&table_token_ids, emb.vectors.rows);
        let mut centroids = centroids.matmul_dense(&emb.vectors).data;
        for (i, tids) in table_token_ids.iter().enumerate() {
            if !tids.is_empty() {
                let inv = 1.0 / tids.len() as f32;
                centroids[i * dim..(i + 1) * dim]
                    .iter_mut()
                    .for_each(|x| *x *= inv);
            }
        }
        let mut centroid_mean = vec![0.0f32; dim];
        if n > 0 {
            for row in centroids.chunks_exact(dim) {
                for (m, &x) in centroid_mean.iter_mut().zip(row) {
                    *m += x;
                }
            }
            let inv = 1.0 / n as f32;
            centroid_mean.iter_mut().for_each(|m| *m *= inv);
        }
        for row in centroids.chunks_exact_mut(dim) {
            for (x, &m) in row.iter_mut().zip(&centroid_mean) {
                *x -= m;
            }
        }
        let sig_planes = Tensor::randn(
            PREFILTER_BITS,
            dim,
            1.0,
            &mut StdRng::seed_from_u64(PREFILTER_SEED),
        );
        let centroids = Tensor::from_vec(n, dim, centroids);
        let table_sigs = SignatureSet::compute(&centroids, &sig_planes);
        let centroid_quant = QuantizedSet::build(&centroids);
        NeuralSearch {
            emb,
            table_token_ids,
            sig_planes,
            centroid_mean,
            table_sigs,
            centroid_quant,
        }
    }

    /// Query tokens resolved to vocabulary ids.
    fn query_ids(&self, query: &str) -> Vec<usize> {
        tokenize(query)
            .iter()
            .filter_map(|t| self.emb.vocab.id(t))
            .collect()
    }

    /// The DRMM-style interaction score of table `i` for resolved query
    /// tokens `qids`: mean over query tokens of the best-matching table
    /// token cosine. Tables (or queries) with no representable content
    /// score −1.
    fn interaction_score(&self, i: usize, qids: &[usize]) -> f32 {
        let tids = &self.table_token_ids[i];
        if qids.is_empty() || tids.is_empty() {
            return -1.0;
        }
        let mut total = 0.0;
        for &q in qids {
            let qv = self.emb.vectors.row_slice(q);
            let best = tids
                .iter()
                .map(|&t| {
                    if t == q {
                        1.0 // exact keyword hit
                    } else {
                        cosine(qv, self.emb.vectors.row_slice(t))
                    }
                })
                .fold(f32::NEG_INFINITY, f32::max);
            total += best;
        }
        total / qids.len() as f32
    }

    /// Rank all tables for a natural-language query; returns
    /// `(table index, score)` sorted descending. Tables with no
    /// representable content sink to the bottom with score −1.
    pub fn search(&self, query: &str) -> Vec<(usize, f32)> {
        let qids = self.query_ids(query);
        let mut scored: Vec<(usize, f32)> = (0..self.table_token_ids.len())
            .map(|i| (i, self.interaction_score(i, &qids)))
            .collect();
        scored.sort_by(|a, b| desc_nan_last(a.1, b.1));
        scored
    }

    /// The top `k` tables for a query, rescoring only a `shortlist` of
    /// candidates that survive the retrieval funnel: a Hamming-nearest
    /// prefilter over 1-bit centroid signatures keeps a 4×-widened
    /// pool, an int8 quantized centroid dot narrows it to the
    /// shortlist, and only the shortlist pays the full interaction
    /// score. With `shortlist >= table count` (or an out-of-vocabulary
    /// query) this is exact: identical tables, scores and order to
    /// [`NeuralSearch::search`] truncated to `k`.
    pub fn search_topk(&self, query: &str, k: usize, shortlist: usize) -> Vec<(usize, f32)> {
        self.try_search_topk(query, k, shortlist)
            .unwrap_or_else(|e| panic!("NeuralSearch::search_topk: {e}"))
    }

    /// [`Self::search_topk`] with a structured error instead of a panic
    /// on degenerate parameters — the service-facing entry (dc-serve
    /// returns it as a 4xx). An out-of-vocabulary query is *not* an
    /// error: it ranks everything at −1, same as [`Self::search`].
    pub fn try_search_topk(
        &self,
        query: &str,
        k: usize,
        shortlist: usize,
    ) -> dc_core::DcResult<Vec<(usize, f32)>> {
        if k == 0 {
            return Err(dc_core::DcError::invalid("search: k must be at least 1"));
        }
        if self.table_token_ids.is_empty() {
            return Err(dc_core::DcError::not_found("search: no tables indexed"));
        }
        let qids = self.query_ids(query);
        let n = self.table_token_ids.len();
        if qids.is_empty() || shortlist >= n {
            return Ok(
                topk_scores(n, k, Order::Largest, |i| self.interaction_score(i, &qids))
                    .into_iter()
                    .map(|h| (h.index, h.score))
                    .collect(),
            );
        }
        let qc = self.centered_query_centroid(&qids);
        let keep = shortlist.max(k);
        let widen = keep.saturating_mul(4).min(n);
        // Tier 1: 1-bit Hamming prefilter, skipped when it cannot narrow.
        let cands: Vec<usize> = if widen < n {
            let qsig = self.query_signature(&qc);
            let mut pre = TopK::smallest(widen);
            for i in 0..n {
                // Hamming ≤ PREFILTER_BITS, exactly representable in f32.
                pre.push(i, self.table_sigs.hamming_to(i, &qsig) as f32);
            }
            pre.into_sorted().into_iter().map(|h| h.index).collect()
        } else {
            (0..n).collect()
        };
        // Tier 2: int8 centroid dot narrows the pool to the shortlist
        // (exact integer goodness keys — no f32 tie collapse).
        let cands: Vec<usize> = if cands.len() > keep {
            let (t, qq) = self.centroid_quant.quantize_query(&qc);
            let mut mid = TopK::largest(keep);
            for &i in &cands {
                let d = dot_i8(self.centroid_quant.row(i), &qq);
                mid.push_with_goodness(i, i32_goodness(d), t * d as f32);
            }
            mid.into_sorted().into_iter().map(|h| h.index).collect()
        } else {
            cands
        };
        // Tier 3: exact interaction rescore of the survivors.
        let mut top = TopK::largest(k);
        for i in cands {
            top.push(i, self.interaction_score(i, &qids));
        }
        Ok(top
            .into_sorted()
            .into_iter()
            .map(|h| (h.index, h.score))
            .collect())
    }

    /// Mean query-token vector, centered like the table centroids — the
    /// shared query representation of funnel tiers 1 and 2.
    fn centered_query_centroid(&self, qids: &[usize]) -> Vec<f32> {
        let dim = self.emb.dim();
        let mut centroid = vec![0.0f32; dim];
        centroid_into(&self.emb, qids, &mut centroid);
        for (x, &m) in centroid.iter_mut().zip(&self.centroid_mean) {
            *x -= m;
        }
        centroid
    }

    /// Bit-packed signature of a centered query centroid.
    fn query_signature(&self, centroid: &[f32]) -> Vec<u64> {
        let dim = self.emb.dim();
        let sig = SignatureSet::compute(
            &Tensor::from_vec(1, dim, centroid.to_vec()),
            &self.sig_planes,
        );
        sig.sig(0).to_vec()
    }

    /// Search, then expand each of the top `k` results with tables the
    /// EKG marks as thematically related (deduplicated, order kept).
    pub fn search_with_expansion(&self, query: &str, k: usize, ekg: &Ekg) -> Vec<usize> {
        let ranked = self.search(query);
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for &(t, _) in ranked.iter().take(k) {
            if seen.insert(t) {
                out.push(t);
            }
            for rel in ekg.thematically_related(t) {
                if seen.insert(rel) {
                    out.push(rel);
                }
            }
        }
        out
    }
}

/// Training documents for search embeddings: one per column, holding
/// the table-name tokens, the column-name tokens and the column's
/// distinct values — so schema vocabulary ("city") and content
/// vocabulary ("paris") land in the same embedding neighbourhood, which
/// is what lets a natural-language query reach tables by either.
pub fn search_documents(tables: &[&Table], values_per_column: usize) -> Vec<Vec<String>> {
    let mut docs = Vec::new();
    for t in tables {
        for c in 0..t.schema.arity() {
            let mut doc = tokenize(&t.name);
            doc.extend(tokenize(&t.schema.attrs[c].name));
            for v in t.distinct(c).into_iter().take(values_per_column) {
                doc.extend(tokenize(&v.canonical()));
            }
            docs.push(doc);
        }
    }
    docs
}

/// Unit-value CSR of sorted, deduplicated token-id sets: one row per
/// table, one `1.0` per token the table contains.
fn table_incidence_csr(table_token_ids: &[Vec<usize>], vocab: usize) -> dc_data::Csr {
    let mut b = dc_data::CsrBuilder::new(vocab);
    for tids in table_token_ids {
        b.push_row(tids.iter().map(|&t| (t as u32, 1.0)));
    }
    b.finish()
}

/// Mean of the embedding vectors of `ids`, written into `out`
/// (all-zero when `ids` is empty).
fn centroid_into(emb: &Embeddings, ids: &[usize], out: &mut [f32]) {
    out.fill(0.0);
    if ids.is_empty() {
        return;
    }
    for &id in ids {
        for (o, &x) in out.iter_mut().zip(emb.vectors.row_slice(id)) {
            *o += x;
        }
    }
    let inv = 1.0 / ids.len() as f32;
    out.iter_mut().for_each(|o| *o *= inv);
}

fn table_tokens(t: &Table, values_per_column: usize) -> Vec<String> {
    let mut tokens = tokenize(&t.name);
    for a in &t.schema.attrs {
        tokens.extend(tokenize(&a.name));
    }
    for c in 0..t.schema.arity() {
        for v in t.distinct(c).into_iter().take(values_per_column) {
            tokens.extend(tokenize(&v.canonical()));
        }
    }
    tokens
}

/// A small BM25 keyword ranker over table token bags — the syntactic
/// baseline E7 compares against.
///
/// [`Bm25Lite::index`] also builds an inverted postings list
/// (token → sorted doc ids), so [`Bm25Lite::search_topk`] scores only
/// the documents that contain at least one query token instead of the
/// whole lake; every other document scores exactly 0, so the prefilter
/// loses nothing.
pub struct Bm25Lite {
    docs: Vec<HashMap<String, f64>>,
    doc_len: Vec<f64>,
    avg_len: f64,
    df: HashMap<String, usize>,
    /// Token → ascending ids of the docs containing it.
    postings: HashMap<String, Vec<u32>>,
    n: usize,
}

impl Bm25Lite {
    const K1: f64 = 1.2;
    const B: f64 = 0.75;

    /// Index tables as token bags plus an inverted postings list.
    pub fn index(tables: &[&Table], values_per_column: usize) -> Self {
        let mut docs = Vec::new();
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut postings: HashMap<String, Vec<u32>> = HashMap::new();
        for (i, t) in tables.iter().enumerate() {
            let mut tf: HashMap<String, f64> = HashMap::new();
            for tok in table_tokens(t, values_per_column) {
                *tf.entry(tok).or_insert(0.0) += 1.0;
            }
            for tok in tf.keys() {
                *df.entry(tok.clone()).or_insert(0) += 1;
                postings.entry(tok.clone()).or_default().push(i as u32);
            }
            docs.push(tf);
        }
        let doc_len: Vec<f64> = docs.iter().map(|d| d.values().sum()).collect();
        let avg_len = if doc_len.is_empty() {
            1.0
        } else {
            doc_len.iter().sum::<f64>() / doc_len.len() as f64
        };
        Bm25Lite {
            n: docs.len(),
            docs,
            doc_len,
            avg_len,
            df,
            postings,
        }
    }

    /// BM25 score of document `i` for pre-tokenized query tokens.
    fn score(&self, i: usize, qtokens: &[String]) -> f64 {
        let mut s = 0.0;
        for q in qtokens {
            let Some(&tf) = self.docs[i].get(q) else {
                continue;
            };
            let df = *self.df.get(q).unwrap_or(&0) as f64;
            let idf = (((self.n as f64 - df + 0.5) / (df + 0.5)) + 1.0).ln();
            let denom = tf + Self::K1 * (1.0 - Self::B + Self::B * self.doc_len[i] / self.avg_len);
            s += idf * tf * (Self::K1 + 1.0) / denom;
        }
        s
    }

    /// Rank all tables for a query.
    pub fn search(&self, query: &str) -> Vec<(usize, f64)> {
        let qtokens = tokenize(query);
        let mut scored: Vec<(usize, f64)> =
            (0..self.n).map(|i| (i, self.score(i, &qtokens))).collect();
        scored.sort_by(|a, b| match (a.1.is_nan(), b.1.is_nan()) {
            (true, true) => std::cmp::Ordering::Equal,
            (true, false) => std::cmp::Ordering::Greater,
            (false, true) => std::cmp::Ordering::Less,
            (false, false) => b.1.partial_cmp(&a.1).expect("both finite"),
        });
        scored
    }

    /// The top `k` tables for a query via the postings prefilter:
    /// score only docs containing at least one query token, then pad
    /// with zero-scoring docs (ascending id) if fewer than `k` match —
    /// exactly the head of [`Bm25Lite::search`], since BM25 scores of
    /// matching docs are strictly positive and all others are 0.
    pub fn search_topk(&self, query: &str, k: usize) -> Vec<(usize, f64)> {
        self.try_search_topk(query, k)
            .unwrap_or_else(|e| panic!("Bm25Lite::search_topk: {e}"))
    }

    /// [`Self::search_topk`] with a structured error instead of a panic
    /// on degenerate parameters — the service-facing entry (dc-serve
    /// returns it as a 4xx).
    pub fn try_search_topk(&self, query: &str, k: usize) -> dc_core::DcResult<Vec<(usize, f64)>> {
        if k == 0 {
            return Err(dc_core::DcError::invalid("search: k must be at least 1"));
        }
        if self.n == 0 {
            return Err(dc_core::DcError::not_found("search: no tables indexed"));
        }
        let qtokens = tokenize(query);
        let mut candidates: Vec<u32> = qtokens
            .iter()
            .filter_map(|q| self.postings.get(q))
            .flatten()
            .copied()
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        let mut scored: Vec<(usize, f64)> = candidates
            .iter()
            .map(|&i| (i as usize, self.score(i as usize, &qtokens)))
            .collect();
        // Stable: equal scores keep ascending doc id, like `search`.
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("BM25 scores are finite"));
        scored.truncate(k);
        if scored.len() < k.min(self.n) {
            let matched: std::collections::HashSet<usize> =
                candidates.iter().map(|&i| i as usize).collect();
            scored.extend(
                (0..self.n)
                    .filter(|i| !matched.contains(i))
                    .take(k - scored.len())
                    .map(|i| (i, 0.0)),
            );
        }
        Ok(scored)
    }
}

/// Mean reciprocal rank of the first relevant item per query.
/// `rankings[q]` is the ranked list of item ids; `relevant[q]` the gold
/// set.
pub fn mrr(rankings: &[Vec<usize>], relevant: &[Vec<usize>]) -> f64 {
    assert_eq!(rankings.len(), relevant.len());
    if rankings.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (ranking, rel) in rankings.iter().zip(relevant) {
        for (i, item) in ranking.iter().enumerate() {
            if rel.contains(item) {
                total += 1.0 / (i + 1) as f64;
                break;
            }
        }
    }
    total / rankings.len() as f64
}

/// Precision@k averaged over queries.
pub fn precision_at(k: usize, rankings: &[Vec<usize>], relevant: &[Vec<usize>]) -> f64 {
    assert_eq!(rankings.len(), relevant.len());
    if rankings.is_empty() || k == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    for (ranking, rel) in rankings.iter().zip(relevant) {
        let hits = ranking.iter().take(k).filter(|i| rel.contains(i)).count();
        total += hits as f64 / k as f64;
    }
    total / rankings.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_datagen::Lake;
    use dc_embed::SgnsConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn lake_and_search() -> (Lake, NeuralSearch, Bm25Lite) {
        let mut rng = StdRng::seed_from_u64(400);
        let lake = Lake::generate(12, 30, &mut rng);
        let refs: Vec<&Table> = lake.tables.iter().collect();
        // Word embeddings over column documents + name tokens.
        let mut docs = crate::matcher::column_documents(&refs);
        for t in &refs {
            docs.push(
                t.schema
                    .attrs
                    .iter()
                    .flat_map(|a| tokenize(&a.name))
                    .collect(),
            );
        }
        let emb = Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 24,
                window: 8,
                epochs: 6,
                ..Default::default()
            },
            &mut rng,
        );
        let neural = NeuralSearch::index(emb, &refs, 15);
        let bm25 = Bm25Lite::index(&refs, 15);
        (lake, neural, bm25)
    }

    #[test]
    fn neural_search_finds_relevant_tables() {
        let (lake, neural, _) = lake_and_search();
        let queries = lake.search_queries();
        let mut rankings = Vec::new();
        let mut relevant = Vec::new();
        for (q, rel) in &queries {
            if rel.is_empty() {
                continue;
            }
            rankings.push(neural.search(q).into_iter().map(|(i, _)| i).collect());
            relevant.push(rel.clone());
        }
        let score = mrr(&rankings, &relevant);
        assert!(score > 0.5, "neural MRR {score}");
    }

    #[test]
    fn bm25_ranks_keyword_matches_first() {
        let (lake, _, bm25) = lake_and_search();
        let queries = lake.search_queries();
        let (q, rel) = queries
            .iter()
            .find(|(_, rel)| !rel.is_empty())
            .expect("some query has relevant tables");
        let top = bm25.search(q)[0].0;
        // BM25's top hit should at least be a table whose *name tokens or
        // values* contain the query keyword — sanity, not superiority.
        let ranked: Vec<usize> = bm25.search(q).into_iter().map(|(i, _)| i).collect();
        let p = precision_at(rel.len().min(3), &[ranked], std::slice::from_ref(rel));
        assert!(p > 0.0, "bm25 found nothing for {q}; top was {top}");
    }

    #[test]
    fn expansion_adds_thematically_related() {
        let (lake, neural, _) = lake_and_search();
        let mut ekg = Ekg::new();
        for (i, t) in lake.tables.iter().enumerate() {
            ekg.add_table(i, t.schema.arity());
        }
        // Manually link table 0 and table 1.
        ekg.add_semantic_link(
            crate::matcher::ColumnRef {
                table: 0,
                column: 0,
            },
            crate::matcher::ColumnRef {
                table: 1,
                column: 0,
            },
            0.9,
        );
        let (q, _) = &lake.search_queries()[0];
        let plain: Vec<usize> = neural.search(q).into_iter().map(|(i, _)| i).collect();
        let expanded = neural.search_with_expansion(q, 1, &ekg);
        assert!(!expanded.is_empty());
        // If table 0 or 1 is the top hit, its partner must follow.
        if plain[0] == 0 {
            assert!(expanded.contains(&1));
        }
        if plain[0] == 1 {
            assert!(expanded.contains(&0));
        }
    }

    #[test]
    fn neural_search_topk_exact_path_matches_full_search() {
        let (lake, neural, _) = lake_and_search();
        let n = lake.tables.len();
        for (q, _) in lake.search_queries().iter().take(4) {
            let full = neural.search(q);
            // shortlist >= n → exact: same tables, scores and order.
            let top = neural.search_topk(q, 5, n);
            assert_eq!(top.len(), 5.min(n));
            for (got, want) in top.iter().zip(&full) {
                assert_eq!(got.0, want.0, "query {q}");
                assert_eq!(got.1.to_bits(), want.1.to_bits(), "query {q}");
            }
        }
    }

    #[test]
    fn neural_prefilter_shortlist_is_deterministic_and_bounded() {
        let (lake, neural, _) = lake_and_search();
        let n = lake.tables.len();
        let (q, _) = &lake.search_queries()[0];
        let a = neural.search_topk(q, 3, n / 2);
        let b = neural.search_topk(q, 3, n / 2);
        assert_eq!(a, b, "prefiltered search must be deterministic");
        assert_eq!(a.len(), 3);
        let valid: Vec<bool> = a.iter().map(|&(i, _)| i < n).collect();
        assert!(valid.iter().all(|&v| v));
        // Scores come from the same interaction scorer as full search.
        let full: std::collections::HashMap<usize, u32> = neural
            .search(q)
            .into_iter()
            .map(|(i, s)| (i, s.to_bits()))
            .collect();
        for (i, s) in &a {
            assert_eq!(full[i], s.to_bits());
        }
    }

    #[test]
    fn bm25_topk_matches_full_ranking_head() {
        let (lake, _, bm25) = lake_and_search();
        for (q, _) in lake.search_queries().iter().take(4) {
            let full = bm25.search(q);
            for k in [1, 3, 8, lake.tables.len()] {
                let top = bm25.search_topk(q, k);
                assert_eq!(top.len(), k.min(lake.tables.len()));
                for (got, want) in top.iter().zip(&full) {
                    assert_eq!(got.0, want.0, "query {q}, k {k}");
                    assert!((got.1 - want.1).abs() < 1e-12, "query {q}, k {k}");
                }
            }
        }
    }

    #[test]
    fn degenerate_search_params_are_structured_errors() {
        let (_, neural, bm25) = lake_and_search();
        assert_eq!(
            neural.try_search_topk("city", 0, 8).unwrap_err().kind(),
            "invalid_input"
        );
        assert_eq!(
            bm25.try_search_topk("city", 0).unwrap_err().kind(),
            "invalid_input"
        );
        // Valid params round-trip through the fallible path unchanged.
        assert_eq!(
            neural.try_search_topk("city", 3, 100).unwrap(),
            neural.search_topk("city", 3, 100)
        );
        let empty = Bm25Lite::index(&[], 5);
        assert_eq!(
            empty.try_search_topk("city", 3).unwrap_err().kind(),
            "not_found"
        );
    }

    #[test]
    fn csr_centroid_build_matches_serial_centroid_into() {
        let (_, neural, _) = lake_and_search();
        let dim = neural.emb.dim();
        let csr = table_incidence_csr(&neural.table_token_ids, neural.emb.vectors.rows);
        let mut sparse = csr.matmul_dense(&neural.emb.vectors).data;
        let mut serial = vec![0.0f32; neural.table_token_ids.len() * dim];
        for (i, tids) in neural.table_token_ids.iter().enumerate() {
            centroid_into(&neural.emb, tids, &mut serial[i * dim..(i + 1) * dim]);
            if !tids.is_empty() {
                let inv = 1.0 / tids.len() as f32;
                sparse[i * dim..(i + 1) * dim]
                    .iter_mut()
                    .for_each(|x| *x *= inv);
            }
        }
        assert_eq!(
            sparse.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "CSR centroid build must be bitwise-equal to the serial loop"
        );
    }

    #[test]
    fn metric_edge_cases() {
        assert_eq!(mrr(&[], &[]), 0.0);
        assert_eq!(precision_at(0, &[vec![1]], &[vec![1]]), 0.0);
        let r = mrr(&[vec![3, 1, 2]], &[vec![2]]);
        assert!((r - 1.0 / 3.0).abs() < 1e-9);
        let p = precision_at(2, &[vec![1, 2, 3]], &[vec![2, 3]]);
        assert!((p - 0.5).abs() < 1e-9);
    }
}
