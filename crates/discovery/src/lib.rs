//! # dc-discovery
//!
//! Data discovery (§5.1 of *"Data Curation with Deep Learning"*):
//! finding relevant data in an enterprise lake.
//!
//! Three cooperating pieces, mirroring the paper's account of the
//! Seeping-Semantics line of work and its neural-IR proposal:
//!
//! * [`ekg::Ekg`] — the enterprise knowledge graph "whose nodes are data
//!   elements such as tables, attributes ... and whose edges represent
//!   different relationships between nodes";
//! * [`matcher`] — the semantic matcher "based on word embeddings" with
//!   coherent groups, next to the syntactic matcher whose spurious links
//!   it is supposed to discard;
//! * [`search`] — the "Google-style search engine where the analyst can
//!   enter certain textual description of the data that she is looking
//!   for": query → distributed representation → ranked tables, with
//!   EKG-based thematic expansion of the results.

pub mod ekg;
pub mod matcher;
pub mod search;

pub use ekg::{Ekg, EkgEdge, EkgNode};
pub use matcher::{ColumnRef, MatchDecision, SemanticMatcher, SyntacticMatcher};
pub use search::{mrr, precision_at, search_documents, Bm25Lite, NeuralSearch};
