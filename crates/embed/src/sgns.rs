//! Skip-gram with negative sampling (word2vec), trained from scratch.
//!
//! The paper's concrete systems lean on pre-trained vectors ("DeepER
//! leveraged word embeddings from GloVe", §6.1); this environment has no
//! web corpus, so AutoDC trains its own SGNS on synthetic corpora whose
//! co-occurrence statistics encode the planted semantics (DESIGN.md §5).
//! Gradients are closed-form, so this module bypasses the autograd tape
//! for speed — the tape-backed models live in `dc-nn`.

use crate::vocab::Vocabulary;
use dc_index::{topk_scores, CosineIndex, FunnelConfig, Order};
use dc_tensor::tensor::cosine;
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for SGNS training.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SgnsConfig {
    /// Embedding dimensionality ("often fixed (such as 300)" — §2.2; we
    /// default far smaller because the planted vocabularies are small).
    pub dim: usize,
    /// Context window radius `W` (§3.1 discusses its impact at length).
    pub window: usize,
    /// Negative samples per positive pair.
    pub negative: usize,
    /// Training epochs over the corpus.
    pub epochs: usize,
    /// Initial learning rate, linearly decayed to 10% across training.
    pub lr: f32,
    /// Minimum token frequency to enter the vocabulary.
    pub min_count: u64,
    /// Subsampling threshold for frequent words (`None` disables).
    pub subsample: Option<f64>,
}

impl Default for SgnsConfig {
    fn default() -> Self {
        SgnsConfig {
            dim: 32,
            window: 4,
            negative: 5,
            epochs: 12,
            lr: 0.05,
            min_count: 1,
            subsample: None,
        }
    }
}

impl SgnsConfig {
    /// Set the embedding dimensionality (builder convention,
    /// DESIGN.md §10).
    pub fn with_dim(mut self, dim: usize) -> Self {
        self.dim = dim;
        self
    }

    /// Set the context window radius.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window = window;
        self
    }

    /// Set the negative samples per positive pair.
    pub fn with_negative(mut self, negative: usize) -> Self {
        self.negative = negative;
        self
    }

    /// Set the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Set the initial learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.lr = lr;
        self
    }

    /// Set the minimum token frequency.
    pub fn with_min_count(mut self, min_count: u64) -> Self {
        self.min_count = min_count;
        self
    }

    /// Set (or clear) the frequent-word subsampling threshold.
    pub fn with_subsample(mut self, subsample: Option<f64>) -> Self {
        self.subsample = subsample;
        self
    }
}

/// Trained distributed representations: one input vector per token.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Embeddings {
    /// The vocabulary the rows are indexed by.
    pub vocab: Vocabulary,
    /// Input ("word") vectors, `|V| × dim`.
    pub vectors: Tensor,
}

impl Embeddings {
    /// Train SGNS on tokenised documents.
    pub fn train(documents: &[Vec<String>], config: &SgnsConfig, rng: &mut StdRng) -> Self {
        let vocab = Vocabulary::build(documents, config.min_count);
        assert!(!vocab.is_empty(), "empty vocabulary — nothing to train on");
        let v = vocab.len();
        let d = config.dim;
        let mut input = Tensor::rand_uniform(v, d, -0.5 / d as f32, 0.5 / d as f32, rng);
        let mut output = Tensor::zeros(v, d);

        let encoded: Vec<Vec<usize>> = documents.iter().map(|doc| vocab.encode(doc)).collect();
        let total_steps = (config.epochs * encoded.iter().map(Vec::len).sum::<usize>()).max(1);
        let mut step = 0usize;

        let mut grad_in = vec![0.0f32; d];
        for _epoch in 0..config.epochs {
            let _epoch_span = dc_obs::span("embed.sgns");
            // BCE over the epoch's (center, target) terms, accumulated
            // only when observability is on — the extra arithmetic
            // never touches the rng, so embeddings are bit-identical
            // with DC_OBS on or off.
            let mut epoch_loss = 0.0f64;
            let mut epoch_terms = 0u64;
            for doc in &encoded {
                // Optional frequent-word subsampling, re-drawn each epoch.
                let kept: Vec<usize> = match config.subsample {
                    Some(t) => doc
                        .iter()
                        .copied()
                        .filter(|&id| rng.gen::<f64>() < vocab.keep_probability(id, t))
                        .collect(),
                    None => doc.clone(),
                };
                for (pos, &center) in kept.iter().enumerate() {
                    step += 1;
                    let progress = step as f32 / total_steps as f32;
                    let lr = config.lr * (1.0 - 0.9 * progress);
                    let lo = pos.saturating_sub(config.window);
                    let hi = (pos + config.window + 1).min(kept.len());
                    for (ctx_pos, &context) in kept.iter().enumerate().take(hi).skip(lo) {
                        if ctx_pos == pos {
                            continue;
                        }
                        grad_in.iter_mut().for_each(|g| *g = 0.0);
                        // Positive pair + negatives share the same form:
                        // dL/du_o = (σ(u_o·v_c) − label) · v_c
                        for k in 0..=config.negative {
                            let (target, label) = if k == 0 {
                                (context, 1.0f32)
                            } else {
                                (vocab.sample_negative(rng), 0.0)
                            };
                            if k > 0 && target == context {
                                continue;
                            }
                            let vin = input.row_slice(center);
                            let uout = output.row_slice(target);
                            let score: f32 = vin.iter().zip(uout).map(|(a, b)| a * b).sum();
                            let p = sigmoid(score);
                            if dc_obs::enabled() {
                                let t = if label == 1.0 { p } else { 1.0 - p };
                                epoch_loss -= f64::from(t.max(1e-7)).ln();
                                epoch_terms += 1;
                            }
                            let g = (p - label) * lr;
                            for (i, gi) in grad_in.iter_mut().enumerate() {
                                *gi += g * output.get(target, i);
                            }
                            for i in 0..d {
                                let upd = g * input.get(center, i);
                                let cur = output.get(target, i);
                                output.set(target, i, cur - upd);
                            }
                        }
                        for (i, &gi) in grad_in.iter().enumerate() {
                            let cur = input.get(center, i);
                            input.set(center, i, cur - gi);
                        }
                    }
                }
            }
            if epoch_terms > 0 {
                dc_obs::series_push("embed.sgns", "loss", epoch_loss / epoch_terms as f64);
            }
        }
        Embeddings {
            vocab,
            vectors: input,
        }
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.vectors.cols
    }

    /// Vector of `token` as a slice, if in vocabulary.
    pub fn get(&self, token: &str) -> Option<&[f32]> {
        self.vocab.id(token).map(|id| self.vectors.row_slice(id))
    }

    /// Cosine similarity between two tokens (`None` if either is OOV).
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        Some(cosine(self.get(a)?, self.get(b)?))
    }

    /// The `k` most similar tokens to `token` (excluding itself).
    pub fn most_similar(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        let Some(target) = self.get(token) else {
            return Vec::new();
        };
        let target = target.to_vec();
        self.topk_excluding(&target, k, &[token])
    }

    /// 3CosAdd analogy: `a : b :: c : ?` — the "king − man + woman ≈
    /// queen" query of §2.2. Returns the top `k` candidates, excluding
    /// the three inputs.
    pub fn analogy(&self, a: &str, b: &str, c: &str, k: usize) -> Vec<(String, f32)> {
        let (Some(va), Some(vb), Some(vc)) = (self.get(a), self.get(b), self.get(c)) else {
            return Vec::new();
        };
        let query: Vec<f32> = vb
            .iter()
            .zip(va)
            .zip(vc)
            .map(|((b, a), c)| b - a + c)
            .collect();
        self.topk_excluding(&query, k, &[a, b, c])
    }

    /// The `k` vocabulary tokens most cosine-similar to `query`, minus
    /// `exclude`: a bounded [`topk_scores`] heap scan over token ids
    /// (`O(V log k)`, labels allocated only for survivors) asking for
    /// `k + exclude.len()` so the winners survive the exclusion filter.
    /// Ties break toward the lower token id, matching the seed's stable
    /// sort; NaN scores sink last instead of panicking.
    fn topk_excluding(&self, query: &[f32], k: usize, exclude: &[&str]) -> Vec<(String, f32)> {
        let hits = topk_scores(
            self.vocab.len(),
            k.saturating_add(exclude.len()),
            Order::Largest,
            |i| cosine(query, self.vectors.row_slice(i)),
        );
        hits.into_iter()
            .filter(|hit| !exclude.contains(&self.vocab.token(hit.index)))
            .take(k)
            .map(|hit| (self.vocab.token(hit.index).to_string(), hit.score))
            .collect()
    }

    /// "All-but-the-top" post-processing (Mu & Viswanath): subtract the
    /// vocabulary mean and the top `components` principal directions
    /// from every vector. SGNS trained briefly on small corpora leaves
    /// a dominant common direction that pushes *all* pairwise cosines
    /// towards 1; removing it restores discriminative similarity.
    /// Returns a post-processed copy.
    pub fn postprocessed(&self, components: usize) -> Embeddings {
        let mut vectors = self.vectors.clone();
        let (v, d) = (vectors.rows, vectors.cols);
        if v == 0 {
            return self.clone();
        }
        // Subtract the mean vector.
        let mut mean = vec![0.0f32; d];
        for r in 0..v {
            for (m, &x) in mean.iter_mut().zip(vectors.row_slice(r)) {
                *m += x;
            }
        }
        let inv = 1.0 / v as f32;
        mean.iter_mut().for_each(|m| *m *= inv);
        for r in 0..v {
            for (x, &m) in vectors.row_slice_mut(r).iter_mut().zip(&mean) {
                *x -= m;
            }
        }
        // Deflate the top principal components via power iteration.
        for c in 0..components {
            let mut dir = vec![0.0f32; d];
            // Deterministic varied start per component.
            for (i, x) in dir.iter_mut().enumerate() {
                *x = (((i + c * 7 + 1) % 13) as f32 - 6.0) / 13.0;
            }
            for _ in 0..30 {
                // dir ← normalize(Σ_r (row·dir) row)
                let mut next = vec![0.0f32; d];
                for r in 0..v {
                    let row = vectors.row_slice(r);
                    let proj: f32 = row.iter().zip(&dir).map(|(a, b)| a * b).sum();
                    for (n, &x) in next.iter_mut().zip(row) {
                        *n += proj * x;
                    }
                }
                let norm = next.iter().map(|x| x * x).sum::<f32>().sqrt();
                if norm < 1e-12 {
                    break;
                }
                next.iter_mut().for_each(|x| *x /= norm);
                dir = next;
            }
            for r in 0..v {
                let row = vectors.row_slice_mut(r);
                let proj: f32 = row.iter().zip(&dir).map(|(a, b)| a * b).sum();
                for (x, &u) in row.iter_mut().zip(&dir) {
                    *x -= proj * u;
                }
            }
        }
        Embeddings {
            vocab: self.vocab.clone(),
            vectors,
        }
    }

    /// A reusable similarity index over the vocabulary: vectors are
    /// normalized once into a [`CosineIndex`] behind the quantized
    /// retrieval funnel, so repeated [`SimilarityIndex::most_similar`]
    /// / [`SimilarityIndex::analogy`] queries skip the per-call
    /// `O(V · d)` cosine scan that [`Embeddings::most_similar`] pays.
    pub fn similarity_index(&self) -> SimilarityIndex<'_> {
        SimilarityIndex {
            emb: self,
            index: CosineIndex::build_funnel(&self.vectors, FunnelConfig::default()),
        }
    }

    /// Mean vector of a bag of tokens (OOV tokens skipped); `None` when
    /// nothing is in vocabulary.
    pub fn mean_vector(&self, tokens: &[String]) -> Option<Vec<f32>> {
        let mut acc = vec![0.0f32; self.dim()];
        let mut n = 0usize;
        for t in tokens {
            if let Some(v) = self.get(t) {
                for (a, &x) in acc.iter_mut().zip(v) {
                    *a += x;
                }
                n += 1;
            }
        }
        if n == 0 {
            return None;
        }
        let inv = 1.0 / n as f32;
        acc.iter_mut().for_each(|a| *a *= inv);
        Some(acc)
    }
}

/// A funnel-backed query index over trained [`Embeddings`] (see
/// [`Embeddings::similarity_index`]). Exclusion semantics mirror the
/// direct methods: [`SimilarityIndex::most_similar`] excludes the query
/// token itself, [`SimilarityIndex::analogy`] all three inputs, and
/// ties break toward the lower token id. Scores are cosine computed as
/// normalize-then-dot, which can differ from
/// [`Embeddings::most_similar`]'s fused `cosine` in the last ulp.
pub struct SimilarityIndex<'a> {
    emb: &'a Embeddings,
    index: CosineIndex,
}

impl SimilarityIndex<'_> {
    /// The `k` most similar tokens to `token` (excluding itself).
    pub fn most_similar(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        let Some(target) = self.emb.get(token) else {
            return Vec::new();
        };
        let target = target.to_vec();
        self.topk_excluding(&target, k, &[token])
    }

    /// 3CosAdd analogy `a : b :: c : ?`, excluding the three inputs.
    pub fn analogy(&self, a: &str, b: &str, c: &str, k: usize) -> Vec<(String, f32)> {
        let (Some(va), Some(vb), Some(vc)) = (self.emb.get(a), self.emb.get(b), self.emb.get(c))
        else {
            return Vec::new();
        };
        let query: Vec<f32> = vb
            .iter()
            .zip(va)
            .zip(vc)
            .map(|((b, a), c)| b - a + c)
            .collect();
        self.topk_excluding(&query, k, &[a, b, c])
    }

    fn topk_excluding(&self, query: &[f32], k: usize, exclude: &[&str]) -> Vec<(String, f32)> {
        self.index
            .nearest(query, k.saturating_add(exclude.len()))
            .into_iter()
            .filter(|hit| !exclude.contains(&self.emb.vocab.token(hit.index)))
            .take(k)
            .map(|hit| (self.emb.vocab.token(hit.index).to_string(), hit.score))
            .collect()
    }
}

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Build a synthetic corpus with planted co-occurrence structure for
/// tests and benches: each "topic" owns `words_per_topic` words, and
/// sentences only mix words within a topic.
pub fn planted_topic_corpus(
    topics: usize,
    words_per_topic: usize,
    sentences: usize,
    sentence_len: usize,
    rng: &mut StdRng,
) -> Vec<Vec<String>> {
    let mut corpus = Vec::with_capacity(sentences);
    for _ in 0..sentences {
        let topic = rng.gen_range(0..topics);
        let sent: Vec<String> = (0..sentence_len)
            .map(|_| format!("t{topic}w{}", rng.gen_range(0..words_per_topic)))
            .collect();
        corpus.push(sent);
    }
    corpus
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn same_topic_words_cluster() {
        let mut rng = StdRng::seed_from_u64(7);
        let corpus = planted_topic_corpus(3, 4, 600, 8, &mut rng);
        let emb = Embeddings::train(
            &corpus,
            &SgnsConfig {
                dim: 16,
                epochs: 8,
                ..Default::default()
            },
            &mut rng,
        );
        let within = emb.similarity("t0w0", "t0w1").expect("in vocab");
        let across = emb.similarity("t0w0", "t1w0").expect("in vocab");
        assert!(
            within > across + 0.3,
            "within {within} should beat across {across}"
        );
    }

    #[test]
    fn most_similar_prefers_same_topic() {
        let mut rng = StdRng::seed_from_u64(8);
        let corpus = planted_topic_corpus(2, 5, 500, 8, &mut rng);
        let emb = Embeddings::train(&corpus, &SgnsConfig::default(), &mut rng);
        let top = emb.most_similar("t0w0", 3);
        assert_eq!(top.len(), 3);
        let same_topic = top.iter().filter(|(t, _)| t.starts_with("t0")).count();
        assert!(same_topic >= 2, "top-3 {top:?}");
    }

    #[test]
    fn analogy_recovers_planted_relation() {
        // Corpus layout: countries share a "nation" context, cities a
        // "metropolis" context, and each pair co-occurs. The shared
        // contexts give the city−country offset a consistent direction,
        // which is what makes 3CosAdd work (§2.2's king−man+woman).
        let mut rng = StdRng::seed_from_u64(9);
        let mut corpus = Vec::new();
        for i in 0..4 {
            for _ in 0..120 {
                corpus.push(vec![format!("country{i}"), "nation".to_string()]);
                corpus.push(vec![format!("city{i}"), "metropolis".to_string()]);
                corpus.push(vec![format!("country{i}"), format!("city{i}")]);
            }
        }
        let emb = Embeddings::train(
            &corpus,
            &SgnsConfig {
                dim: 12,
                window: 2,
                epochs: 15,
                ..Default::default()
            },
            &mut rng,
        );
        // country0 : city0 :: country1 : ?  → city1 should rank highly.
        let result = emb.analogy("country0", "city0", "country1", 3);
        let names: Vec<&str> = result.iter().map(|(t, _)| t.as_str()).collect();
        assert!(
            names.contains(&"city1"),
            "expected city1 in top-3, got {names:?}"
        );
    }

    #[test]
    fn oov_queries_return_empty() {
        let mut rng = StdRng::seed_from_u64(1);
        let corpus = vec![vec!["a".to_string(), "b".to_string()]];
        let emb = Embeddings::train(&corpus, &SgnsConfig::default(), &mut rng);
        assert!(emb.get("zzz").is_none());
        assert!(emb.most_similar("zzz", 5).is_empty());
        assert!(emb.similarity("a", "zzz").is_none());
    }

    #[test]
    fn mean_vector_skips_oov() {
        let mut rng = StdRng::seed_from_u64(2);
        let corpus = vec![vec!["a".to_string(), "b".to_string()]; 20];
        let emb = Embeddings::train(&corpus, &SgnsConfig::default(), &mut rng);
        let m = emb
            .mean_vector(&["a".to_string(), "nope".to_string()])
            .expect("has a");
        assert_eq!(m.len(), emb.dim());
        assert_eq!(m, emb.get("a").expect("a").to_vec());
        assert!(emb.mean_vector(&["nope".to_string()]).is_none());
    }

    #[test]
    fn similarity_index_agrees_with_direct_queries() {
        let mut rng = StdRng::seed_from_u64(8);
        let corpus = planted_topic_corpus(2, 5, 500, 8, &mut rng);
        let emb = Embeddings::train(&corpus, &SgnsConfig::default(), &mut rng);
        let idx = emb.similarity_index();
        for token in ["t0w0", "t1w3"] {
            let direct = emb.most_similar(token, 4);
            let indexed = idx.most_similar(token, 4);
            assert_eq!(direct.len(), indexed.len());
            for ((td, sd), (ti, si)) in direct.iter().zip(&indexed) {
                assert_eq!(td, ti, "ranking mismatch for {token}");
                assert!((sd - si).abs() < 1e-4, "{token}: {sd} vs {si}");
                assert_ne!(ti, token, "query token must be excluded");
            }
        }
        assert!(idx.most_similar("zzz", 3).is_empty());
        assert!(idx.analogy("t0w0", "zzz", "t1w0", 3).is_empty());
    }

    #[test]
    fn training_is_deterministic_given_seed() {
        let corpus = planted_topic_corpus(2, 3, 100, 6, &mut StdRng::seed_from_u64(3));
        let e1 = Embeddings::train(
            &corpus,
            &SgnsConfig::default(),
            &mut StdRng::seed_from_u64(4),
        );
        let e2 = Embeddings::train(
            &corpus,
            &SgnsConfig::default(),
            &mut StdRng::seed_from_u64(4),
        );
        assert_eq!(e1.vectors, e2.vectors);
    }
}
