//! # dc-embed
//!
//! Distributed representations for data curation (§2.2 and §3.1 of
//! *"Data Curation with Deep Learning"*, EDBT 2020).
//!
//! The paper argues that "the 'matching' process is a central concept in
//! most, if not all, DC problems" and that distributed representations
//! are the lever. This crate implements the full representation stack:
//!
//! * [`onehot`] — local (one-hot) representations, the Figure 3(a)
//!   baseline whose "representation power ... is only linear to the
//!   total dimensions".
//! * [`vocab`] / [`sgns`] — word2vec-style skip-gram with negative
//!   sampling, trained from scratch (no pre-trained vectors exist in
//!   this environment; DESIGN.md §5 documents the substitution).
//! * [`celldoc`] — the "naive adaptation [that] treats each tuple as a
//!   document" (§3.1), including its window-size limitation.
//! * [`cellgraph`] — the paper's "more natural (sophisticated) model":
//!   random-walk embeddings over the Figure-4 heterogeneous graph with
//!   an FD-edge bias.
//! * [`compose`] — tuple2vec / column2vec / table2vec / database2vec
//!   compositions.
//! * [`coherent`] — coherent-group similarity for multi-word phrases
//!   and out-of-vocabulary terms (§5.1).
//! * [`knn`] — nearest-neighbour and analogy queries over any embedding
//!   set.

pub mod celldoc;
pub mod cellgraph;
pub mod coherent;
pub mod compose;
pub mod knn;
pub mod onehot;
pub mod sgns;
pub mod vocab;

pub use celldoc::CellDocEmbedder;
pub use cellgraph::{GraphEmbedConfig, GraphEmbedder};
pub use coherent::coherent_group_similarity;
pub use compose::{column2vec, database2vec, table2vec, tuple2vec, SifWeights};
pub use knn::{analogy, nearest, NearestIndex};
pub use onehot::OneHot;
pub use sgns::{Embeddings, SgnsConfig, SimilarityIndex};
pub use vocab::Vocabulary;
