//! Brute-force nearest-neighbour and analogy search over labelled
//! vector sets — the query layer the discovery engine and experiment
//! harnesses share.
//!
//! Selection goes through [`dc_index::topk_scores`] (ISSUE 3): an
//! `O(n log k)` bounded-heap scan instead of collecting and fully
//! sorting every item, scoring by index so labels are only allocated
//! for the k survivors, and under a total order that sinks NaN scores
//! (non-finite item or query vectors make `cosine` return NaN) below
//! every real score instead of panicking in
//! `partial_cmp(..).expect(..)`.

use dc_index::{topk_scores, Order};
use dc_tensor::tensor::cosine;

/// The `k` labels most cosine-similar to `query` among `items`.
/// NaN-scored items (non-finite vectors) rank below every real score.
pub fn nearest<'a>(
    query: &[f32],
    items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    k: usize,
) -> Vec<(String, f32)> {
    let items: Vec<(&str, &[f32])> = items.into_iter().collect();
    topk_scores(items.len(), k, Order::Largest, |i| {
        cosine(query, items[i].1)
    })
    .into_iter()
    .map(|hit| (items[hit.index].0.to_string(), hit.score))
    .collect()
}

/// 3CosAdd analogy over an arbitrary labelled vector set:
/// answer ≈ `b − a + c`.
pub fn analogy<'a>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    k: usize,
) -> Vec<(String, f32)> {
    let query: Vec<f32> = b
        .iter()
        .zip(a)
        .zip(c)
        .map(|((b, a), c)| b - a + c)
        .collect();
    nearest(&query, items, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_orders_by_cosine() {
        let items: Vec<(&str, &[f32])> = vec![
            ("east", &[1.0, 0.0][..]),
            ("north", &[0.0, 1.0][..]),
            ("northeast", &[0.7, 0.7][..]),
        ];
        let out = nearest(&[1.0, 0.1], items, 2);
        assert_eq!(out[0].0, "east");
        assert_eq!(out[1].0, "northeast");
    }

    #[test]
    fn nearest_truncates_and_handles_empty() {
        let out = nearest(&[1.0], Vec::<(&str, &[f32])>::new(), 3);
        assert!(out.is_empty());
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        // Seed regression: a non-finite item vector makes `cosine`
        // return NaN, and the old `partial_cmp(..).expect("finite
        // scores")` sort killed the caller. NaN now sinks below every
        // real score — including the 0.0 that zero vectors score.
        let items: Vec<(&str, &[f32])> = vec![
            ("poisoned", &[f32::NAN, 0.0][..]),
            ("east", &[1.0, 0.0][..]),
            ("zero", &[0.0, 0.0][..]),
            ("north", &[0.0, 1.0][..]),
        ];
        let out = nearest(&[1.0, 0.2], items, 4);
        assert_eq!(out[0].0, "east");
        assert_eq!(out[1].0, "north");
        assert_eq!(out[2].0, "zero");
        assert_eq!(out[2].1, 0.0);
        assert_eq!(out[3].0, "poisoned");
        assert!(out[3].1.is_nan());
    }

    #[test]
    fn analogy_linear_structure() {
        // king − man + woman = queen in a toy 2-D gender/royalty space.
        let man = [0.0f32, 0.0];
        let woman = [1.0f32, 0.0];
        let king = [0.0f32, 1.0];
        let queen = [1.0f32, 1.0];
        let items: Vec<(&str, &[f32])> = vec![
            ("man", &man[..]),
            ("woman", &woman[..]),
            ("king", &king[..]),
            ("queen", &queen[..]),
        ];
        let out = analogy(&man, &woman, &king, items, 1);
        assert_eq!(out[0].0, "queen");
    }
}
