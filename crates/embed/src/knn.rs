//! Brute-force nearest-neighbour and analogy search over labelled
//! vector sets — the query layer the discovery engine and experiment
//! harnesses share.
//!
//! Selection goes through [`dc_index::topk_scores`] (ISSUE 3): an
//! `O(n log k)` bounded-heap scan instead of collecting and fully
//! sorting every item, scoring by index so labels are only allocated
//! for the k survivors, and under a total order that sinks NaN scores
//! (non-finite item or query vectors make `cosine` return NaN) below
//! every real score instead of panicking in
//! `partial_cmp(..).expect(..)`.

use dc_index::{topk_scores, CosineIndex, FunnelConfig, Order};
use dc_tensor::tensor::cosine;
use dc_tensor::Tensor;

/// The `k` labels most cosine-similar to `query` among `items`.
/// NaN-scored items (non-finite vectors) rank below every real score.
pub fn nearest<'a>(
    query: &[f32],
    items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    k: usize,
) -> Vec<(String, f32)> {
    let items: Vec<(&str, &[f32])> = items.into_iter().collect();
    topk_scores(items.len(), k, Order::Largest, |i| {
        cosine(query, items[i].1)
    })
    .into_iter()
    .map(|hit| (items[hit.index].0.to_string(), hit.score))
    .collect()
}

/// 3CosAdd analogy over an arbitrary labelled vector set:
/// answer ≈ `b − a + c`.
pub fn analogy<'a>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    k: usize,
) -> Vec<(String, f32)> {
    let query: Vec<f32> = b
        .iter()
        .zip(a)
        .zip(c)
        .map(|((b, a), c)| b - a + c)
        .collect();
    nearest(&query, items, k)
}

/// A labelled cosine index for repeated queries over the same item
/// set: rows are normalized once into a [`CosineIndex`], optionally
/// behind the quantized retrieval funnel (1-bit Hamming prefilter →
/// int8 scoring → exact f32 rescore), instead of re-running the
/// per-item `cosine` of [`nearest`] on every call.
///
/// Unlike [`nearest`], degenerate item vectors (zero or non-finite)
/// score exactly 0 rather than NaN — [`CosineIndex`] normalizes them
/// to the zero vector, the same convention as
/// [`dc_tensor::tensor::cosine`]'s zero-vector guard.
pub struct NearestIndex {
    labels: Vec<String>,
    index: CosineIndex,
}

impl NearestIndex {
    /// Build an exact-scan index over labelled vectors (all the same
    /// dimension).
    pub fn build<'a>(items: impl IntoIterator<Item = (&'a str, &'a [f32])>) -> Self {
        Self::build_inner(items, None)
    }

    /// Build with the quantized retrieval funnel attached; results are
    /// identical to [`NearestIndex::build`] (the funnel rescores in
    /// exact f32 and falls through entirely on small sets).
    pub fn build_funnel<'a>(
        items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
        cfg: FunnelConfig,
    ) -> Self {
        Self::build_inner(items, Some(cfg))
    }

    fn build_inner<'a>(
        items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
        cfg: Option<FunnelConfig>,
    ) -> Self {
        let items: Vec<(&str, &[f32])> = items.into_iter().collect();
        let labels: Vec<String> = items.iter().map(|(l, _)| l.to_string()).collect();
        let dim = items.first().map_or(0, |(_, v)| v.len());
        let mut flat = Vec::with_capacity(items.len() * dim);
        for (label, v) in &items {
            assert_eq!(v.len(), dim, "item {label:?} dim {} vs {dim}", v.len());
            flat.extend_from_slice(v);
        }
        let rows = Tensor::from_vec(items.len(), dim, flat);
        let index = match cfg {
            Some(cfg) if !items.is_empty() => CosineIndex::build_funnel(&rows, cfg),
            _ => CosineIndex::build(&rows),
        };
        NearestIndex { labels, index }
    }

    /// Number of indexed items.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the index holds no items.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The `k` labels most cosine-similar to `query`, best first.
    pub fn nearest(&self, query: &[f32], k: usize) -> Vec<(String, f32)> {
        self.index
            .nearest(query, k)
            .into_iter()
            .map(|hit| (self.labels[hit.index].clone(), hit.score))
            .collect()
    }

    /// 3CosAdd analogy (`b − a + c`) over the indexed items.
    pub fn analogy(&self, a: &[f32], b: &[f32], c: &[f32], k: usize) -> Vec<(String, f32)> {
        let query: Vec<f32> = b
            .iter()
            .zip(a)
            .zip(c)
            .map(|((b, a), c)| b - a + c)
            .collect();
        self.nearest(&query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_orders_by_cosine() {
        let items: Vec<(&str, &[f32])> = vec![
            ("east", &[1.0, 0.0][..]),
            ("north", &[0.0, 1.0][..]),
            ("northeast", &[0.7, 0.7][..]),
        ];
        let out = nearest(&[1.0, 0.1], items, 2);
        assert_eq!(out[0].0, "east");
        assert_eq!(out[1].0, "northeast");
    }

    #[test]
    fn nearest_truncates_and_handles_empty() {
        let out = nearest(&[1.0], Vec::<(&str, &[f32])>::new(), 3);
        assert!(out.is_empty());
    }

    #[test]
    fn nan_scores_rank_last_instead_of_panicking() {
        // Seed regression: a non-finite item vector makes `cosine`
        // return NaN, and the old `partial_cmp(..).expect("finite
        // scores")` sort killed the caller. NaN now sinks below every
        // real score — including the 0.0 that zero vectors score.
        let items: Vec<(&str, &[f32])> = vec![
            ("poisoned", &[f32::NAN, 0.0][..]),
            ("east", &[1.0, 0.0][..]),
            ("zero", &[0.0, 0.0][..]),
            ("north", &[0.0, 1.0][..]),
        ];
        let out = nearest(&[1.0, 0.2], items, 4);
        assert_eq!(out[0].0, "east");
        assert_eq!(out[1].0, "north");
        assert_eq!(out[2].0, "zero");
        assert_eq!(out[2].1, 0.0);
        assert_eq!(out[3].0, "poisoned");
        assert!(out[3].1.is_nan());
    }

    #[test]
    fn analogy_linear_structure() {
        // king − man + woman = queen in a toy 2-D gender/royalty space.
        let man = [0.0f32, 0.0];
        let woman = [1.0f32, 0.0];
        let king = [0.0f32, 1.0];
        let queen = [1.0f32, 1.0];
        let items: Vec<(&str, &[f32])> = vec![
            ("man", &man[..]),
            ("woman", &woman[..]),
            ("king", &king[..]),
            ("queen", &queen[..]),
        ];
        let out = analogy(&man, &woman, &king, items, 1);
        assert_eq!(out[0].0, "queen");
    }

    #[test]
    fn nearest_index_funnel_matches_exact_build() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let vectors: Vec<Vec<f32>> = (0..60)
            .map(|_| (0..8).map(|_| rng.gen::<f32>() - 0.5).collect())
            .collect();
        let labels: Vec<String> = (0..60).map(|i| format!("item{i}")).collect();
        let items = || {
            labels
                .iter()
                .zip(&vectors)
                .map(|(l, v)| (l.as_str(), v.as_slice()))
        };
        let exact = NearestIndex::build(items());
        let funnel = NearestIndex::build_funnel(items(), FunnelConfig::default());
        let query: Vec<f32> = (0..8).map(|_| rng.gen::<f32>() - 0.5).collect();
        let a = exact.nearest(&query, 5);
        let b = funnel.nearest(&query, 5);
        assert_eq!(a.len(), 5);
        for ((la, sa), (lb, sb)) in a.iter().zip(&b) {
            assert_eq!(la, lb);
            assert_eq!(sa.to_bits(), sb.to_bits());
        }
        // Ranking agrees with the free per-item `nearest` on the same
        // data (scores may differ in the last ulp: normalize-then-dot
        // vs cosine's fused division).
        let free = nearest(&query, items(), 5);
        for ((li, _), (lf, _)) in a.iter().zip(&free) {
            assert_eq!(li, lf);
        }
        assert!(NearestIndex::build(Vec::<(&str, &[f32])>::new()).is_empty());
    }
}
