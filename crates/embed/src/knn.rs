//! Brute-force nearest-neighbour and analogy search over labelled
//! vector sets — the query layer the discovery engine and experiment
//! harnesses share.

use dc_tensor::tensor::cosine;

/// The `k` labels most cosine-similar to `query` among `items`.
pub fn nearest<'a>(
    query: &[f32],
    items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    k: usize,
) -> Vec<(String, f32)> {
    let mut scored: Vec<(String, f32)> = items
        .into_iter()
        .map(|(label, v)| (label.to_string(), cosine(query, v)))
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    scored.truncate(k);
    scored
}

/// 3CosAdd analogy over an arbitrary labelled vector set:
/// answer ≈ `b − a + c`.
pub fn analogy<'a>(
    a: &[f32],
    b: &[f32],
    c: &[f32],
    items: impl IntoIterator<Item = (&'a str, &'a [f32])>,
    k: usize,
) -> Vec<(String, f32)> {
    let query: Vec<f32> = b
        .iter()
        .zip(a)
        .zip(c)
        .map(|((b, a), c)| b - a + c)
        .collect();
    nearest(&query, items, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_orders_by_cosine() {
        let items: Vec<(&str, &[f32])> = vec![
            ("east", &[1.0, 0.0][..]),
            ("north", &[0.0, 1.0][..]),
            ("northeast", &[0.7, 0.7][..]),
        ];
        let out = nearest(&[1.0, 0.1], items, 2);
        assert_eq!(out[0].0, "east");
        assert_eq!(out[1].0, "northeast");
    }

    #[test]
    fn nearest_truncates_and_handles_empty() {
        let out = nearest(&[1.0], Vec::<(&str, &[f32])>::new(), 3);
        assert!(out.is_empty());
    }

    #[test]
    fn analogy_linear_structure() {
        // king − man + woman = queen in a toy 2-D gender/royalty space.
        let man = [0.0f32, 0.0];
        let woman = [1.0f32, 0.0];
        let king = [0.0f32, 1.0];
        let queen = [1.0f32, 1.0];
        let items: Vec<(&str, &[f32])> = vec![
            ("man", &man[..]),
            ("woman", &woman[..]),
            ("king", &king[..]),
            ("queen", &queen[..]),
        ];
        let out = analogy(&man, &woman, &king, items, 1);
        assert_eq!(out[0].0, "queen");
    }
}
