//! Token vocabulary with frequency statistics and the unigram^0.75
//! negative-sampling table of Mikolov et al. (cited as [40] in the
//! paper).

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A vocabulary over string tokens.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vocabulary {
    /// Tokens by id.
    pub tokens: Vec<String>,
    /// Raw corpus counts, parallel to `tokens`.
    pub counts: Vec<u64>,
    index: HashMap<String, usize>,
    /// Cumulative unigram^0.75 mass for negative sampling.
    sampling_cdf: Vec<f64>,
}

impl Vocabulary {
    /// Build from documents, keeping tokens seen at least `min_count`
    /// times. Ids are assigned in descending frequency order (ties by
    /// first occurrence), which keeps downstream dumps readable.
    pub fn build(documents: &[Vec<String>], min_count: u64) -> Self {
        let mut counts: HashMap<&str, u64> = HashMap::new();
        let mut first_seen: HashMap<&str, usize> = HashMap::new();
        let mut order = 0usize;
        for doc in documents {
            for tok in doc {
                *counts.entry(tok).or_insert(0) += 1;
                first_seen.entry(tok).or_insert_with(|| {
                    order += 1;
                    order
                });
            }
        }
        let mut items: Vec<(&str, u64)> = counts
            .into_iter()
            .filter(|(_, c)| *c >= min_count)
            .collect();
        items.sort_by(|a, b| b.1.cmp(&a.1).then(first_seen[a.0].cmp(&first_seen[b.0])));
        let tokens: Vec<String> = items.iter().map(|(t, _)| t.to_string()).collect();
        let counts: Vec<u64> = items.iter().map(|(_, c)| *c).collect();
        let index = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (t.clone(), i))
            .collect();
        let mut sampling_cdf = Vec::with_capacity(counts.len());
        let mut acc = 0.0f64;
        for &c in &counts {
            acc += (c as f64).powf(0.75);
            sampling_cdf.push(acc);
        }
        Vocabulary {
            tokens,
            counts,
            index,
            sampling_cdf,
        }
    }

    /// Vocabulary size.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Id of `token`, if in vocabulary.
    pub fn id(&self, token: &str) -> Option<usize> {
        self.index.get(token).copied()
    }

    /// Token of `id`.
    pub fn token(&self, id: usize) -> &str {
        &self.tokens[id]
    }

    /// Total corpus token count (post-min-count).
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Encode a document to known-token ids.
    pub fn encode(&self, doc: &[String]) -> Vec<usize> {
        doc.iter().filter_map(|t| self.id(t)).collect()
    }

    /// Draw one negative sample from the unigram^0.75 distribution.
    pub fn sample_negative(&self, rng: &mut StdRng) -> usize {
        let total = *self.sampling_cdf.last().expect("nonempty vocabulary");
        let x = rng.gen_range(0.0..total);
        // Binary search for the first cdf entry exceeding x.
        match self
            .sampling_cdf
            .binary_search_by(|v| v.partial_cmp(&x).expect("finite"))
        {
            Ok(i) => (i + 1).min(self.len() - 1),
            Err(i) => i,
        }
    }

    /// Word2vec-style subsampling keep-probability for token `id` with
    /// threshold `t` (e.g. `1e-3`); frequent tokens are kept less often.
    pub fn keep_probability(&self, id: usize, t: f64) -> f64 {
        let f = self.counts[id] as f64 / self.total_count() as f64;
        if f <= t {
            1.0
        } else {
            ((t / f).sqrt() + t / f).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn docs(strs: &[&str]) -> Vec<Vec<String>> {
        strs.iter()
            .map(|s| s.split(' ').map(str::to_string).collect())
            .collect()
    }

    #[test]
    fn build_orders_by_frequency() {
        let v = Vocabulary::build(&docs(&["a b a c a b"]), 1);
        assert_eq!(v.token(0), "a");
        assert_eq!(v.token(1), "b");
        assert_eq!(v.counts, vec![3, 2, 1]);
        assert_eq!(v.id("c"), Some(2));
        assert_eq!(v.id("zz"), None);
    }

    #[test]
    fn min_count_filters() {
        let v = Vocabulary::build(&docs(&["a a b"]), 2);
        assert_eq!(v.len(), 1);
        assert_eq!(v.token(0), "a");
    }

    #[test]
    fn encode_drops_oov() {
        let v = Vocabulary::build(&docs(&["a b"]), 1);
        let enc = v.encode(&["a".into(), "zzz".into(), "b".into()]);
        assert_eq!(enc, vec![0, 1]);
    }

    #[test]
    fn negative_sampling_follows_power_law() {
        let v = Vocabulary::build(&docs(&["a a a a a a a a b"]), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let mut hits = [0usize; 2];
        for _ in 0..10_000 {
            hits[v.sample_negative(&mut rng)] += 1;
        }
        // a:b count ratio is 8:1 → mass ratio 8^0.75 ≈ 4.76.
        let ratio = hits[0] as f64 / hits[1] as f64;
        assert!(ratio > 3.5 && ratio < 6.5, "ratio {ratio}");
    }

    #[test]
    fn keep_probability_downweights_frequent() {
        let v = Vocabulary::build(&docs(&["the the the the the the rare"]), 1);
        let the = v.id("the").expect("the");
        let rare = v.id("rare").expect("rare");
        // With threshold 0.2: "the" (f = 6/7) is downweighted, "rare"
        // (f = 1/7 ≤ t) is always kept.
        assert!(v.keep_probability(the, 0.2) < 1.0);
        assert_eq!(v.keep_probability(rare, 0.2), 1.0);
        assert!(v.keep_probability(the, 0.2) > v.keep_probability(the, 1e-3));
    }
}
