//! Graph cell embeddings — the paper's "more natural (sophisticated)
//! model for DC" (§3.1).
//!
//! The table becomes the Figure-4 heterogeneous graph; truncated random
//! walks over it become the training corpus ("sentences" of node
//! tokens); SGNS turns co-visited nodes into nearby vectors. FD edges
//! can be over-weighted (`fd_bias`) so constraint-linked values end up
//! closer than mere co-occurrence would make them — the ablation of
//! experiment E2.

use crate::celldoc::cell_token;
use crate::sgns::{Embeddings, SgnsConfig};
use dc_relational::{EdgeKind, FunctionalDependency, Table, TableGraph};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for random-walk graph embeddings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphEmbedConfig {
    /// Walks started from every node.
    pub walks_per_node: usize,
    /// Nodes per walk.
    pub walk_length: usize,
    /// Multiplier applied to FD-edge weights during transitions
    /// (`1.0` treats constraints like co-occurrence; `0.0` ablates them).
    pub fd_bias: f32,
    /// SGNS hyper-parameters for the walk corpus.
    pub sgns: SgnsConfig,
}

impl Default for GraphEmbedConfig {
    fn default() -> Self {
        GraphEmbedConfig {
            walks_per_node: 10,
            walk_length: 12,
            fd_bias: 2.0,
            sgns: SgnsConfig {
                dim: 32,
                window: 4,
                negative: 5,
                epochs: 4,
                lr: 0.05,
                min_count: 1,
                subsample: None,
            },
        }
    }
}

impl GraphEmbedConfig {
    /// Set the walks started per node (builder convention,
    /// DESIGN.md §10).
    pub fn with_walks_per_node(mut self, walks_per_node: usize) -> Self {
        self.walks_per_node = walks_per_node;
        self
    }

    /// Set the nodes per walk.
    pub fn with_walk_length(mut self, walk_length: usize) -> Self {
        self.walk_length = walk_length;
        self
    }

    /// Set the FD-edge transition bias.
    pub fn with_fd_bias(mut self, fd_bias: f32) -> Self {
        self.fd_bias = fd_bias;
        self
    }

    /// Replace the SGNS hyper-parameters for the walk corpus.
    pub fn with_sgns(mut self, sgns: SgnsConfig) -> Self {
        self.sgns = sgns;
        self
    }
}

/// Trainer for heterogeneous-graph cell embeddings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct GraphEmbedder {
    /// Walk and SGNS settings.
    pub config: GraphEmbedConfig,
}

impl GraphEmbedder {
    /// With the given configuration.
    pub fn new(config: GraphEmbedConfig) -> Self {
        GraphEmbedder { config }
    }

    /// Generate the walk corpus for a prebuilt graph. Each walk is a
    /// sequence of node tokens (`attr|value`).
    pub fn walks(&self, graph: &TableGraph, rng: &mut StdRng) -> Vec<Vec<String>> {
        let mut corpus = Vec::with_capacity(graph.node_count() * self.config.walks_per_node);
        for start in 0..graph.node_count() {
            for _ in 0..self.config.walks_per_node {
                let mut walk = Vec::with_capacity(self.config.walk_length);
                let mut cur = start;
                walk.push(node_token(graph, cur));
                for _ in 1..self.config.walk_length {
                    match self.step(graph, cur, rng) {
                        Some(next) => {
                            cur = next;
                            walk.push(node_token(graph, cur));
                        }
                        None => break,
                    }
                }
                corpus.push(walk);
            }
        }
        corpus
    }

    /// One weighted transition; `None` on an isolated node.
    fn step(&self, graph: &TableGraph, from: usize, rng: &mut StdRng) -> Option<usize> {
        let edges = graph.neighbors(from);
        let weight = |k: EdgeKind, w: f32| match k {
            EdgeKind::CoOccur => w,
            EdgeKind::Fd => w * self.config.fd_bias,
        };
        let total: f32 = edges.iter().map(|e| weight(e.kind, e.weight)).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen_range(0.0..total);
        for e in edges {
            let w = weight(e.kind, e.weight);
            if x < w {
                return Some(e.to);
            }
            x -= w;
        }
        edges.last().map(|e| e.to)
    }

    /// Build the graph from `table` + `fds`, walk it, and train SGNS.
    /// Tokens in the result are [`cell_token`] keys, so graph and
    /// document embeddings are directly comparable.
    pub fn train(
        &self,
        table: &Table,
        fds: &[FunctionalDependency],
        rng: &mut StdRng,
    ) -> Embeddings {
        let graph = TableGraph::build(table, fds);
        let corpus = self.walks(&graph, rng);
        Embeddings::train(&corpus, &self.config.sgns, rng)
    }
}

fn node_token(graph: &TableGraph, id: usize) -> String {
    let n = &graph.nodes[id];
    cell_token(n.attr, &n.value)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::table::employee_example;
    use dc_relational::{AttrType, Schema, Value};
    use rand::SeedableRng;

    fn employee_fds() -> Vec<FunctionalDependency> {
        vec![
            FunctionalDependency::new(vec![0], 2),
            FunctionalDependency::new(vec![2], 3),
        ]
    }

    #[test]
    fn walks_have_requested_shape() {
        let g = TableGraph::build(&employee_example(), &employee_fds());
        let e = GraphEmbedder::new(GraphEmbedConfig {
            walks_per_node: 3,
            walk_length: 5,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        let walks = e.walks(&g, &mut rng);
        assert_eq!(walks.len(), g.node_count() * 3);
        assert!(walks.iter().all(|w| w.len() <= 5 && !w.is_empty()));
    }

    #[test]
    fn isolated_node_yields_singleton_walk() {
        // A one-row table with a single attribute has one node, no edges.
        let mut t = Table::new("iso", Schema::new(&[("a", AttrType::Text)]));
        t.push(vec![Value::text("only")]);
        let g = TableGraph::build(&t, &[]);
        let e = GraphEmbedder::new(GraphEmbedConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let walks = e.walks(&g, &mut rng);
        assert!(walks.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn graph_embeddings_capture_normalized_schema_relations() {
        // Two-table-style normalisation flattened into rows: the key
        // column relates to the value column only via a shared id, and
        // "Databases are typically well normalized ... which minimizes
        // the frequency that two semantically related attribute values
        // co-occur in the same tuples" (§3.1). The graph walks recover
        // the relation through multi-hop paths.
        let t = employee_example();
        let e = GraphEmbedder::new(GraphEmbedConfig {
            walks_per_node: 40,
            walk_length: 10,
            fd_bias: 2.0,
            ..Default::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let emb = e.train(&t, &employee_fds(), &mut rng);
        // Employees 0001 and 0003 share a department; 0002 does not.
        let together = emb
            .similarity(&cell_token(0, "0001"), &cell_token(0, "0003"))
            .expect("in vocab");
        let apart = emb
            .similarity(&cell_token(0, "0001"), &cell_token(0, "0002"))
            .expect("in vocab");
        assert!(
            together > apart,
            "same-dept {together} should beat cross-dept {apart}"
        );
    }

    #[test]
    fn fd_bias_zero_ablates_fd_edges() {
        // With fd_bias = 0 the FD edges are never walked; a graph whose
        // only connection between two values is an FD edge then splits.
        let mut t = Table::new(
            "fdonly",
            Schema::new(&[("k", AttrType::Text), ("v", AttrType::Text)]),
        );
        t.push(vec![Value::text("k1"), Value::text("v1")]);
        let g = TableGraph::build(&t, &[FunctionalDependency::new(vec![0], 1)]);
        let e_on = GraphEmbedder::new(GraphEmbedConfig {
            fd_bias: 1.0,
            walks_per_node: 2,
            walk_length: 4,
            ..Default::default()
        });
        let e_off = GraphEmbedder::new(GraphEmbedConfig {
            fd_bias: 0.0,
            ..e_on.config.clone()
        });
        let mut rng = StdRng::seed_from_u64(4);
        // With bias on, walks traverse both the co-occur and FD edges —
        // each walk visits both nodes.
        let on_walks = e_on.walks(&g, &mut rng);
        assert!(on_walks.iter().any(|w| w.len() > 1));
        // Both nodes still connect via the co-occurrence edge, so the
        // ablation is observable via transition *probabilities*, checked
        // here through determinism of the weighting: zero-bias must not
        // panic and must still walk co-occur edges.
        let off_walks = e_off.walks(&g, &mut rng);
        assert!(off_walks.iter().any(|w| w.len() > 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let t = employee_example();
        let e = GraphEmbedder::new(GraphEmbedConfig::default());
        let a = e.train(&t, &employee_fds(), &mut StdRng::seed_from_u64(9));
        let b = e.train(&t, &employee_fds(), &mut StdRng::seed_from_u64(9));
        assert_eq!(a.vectors, b.vectors);
    }
}
