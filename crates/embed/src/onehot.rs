//! Local (one-hot) representations — Figure 3(a) of the paper.
//!
//! "Local representations are one-hot (or '1-of-N') encodings, where all
//! except one of the values of the vectors are zeros." They are the
//! baseline experiment E1 compares distributed representations against:
//! every pair of distinct objects is equally (dis)similar, so no
//! semantic structure can be expressed.

use dc_data::{Csr, CsrBuilder};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A one-hot encoder over a closed set of objects.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OneHot {
    /// Objects by id.
    pub objects: Vec<String>,
    index: HashMap<String, usize>,
}

impl OneHot {
    /// Build from a list of distinct objects (duplicates collapse).
    pub fn new(objects: impl IntoIterator<Item = String>) -> Self {
        let mut out = OneHot {
            objects: Vec::new(),
            index: HashMap::new(),
        };
        for o in objects {
            if !out.index.contains_key(&o) {
                out.index.insert(o.clone(), out.objects.len());
                out.objects.push(o);
            }
        }
        out
    }

    /// Dimensionality — one per object ("representation power ... is
    /// only linear to the total dimensions").
    pub fn dim(&self) -> usize {
        self.objects.len()
    }

    /// The one-hot vector of `object`, if known.
    pub fn encode(&self, object: &str) -> Option<Vec<f32>> {
        let &id = self.index.get(object)?;
        let mut v = vec![0.0; self.dim()];
        v[id] = 1.0;
        Some(v)
    }

    /// Encode a batch of objects as a sparse CSR matrix (one row per
    /// object, exactly one nonzero per known object, an empty row for
    /// unknowns). The dense equivalent is `dim()` floats per row —
    /// mostly zeros — so the CSR family stores the batch in O(rows)
    /// and multiplies against an embedding matrix through
    /// [`Csr::matmul_dense`] without ever materialising the zeros.
    pub fn encode_csr<'a>(&self, objects: impl IntoIterator<Item = &'a str>) -> Csr {
        let mut b = CsrBuilder::new(self.dim());
        for o in objects {
            match self.index.get(o) {
                Some(&id) => b.push_row([(id as u32, 1.0)]),
                None => b.push_row([]),
            };
        }
        b.finish()
    }

    /// Cosine similarity under one-hot encoding: 1 for identity, 0 for
    /// anything else — the structural blindness E1 demonstrates.
    pub fn similarity(&self, a: &str, b: &str) -> Option<f32> {
        let (ia, ib) = (self.index.get(a)?, self.index.get(b)?);
        Some(if ia == ib { 1.0 } else { 0.0 })
    }

    /// How many distinct objects a `d`-dimensional *local* code can
    /// represent: exactly `d`.
    pub fn local_capacity(d: usize) -> usize {
        d
    }

    /// How many distinct objects a `d`-dimensional *binary distributed*
    /// code can represent: `2^d` (saturating) — "exponential in the
    /// total dimensions available" (§2.2).
    pub fn distributed_capacity(d: u32) -> u128 {
        if d >= 128 {
            u128::MAX
        } else {
            1u128 << d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_is_one_hot() {
        let oh = OneHot::new(["man", "woman", "king"].map(String::from));
        let v = oh.encode("woman").expect("known");
        assert_eq!(v, vec![0.0, 1.0, 0.0]);
        assert_eq!(oh.dim(), 3);
        assert!(oh.encode("queen").is_none());
    }

    #[test]
    fn duplicates_collapse() {
        let oh = OneHot::new(["a", "a", "b"].map(String::from));
        assert_eq!(oh.dim(), 2);
    }

    #[test]
    fn similarity_is_kronecker_delta() {
        let oh = OneHot::new(["girl", "princess", "man"].map(String::from));
        assert_eq!(oh.similarity("girl", "girl"), Some(1.0));
        // Figure 3's point: girl is NOT closer to princess than to man
        // under local representations.
        assert_eq!(oh.similarity("girl", "princess"), Some(0.0));
        assert_eq!(oh.similarity("girl", "man"), Some(0.0));
    }

    #[test]
    fn csr_batch_matches_dense_encode() {
        let oh = OneHot::new(["man", "woman", "king"].map(String::from));
        let batch = oh.encode_csr(["king", "queen", "man"]);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.nnz(), 2, "unknown object contributes no nonzero");
        let dense = batch.to_dense();
        assert_eq!(dense.row_slice(0), oh.encode("king").unwrap().as_slice());
        assert_eq!(dense.row_slice(1), vec![0.0; 3].as_slice());
        assert_eq!(dense.row_slice(2), oh.encode("man").unwrap().as_slice());
        // One-hot × embedding-table = row lookup, sparse or dense.
        let table = dc_tensor::Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let picked = batch.matmul_dense(&table);
        assert_eq!(picked.row_slice(0), table.row_slice(2));
        assert_eq!(picked.row_slice(1), &[0.0, 0.0]);
        assert_eq!(picked.row_slice(2), table.row_slice(0));
    }

    #[test]
    fn capacity_gap_is_exponential() {
        assert_eq!(OneHot::local_capacity(9), 9);
        assert_eq!(OneHot::distributed_capacity(9), 512);
        assert!(OneHot::distributed_capacity(127) > 1u128 << 126);
        assert_eq!(OneHot::distributed_capacity(200), u128::MAX);
    }
}
