//! Compositional distributed representations (§3.1): tuple2vec,
//! column2vec, table2vec and database2vec.
//!
//! "Assuming that we can learn the distributed representations of cells,
//! by composition, we can design representations for tuples, columns,
//! tables, or even an entire database." The default composition is the
//! mean ("a common approach is to simply average"); tuple2vec also
//! supports SIF-style frequency weighting, and the *learned* LSTM
//! composition lives in `dc-er` where it trains end-to-end.

use crate::celldoc::cell_token;
use crate::sgns::Embeddings;
use dc_relational::{tokenize_tuple, Table, Value};
use serde::{Deserialize, Serialize};

/// Smooth-inverse-frequency weighting for token aggregation:
/// `w(t) = a / (a + p(t))` with `p` the corpus unigram probability.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SifWeights {
    /// Smoothing constant (typically `1e-3`).
    pub a: f64,
}

impl Default for SifWeights {
    fn default() -> Self {
        SifWeights { a: 1e-3 }
    }
}

impl SifWeights {
    fn weight(&self, emb: &Embeddings, token: &str) -> f64 {
        match emb.vocab.id(token) {
            Some(id) => {
                let p = emb.vocab.counts[id] as f64 / emb.vocab.total_count() as f64;
                self.a / (self.a + p)
            }
            None => 0.0,
        }
    }
}

/// Compose a tuple vector from *word*-level embeddings of its cell text
/// (DeepER-style). `sif` enables frequency-weighted averaging; `None`
/// gives the plain mean. Returns `None` when nothing is in vocabulary.
pub fn tuple2vec(emb: &Embeddings, row: &[Value], sif: Option<SifWeights>) -> Option<Vec<f32>> {
    let tokens = tokenize_tuple(row);
    weighted_mean(emb, tokens.iter().map(String::as_str), sif)
}

/// Compose a column vector from *cell*-level embeddings of its distinct
/// values ("many tasks such as schema matching require the ability to
/// represent an entire column").
pub fn column2vec(emb: &Embeddings, table: &Table, col: usize) -> Option<Vec<f32>> {
    let tokens: Vec<String> = table
        .distinct(col)
        .iter()
        .map(|v| cell_token(col, &v.canonical()))
        .collect();
    weighted_mean(emb, tokens.iter().map(String::as_str), None)
}

/// Compose a table vector from its column vectors ("tasks such as copy
/// detection or data discovery ... might require to represent an entire
/// relation ... as a single vector").
pub fn table2vec(emb: &Embeddings, table: &Table) -> Option<Vec<f32>> {
    let cols: Vec<Vec<f32>> = (0..table.schema.arity())
        .filter_map(|c| column2vec(emb, table, c))
        .collect();
    mean_of(&cols, emb.dim())
}

/// Compose a database vector from table vectors.
pub fn database2vec(emb: &Embeddings, tables: &[&Table]) -> Option<Vec<f32>> {
    let tvs: Vec<Vec<f32>> = tables.iter().filter_map(|t| table2vec(emb, t)).collect();
    mean_of(&tvs, emb.dim())
}

fn weighted_mean<'a>(
    emb: &Embeddings,
    tokens: impl Iterator<Item = &'a str>,
    sif: Option<SifWeights>,
) -> Option<Vec<f32>> {
    let mut acc = vec![0.0f32; emb.dim()];
    let mut total_w = 0.0f64;
    for tok in tokens {
        let Some(v) = emb.get(tok) else { continue };
        let w = match sif {
            Some(s) => s.weight(emb, tok),
            None => 1.0,
        };
        if w <= 0.0 {
            continue;
        }
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += (w as f32) * x;
        }
        total_w += w;
    }
    if total_w == 0.0 {
        return None;
    }
    let inv = (1.0 / total_w) as f32;
    acc.iter_mut().for_each(|a| *a *= inv);
    Some(acc)
}

fn mean_of(vecs: &[Vec<f32>], dim: usize) -> Option<Vec<f32>> {
    if vecs.is_empty() {
        return None;
    }
    let mut acc = vec![0.0f32; dim];
    for v in vecs {
        for (a, &x) in acc.iter_mut().zip(v) {
            *a += x;
        }
    }
    let inv = 1.0 / vecs.len() as f32;
    acc.iter_mut().for_each(|a| *a *= inv);
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::celldoc::CellDocEmbedder;
    use crate::sgns::SgnsConfig;
    use dc_relational::table::employee_example;
    use dc_tensor::tensor::cosine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn word_embeddings() -> Embeddings {
        // Word-level corpus from the employee table rows.
        let docs: Vec<Vec<String>> = employee_example()
            .rows
            .iter()
            .map(|r| tokenize_tuple(r))
            .collect();
        let mut rng = StdRng::seed_from_u64(50);
        Embeddings::train(
            &docs,
            &SgnsConfig {
                dim: 8,
                epochs: 30,
                ..Default::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn tuple2vec_mean_and_sif_both_work() {
        let emb = word_embeddings();
        let t = employee_example();
        let plain = tuple2vec(&emb, &t.rows[0], None).expect("vec");
        let sif = tuple2vec(&emb, &t.rows[0], Some(SifWeights::default())).expect("vec");
        assert_eq!(plain.len(), 8);
        assert_eq!(sif.len(), 8);
        // SIF downweights frequent tokens, so the two must differ.
        assert!(cosine(&plain, &sif) < 0.99999 || plain != sif);
    }

    #[test]
    fn similar_tuples_have_similar_vectors() {
        let emb = word_embeddings();
        let t = employee_example();
        // Rows 0 and 2 share the department; rows 0 and 1 do not.
        let v0 = tuple2vec(&emb, &t.rows[0], None).expect("vec");
        let v1 = tuple2vec(&emb, &t.rows[1], None).expect("vec");
        let v2 = tuple2vec(&emb, &t.rows[2], None).expect("vec");
        assert!(cosine(&v0, &v2) > cosine(&v0, &v1));
    }

    #[test]
    fn tuple2vec_oov_returns_none() {
        let emb = word_embeddings();
        let row = vec![Value::text("completely unseen tokens only")];
        assert!(tuple2vec(&emb, &row, None).is_none());
    }

    #[test]
    fn column_table_database_compose() {
        let t = employee_example();
        let mut rng = StdRng::seed_from_u64(51);
        let cell_emb = CellDocEmbedder::new(SgnsConfig {
            dim: 8,
            epochs: 20,
            ..Default::default()
        })
        .train(&t, &mut rng);
        let c0 = column2vec(&cell_emb, &t, 0).expect("col vec");
        assert_eq!(c0.len(), 8);
        let tv = table2vec(&cell_emb, &t).expect("table vec");
        assert_eq!(tv.len(), 8);
        let dv = database2vec(&cell_emb, &[&t, &t]).expect("db vec");
        // A database of two copies of the same table averages to the
        // table vector.
        assert!(cosine(&dv, &tv) > 0.999);
    }
}
