//! Coherent groups (§5.1).
//!
//! From the paper's account of the Seeping-Semantics matcher: "a group
//! of words is similar to another group of words if the average
//! similarity in the embeddings between all pairs of words is high" —
//! introduced "to tackle the issues of multi-word phrases and
//! out-of-vocabulary terms". Pairs involving OOV tokens simply drop out
//! of the average instead of poisoning it.

use crate::sgns::Embeddings;
use dc_tensor::tensor::cosine;

/// Average pairwise cosine similarity between two word groups.
///
/// Returns `None` when no cross pair has both words in vocabulary.
pub fn coherent_group_similarity(
    emb: &Embeddings,
    group_a: &[String],
    group_b: &[String],
) -> Option<f32> {
    let mut total = 0.0f32;
    let mut pairs = 0usize;
    for a in group_a {
        let Some(va) = emb.get(a) else { continue };
        for b in group_b {
            let Some(vb) = emb.get(b) else { continue };
            total += cosine(va, vb);
            pairs += 1;
        }
    }
    if pairs == 0 {
        None
    } else {
        Some(total / pairs as f32)
    }
}

/// Internal coherence of one group: average pairwise similarity among
/// its own words (1.0 for singleton groups). Used by the discovery
/// matcher to reject incoherent multi-word column names before matching.
pub fn group_coherence(emb: &Embeddings, group: &[String]) -> Option<f32> {
    let known: Vec<&[f32]> = group.iter().filter_map(|t| emb.get(t)).collect();
    if known.is_empty() {
        return None;
    }
    if known.len() == 1 {
        return Some(1.0);
    }
    let mut total = 0.0;
    let mut pairs = 0;
    for i in 0..known.len() {
        for j in i + 1..known.len() {
            total += cosine(known[i], known[j]);
            pairs += 1;
        }
    }
    Some(total / pairs as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgns::{planted_topic_corpus, SgnsConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn topic_embeddings() -> Embeddings {
        let mut rng = StdRng::seed_from_u64(60);
        let corpus = planted_topic_corpus(2, 5, 600, 8, &mut rng);
        Embeddings::train(
            &corpus,
            &SgnsConfig {
                dim: 16,
                epochs: 8,
                ..Default::default()
            },
            &mut rng,
        )
    }

    fn g(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn same_topic_groups_score_higher() {
        let emb = topic_embeddings();
        let within = coherent_group_similarity(&emb, &g(&["t0w0", "t0w1"]), &g(&["t0w2", "t0w3"]))
            .expect("in vocab");
        let across = coherent_group_similarity(&emb, &g(&["t0w0", "t0w1"]), &g(&["t1w0", "t1w1"]))
            .expect("in vocab");
        assert!(within > across, "within {within} vs across {across}");
    }

    #[test]
    fn oov_words_drop_out_instead_of_failing() {
        let emb = topic_embeddings();
        let with_oov =
            coherent_group_similarity(&emb, &g(&["t0w0", "UNKNOWN_TOKEN"]), &g(&["t0w1"]))
                .expect("one pair remains");
        let without =
            coherent_group_similarity(&emb, &g(&["t0w0"]), &g(&["t0w1"])).expect("in vocab");
        assert!((with_oov - without).abs() < 1e-6);
    }

    #[test]
    fn all_oov_returns_none() {
        let emb = topic_embeddings();
        assert!(coherent_group_similarity(&emb, &g(&["xx"]), &g(&["yy"])).is_none());
    }

    #[test]
    fn coherence_of_topic_group_beats_mixed_group() {
        let emb = topic_embeddings();
        let pure = group_coherence(&emb, &g(&["t0w0", "t0w1", "t0w2"])).expect("in vocab");
        let mixed = group_coherence(&emb, &g(&["t0w0", "t1w0", "t0w1"])).expect("in vocab");
        assert!(pure > mixed, "pure {pure} vs mixed {mixed}");
        assert_eq!(group_coherence(&emb, &g(&["t0w0"])), Some(1.0));
        assert!(group_coherence(&emb, &g(&["zz"])).is_none());
    }
}
