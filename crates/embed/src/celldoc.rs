//! Tuple-as-document cell embeddings — the "naive adaptation" of §3.1.
//!
//! "A naive adaptation treats each tuple as a document where the values
//! of each attribute correspond to words." Each distinct cell becomes a
//! token and every row a short document read in attribute order, then
//! SGNS learns the vectors. The paper immediately lists the model's
//! limitations — normalisation destroys co-occurrence, the window size
//! `W` misses attribute pairs more than `W` apart, and integrity
//! constraints are invisible — and experiment E2 measures exactly those
//! failure modes against the graph model in [`crate::cellgraph`].

use crate::sgns::{Embeddings, SgnsConfig};
use dc_relational::Table;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Token key of a cell: attribute-scoped so the same string in two
/// columns stays two tokens (matching the Figure-4 node identity).
pub fn cell_token(attr: usize, canonical: &str) -> String {
    format!("{attr}|{canonical}")
}

/// Trainer for tuple-as-document cell embeddings.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellDocEmbedder {
    /// SGNS hyper-parameters; `window` is the `W` of §3.1's limitation 2.
    pub config: SgnsConfig,
}

impl CellDocEmbedder {
    /// With the given SGNS configuration.
    pub fn new(config: SgnsConfig) -> Self {
        CellDocEmbedder { config }
    }

    /// The tuple-documents of a table: one document per row, one token
    /// per non-null cell, in attribute order ("some order is assumed").
    pub fn documents(table: &Table) -> Vec<Vec<String>> {
        table
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, v)| !v.is_null())
                    .map(|(c, v)| cell_token(c, &v.canonical()))
                    .collect()
            })
            .collect()
    }

    /// Train cell embeddings over one table.
    pub fn train(&self, table: &Table, rng: &mut StdRng) -> Embeddings {
        Embeddings::train(&Self::documents(table), &self.config, rng)
    }

    /// Train over several tables pooled into one corpus — a first step
    /// towards the "global distributed representations" research
    /// direction ("over the entire data ocean, not only on one
    /// relation").
    pub fn train_corpus(&self, tables: &[&Table], rng: &mut StdRng) -> Embeddings {
        let mut docs = Vec::new();
        for t in tables {
            docs.extend(Self::documents(t));
        }
        Embeddings::train(&docs, &self.config, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dc_relational::{AttrType, Schema, Value};
    use rand::SeedableRng;

    /// A table whose column 0 and column `far` hold perfectly correlated
    /// values (entity index), with uncorrelated noise columns between.
    fn correlated_table(rows: usize, arity: usize, far: usize, rng: &mut StdRng) -> Table {
        use rand::Rng;
        let attrs: Vec<(String, AttrType)> = (0..arity)
            .map(|i| (format!("a{i}"), AttrType::Text))
            .collect();
        let attr_refs: Vec<(&str, AttrType)> =
            attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let mut t = Table::new("corr", Schema::new(&attr_refs));
        for _ in 0..rows {
            let entity = rng.gen_range(0..5);
            let row: Vec<Value> = (0..arity)
                .map(|c| {
                    if c == 0 {
                        Value::text(format!("key{entity}"))
                    } else if c == far {
                        Value::text(format!("val{entity}"))
                    } else {
                        Value::text(format!("noise{}", rng.gen_range(0..40)))
                    }
                })
                .collect();
            t.push(row);
        }
        t
    }

    #[test]
    fn documents_preserve_attribute_order_and_skip_nulls() {
        let mut t = Table::new(
            "d",
            Schema::new(&[("x", AttrType::Text), ("y", AttrType::Text)]),
        );
        t.push(vec![Value::text("a"), Value::Null]);
        let docs = CellDocEmbedder::documents(&t);
        assert_eq!(docs, vec![vec![cell_token(0, "a")]]);
    }

    #[test]
    fn adjacent_correlated_cells_become_similar() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = correlated_table(400, 3, 1, &mut rng);
        let emb = CellDocEmbedder::new(SgnsConfig {
            dim: 16,
            window: 2,
            epochs: 10,
            ..Default::default()
        })
        .train(&t, &mut rng);
        let same = emb
            .similarity(&cell_token(0, "key0"), &cell_token(1, "val0"))
            .expect("in vocab");
        let diff = emb
            .similarity(&cell_token(0, "key0"), &cell_token(1, "val3"))
            .expect("in vocab");
        assert!(same > diff, "correlated pair {same} vs uncorrelated {diff}");
    }

    #[test]
    fn window_limitation_misses_distant_attributes() {
        // §3.1 limitation 2: with |i−j| > W the co-occurrence is missed.
        let mut rng = StdRng::seed_from_u64(22);
        let t = correlated_table(400, 8, 7, &mut rng);
        let near_cfg = SgnsConfig {
            dim: 16,
            window: 7,
            epochs: 10,
            ..Default::default()
        };
        let far_cfg = SgnsConfig {
            window: 2,
            ..near_cfg.clone()
        };
        let mut rng_a = StdRng::seed_from_u64(23);
        let mut rng_b = StdRng::seed_from_u64(23);
        let wide = CellDocEmbedder::new(near_cfg).train(&t, &mut rng_a);
        let narrow = CellDocEmbedder::new(far_cfg).train(&t, &mut rng_b);

        let score = |e: &Embeddings| {
            let mut s = 0.0;
            for k in 0..5 {
                s += e
                    .similarity(
                        &cell_token(0, &format!("key{k}")),
                        &cell_token(7, &format!("val{k}")),
                    )
                    .expect("in vocab");
            }
            s / 5.0
        };
        let wide_s = score(&wide);
        let narrow_s = score(&narrow);
        assert!(
            wide_s > narrow_s + 0.15,
            "wide window {wide_s} should beat narrow {narrow_s}"
        );
    }

    #[test]
    fn pooled_corpus_covers_all_tables() {
        let mut rng = StdRng::seed_from_u64(24);
        let t1 = correlated_table(50, 2, 1, &mut rng);
        let mut t2 = correlated_table(50, 2, 1, &mut rng);
        t2.name = "other".into();
        let emb = CellDocEmbedder::new(SgnsConfig::default()).train_corpus(&[&t1, &t2], &mut rng);
        assert!(emb.get(&cell_token(0, "key0")).is_some());
    }
}
