//! Fused-LSTM equivalence suite (ISSUE 7).
//!
//! The fused gate path (one `T×4h` input GEMM, one `h·Wh` GEMM per
//! step, `slice_cols` gate splits) must be interchangeable with the
//! `DC_LSTM_FUSED=0` legacy path (eight tiny per-gate GEMMs per step):
//!
//! 1. **Cross-mode within 1e-5.** The kernel accumulates full `NR`-wide
//!    column strips (and full `MR`-row tiles) with hardware FMA but the
//!    remainders with separate mul+add, so per-element rounding depends
//!    on the GEMM's output shape: a gate column that sits in the scalar
//!    remainder of an `n = h` per-gate product lands in an FMA strip of
//!    the `n = 4h` fused product. Fused vs unfused is therefore a
//!    tolerance comparison (≤1e-5 relative to the tensor's scale), not
//!    bitwise — on top of backward reassociating the `Wx` gradient (one
//!    `seqᵀ·G` product vs per-timestep rank-1 updates).
//! 2. **Batch within 1e-5, same ulp class.** Bucketed `encode_batch`
//!    keeps each lane's k-order but changes the GEMMs' row counts, so a
//!    row can move between the FMA row tile and the scalar remainder —
//!    lanes match solo `encode` to within a few ulps (bitwise when the
//!    row tiling lines up; `lstm.rs` has a unit test pinning that).
//! 3. **Pooled vs fresh bitwise.** A recycled pooled tape running the
//!    fused graph (slice_cols backward included) replays the identical
//!    GEMM shapes, so it must reproduce a fresh `DC_POOL=0` tape bit
//!    for bit.
//!
//! `scripts/lint.sh` runs this suite under `DC_THREADS` 1, 2, and the
//! default. The gates are process-global, so tests serialise on a
//! mutex and re-pin every gate they depend on at entry.

use dc_nn::lstm::{set_lstm_fused, LstmEncoder};
use dc_nn::optim::{Adam, Optimizer, Sgd};
use dc_tensor::{set_fuse_enabled, set_pool_enabled, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serialises tests that flip the global pool/fuse/lstm-fused gates.
static GATE_LOCK: Mutex<()> = Mutex::new(());

fn seq_tensor(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    Tensor::randn(rows, cols, 1.0, rng)
}

/// One LSTM training step on `tape`: forward over `seq`, sum-of-squares
/// loss, backward, optimiser update. Returns the loss bits.
fn train_step(enc: &mut LstmEncoder, opt: &mut dyn Optimizer, tape: &Tape, seq: &Tensor) -> u32 {
    let vars = enc.bind(tape);
    let sv = tape.var_slice(seq.rows, seq.cols, &seq.data);
    let h = enc.forward_tape(tape, sv, &vars);
    let loss = tape.sum(tape.mul(h, h));
    let bits = tape.item(loss).to_bits();
    tape.backward(loss);
    opt.begin_step();
    enc.apply_grads(opt, 0, tape, &vars);
    bits
}

/// Every element of `a` and `b` agrees to within `tol` of the pair's
/// overall scale (floored at 1). Scale-relative, not element-relative:
/// near-cancelling dot products leave absolute rounding noise behind,
/// so an element-wise relative test would be ill-conditioned at zeros.
fn close(a: &Tensor, b: &Tensor, tol: f32) -> bool {
    let scale = a
        .data
        .iter()
        .chain(&b.data)
        .fold(1.0f32, |m, v| m.max(v.abs()));
    a.data
        .iter()
        .zip(&b.data)
        .all(|(x, y)| (x - y).abs() <= tol * scale)
}

proptest! {
    /// Property 1a: fused and unfused `encode` agree within 1e-5
    /// relative (FMA-strip vs scalar-remainder rounding, see module
    /// doc — the recurrence compounds it slightly, never past 1e-5).
    #[test]
    fn fused_encode_matches_unfused(
        dim in 1usize..5,
        hidden in 1usize..6,
        tokens in 0usize..8,
        seed in 0u64..1_000_000,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);
        set_fuse_enabled(true);

        let mut rng = StdRng::seed_from_u64(seed);
        let enc = LstmEncoder::new(dim, hidden, &mut rng);
        let seq = seq_tensor(tokens, dim, &mut rng);

        set_lstm_fused(true);
        let fused = enc.encode(&seq);
        set_lstm_fused(false);
        let unfused = enc.encode(&seq);
        set_lstm_fused(true);

        prop_assert!(close(&fused, &unfused, 1e-5));
    }

    /// Property 2: length-bucketed `encode_batch` reproduces each
    /// lane's solo `encode` to within a few ulps — batching stacks
    /// extra rows into the same-width GEMMs, which can move a row
    /// between the FMA tile and the scalar remainder path.
    #[test]
    fn batch_encode_matches_solo(
        dim in 1usize..5,
        hidden in 1usize..6,
        lens in proptest::collection::vec(0usize..7, 0..6),
        seed in 0u64..1_000_000,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);
        set_fuse_enabled(true);
        set_lstm_fused(true);

        let mut rng = StdRng::seed_from_u64(seed);
        let enc = LstmEncoder::new(dim, hidden, &mut rng);
        let seqs: Vec<Tensor> = lens.iter().map(|&t| seq_tensor(t, dim, &mut rng)).collect();

        let batched = enc.encode_batch(&seqs);
        prop_assert_eq!(batched.len(), seqs.len());
        for (s, hb) in seqs.iter().zip(&batched) {
            prop_assert!(close(&enc.encode(s), hb, 1e-5));
        }
    }

    /// Property 1b: a short identically-seeded training run stays
    /// within 1e-5 of scale on the loss and every parameter across
    /// modes (forward rounding differs per the module doc, and backward
    /// additionally reassociates the Wx gradient accumulation). SGD,
    /// not Adam: Adam's m̂/√v̂ ratio is sign-sensitive, so an element
    /// whose true gradient is below the rounding noise could flip its
    /// whole ±lr update between modes — SGD keeps the parameter drift
    /// proportional to the gradient difference itself.
    #[test]
    fn fused_training_tracks_unfused(
        dim in 1usize..4,
        hidden in 1usize..5,
        tokens in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_pool_enabled(true);
        set_fuse_enabled(true);

        let run = |fused: bool| {
            set_lstm_fused(fused);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut enc = LstmEncoder::new(dim, hidden, &mut rng);
            let seq = seq_tensor(tokens, dim, &mut rng);
            let mut opt = Sgd::new(0.05);
            let mut first_loss = 0;
            for step in 0..3 {
                let tape = Tape::new();
                let bits = train_step(&mut enc, &mut opt, &tape, &seq);
                if step == 0 {
                    first_loss = bits;
                }
            }
            (first_loss, enc)
        };

        let (loss_f, enc_f) = run(true);
        let (loss_u, enc_u) = run(false);
        set_lstm_fused(true);

        // Step 0 starts from identical weights: the losses only differ
        // by the kernel's shape-dependent rounding.
        let (lf, lu) = (f32::from_bits(loss_f), f32::from_bits(loss_u));
        prop_assert!((lf - lu).abs() <= 1e-5 * lf.abs().max(lu.abs()).max(1.0));
        prop_assert!(close(&enc_f.wx, &enc_u.wx, 1e-5));
        prop_assert!(close(&enc_f.wh, &enc_u.wh, 1e-5));
        prop_assert!(close(&enc_f.b, &enc_u.b, 1e-5));
    }

    /// Property 2b: the fused-LSTM graph (slice_cols included) on a
    /// recycled pooled tape ≡ a fresh unpooled tape, bit for bit —
    /// loss trace and final parameters.
    #[test]
    fn pooled_fused_tape_matches_fresh_bitwise(
        dim in 1usize..4,
        hidden in 1usize..5,
        tokens in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let _g = GATE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_fuse_enabled(true);
        set_lstm_fused(true);

        let run = |pooled: bool| {
            set_pool_enabled(pooled);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut enc = LstmEncoder::new(dim, hidden, &mut rng);
            let seq = seq_tensor(tokens, dim, &mut rng);
            let mut opt = Adam::new(0.01);
            let mut bits = Vec::new();
            if pooled {
                let tape = Tape::new();
                for _ in 0..3 {
                    bits.push(train_step(&mut enc, &mut opt, &tape, &seq));
                    tape.recycle();
                }
            } else {
                for _ in 0..3 {
                    let tape = Tape::new();
                    bits.push(train_step(&mut enc, &mut opt, &tape, &seq));
                }
            }
            for t in [&enc.wx, &enc.wh, &enc.b] {
                bits.extend(t.data.iter().map(|v| v.to_bits()));
            }
            bits
        };

        let fresh = run(false);
        let pooled = run(true);
        set_pool_enabled(true);

        prop_assert_eq!(fresh, pooled);
    }
}
