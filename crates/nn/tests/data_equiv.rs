//! Training-level dc-data equivalence (ISSUE 10).
//!
//! The chunked dataset proptests (crates/data) pin orders and batch
//! bytes; these tests pin what actually matters downstream — **loss
//! trajectories and learned weights** through the real `MlpTrainer`
//! path:
//!
//! 1. `run_epochs` over in-memory tensors (the rewired seed path) and
//!    `run_dataset_epochs` over a single-chunk [`ChunkedDataset`]
//!    produce bitwise-identical traces and weights.
//! 2. A file-backed store streaming under a tiny residency budget
//!    trains bitwise-identically to the fully resident run of the same
//!    chunk layout — larger-than-memory corpora cost nothing in
//!    reproducibility.
//!
//! Run by `scripts/lint.sh` under `DC_THREADS=1`, `=2`, and default.

use dc_data::{ChunkedDataset, ChunkedStore};
use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::mlp::Mlp;
use dc_nn::optim::Adam;
use dc_nn::train::{run_dataset_epochs, run_epochs, MlpTrainer, TrainOpts};
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn data(rng: &mut StdRng) -> (Tensor, Tensor) {
    let x = Tensor::randn(48, 5, 1.0, rng);
    let y = Tensor::from_vec(48, 1, (0..48).map(|i| (i % 2) as f32).collect());
    (x, y)
}

fn train_dense(x: &Tensor, y: &Tensor, opts: &TrainOpts) -> (Vec<f32>, Mlp) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut m = Mlp::new(&[5, 9, 1], Activation::Tanh, Activation::Identity, &mut rng);
    let mut opt = Adam::new(0.02);
    let mut t = MlpTrainer {
        model: &mut m,
        loss: LossKind::bce(),
        opt: &mut opt,
    };
    let trace = run_epochs("nn.test", &mut t, x, Some(y), opts, &mut rng);
    (trace.iter().map(|e| e.loss).collect(), m)
}

fn train_chunked(ds: &mut ChunkedDataset, opts: &TrainOpts) -> (Vec<f32>, Mlp) {
    let mut rng = StdRng::seed_from_u64(77);
    let mut m = Mlp::new(&[5, 9, 1], Activation::Tanh, Activation::Identity, &mut rng);
    let mut opt = Adam::new(0.02);
    let mut t = MlpTrainer {
        model: &mut m,
        loss: LossKind::bce(),
        opt: &mut opt,
    };
    let trace = run_dataset_epochs("nn.test", &mut t, ds, opts, &mut rng);
    (trace.iter().map(|e| e.loss).collect(), m)
}

fn assert_same(a: &(Vec<f32>, Mlp), b: &(Vec<f32>, Mlp), what: &str) {
    assert_eq!(
        a.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        b.0.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "{what}: loss trajectories diverged"
    );
    for (la, lb) in a.1.layers.iter().zip(&b.1.layers) {
        assert_eq!(la.w, lb.w, "{what}: weights diverged");
        assert_eq!(la.b, lb.b, "{what}: biases diverged");
    }
}

#[test]
fn single_chunk_dataset_trains_bitwise_like_run_epochs() {
    let mut rng = StdRng::seed_from_u64(1);
    let (x, y) = data(&mut rng);
    let opts = TrainOpts::default().with_epochs(4).with_batch_size(8);
    let dense = train_dense(&x, &y, &opts);
    let mut ds = ChunkedDataset::with_targets(
        ChunkedStore::from_tensor(&x, x.rows),
        ChunkedStore::from_tensor(&y, x.rows),
    );
    let chunked = train_chunked(&mut ds, &opts);
    assert_same(&dense, &chunked, "single-chunk vs run_epochs");
}

#[test]
fn streamed_training_is_bitwise_equal_to_resident() {
    let mut rng = StdRng::seed_from_u64(2);
    let (x, y) = data(&mut rng);
    let opts = TrainOpts::default().with_epochs(4).with_batch_size(8);
    let chunk_rows = 7; // 48 rows → 7 chunks, deliberately misaligned

    let mut resident = ChunkedDataset::with_targets(
        ChunkedStore::from_tensor(&x, chunk_rows),
        ChunkedStore::from_tensor(&y, chunk_rows),
    );
    let want = train_chunked(&mut resident, &opts);

    let dir = std::env::temp_dir();
    let (px, py) = (dir.join("dc_nn_equiv_x.dcs"), dir.join("dc_nn_equiv_y.dcs"));
    ChunkedStore::write(&px, &x, chunk_rows).expect("write x");
    ChunkedStore::write(&py, &y, chunk_rows).expect("write y");
    let mut streamed = ChunkedDataset::with_targets(
        ChunkedStore::open_with_budget(&px, 2).expect("open x"),
        ChunkedStore::open_with_budget(&py, 2).expect("open y"),
    );
    let got = train_chunked(&mut streamed, &opts);
    let stats = streamed.x_store().cache_stats();
    std::fs::remove_file(&px).ok();
    std::fs::remove_file(&py).ok();

    assert!(
        stats.evicts > 0,
        "streamed run must actually evict (budget 2 of {} chunks): {stats:?}",
        streamed.x_store().n_chunks()
    );
    assert_same(&want, &got, "streamed vs resident");
}
