//! Liveness-forecast parity: `dc_check::forecast_pool`'s predicted
//! `PoolStats` — hits, misses, outstanding/held bytes, and the
//! high-water mark — must equal the runtime's actuals on the two real
//! training steps the bench suite times (the MLP batch step and the
//! pair-by-pair DeepER-LSTM step). Any drift between `Tape::backward`'s
//! buffer traffic and the static model in `crates/check/src/liveness.rs`
//! fails here first.

use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::lstm::{set_lstm_fused, LstmEncoder};
use dc_nn::mlp::Mlp;
use dc_nn::optim::{Adam, Optimizer};
use dc_tensor::{set_fuse_enabled, set_pool_enabled, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Mutex;

/// Serializes tests that pin the global pool/fuse gates.
static GATE_LOCK: Mutex<()> = Mutex::new(());

fn check_step(tape: &Tape, label: &str) {
    let root = tape.last_backward_root().expect("backward ran");
    let errors = dc_check::liveness::verify(tape, root);
    assert!(
        errors.is_empty(),
        "{label}: liveness verification failed\n{}",
        dc_check::render(&errors)
    );
    let predicted = dc_check::forecast_pool(tape, root).expect("clean graph");
    let actual = tape.pool_stats();
    assert_eq!(
        predicted, actual,
        "{label}: forecast PoolStats must match the runtime's actuals"
    );
    assert_eq!(
        predicted.high_water_bytes, actual.high_water_bytes,
        "{label}: predicted pool high-water must match"
    );
}

#[test]
fn forecast_matches_actuals_on_mlp_training_step() {
    let _gates = GATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_pool_enabled(true);
    set_fuse_enabled(true);

    // The bench suite's MlpMicro: a deep narrow MLP on a 4-example batch.
    let mut rng = StdRng::seed_from_u64(11);
    let x = Tensor::randn(4, 8, 1.0, &mut rng);
    let y = Tensor::from_vec(4, 1, (0..4).map(|i| (i % 2) as f32).collect());
    let mut model = Mlp::new(
        &[8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 8, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let mut opt = Adam::new(0.01);

    let tape = Tape::new(); // fresh pool: the forecast's starting state
    model.train_batch_on(&tape, &x, &y, LossKind::Mse, &mut opt, &mut rng);
    check_step(&tape, "mlp");
    let first = tape.pool_stats();

    // Steady state: an identically-shaped second step must be served
    // entirely from the freelists — no new misses, no high-water growth.
    tape.recycle();
    model.train_batch_on(&tape, &x, &y, LossKind::Mse, &mut opt, &mut rng);
    let steady = tape.pool_stats();
    assert_eq!(steady.misses, first.misses, "steady-state step missed");
    assert_eq!(steady.high_water_bytes, first.high_water_bytes);
}

/// One DeeperLstmMicro-shaped training step: shared-LSTM pair encoding,
/// |ha−hb| ⧺ ha⊙hb features, MLP classifier, BCE loss.
fn deeper_lstm_parity(fused: bool, label: &str) {
    let _gates = GATE_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    set_pool_enabled(true);
    set_fuse_enabled(true);
    set_lstm_fused(fused);

    let mut rng = StdRng::seed_from_u64(23);
    let (dim, hidden, tokens) = (8, 8, 10);
    let seq_a = Tensor::randn(tokens, dim, 1.0, &mut rng);
    let seq_b = Tensor::randn(tokens, dim, 1.0, &mut rng);
    let mut encoder = LstmEncoder::new(dim, hidden, &mut rng);
    let mut classifier = Mlp::new(
        &[2 * hidden, 32, 1],
        Activation::Relu,
        Activation::Identity,
        &mut rng,
    );
    let mut opt = Adam::new(0.01);

    let tape = Tape::new();
    let run_step =
        |tape: &Tape, encoder: &mut LstmEncoder, classifier: &mut Mlp, opt: &mut Adam| {
            let lvars = encoder.bind(tape);
            let cvars = classifier.bind(tape);
            let sa = tape.var_slice(seq_a.rows, seq_a.cols, &seq_a.data);
            let sb = tape.var_slice(seq_b.rows, seq_b.cols, &seq_b.data);
            let ha = encoder.forward_tape(tape, sa, &lvars);
            let hb = encoder.forward_tape(tape, sb, &lvars);
            let diff = tape.abs(tape.sub(ha, hb));
            let had = tape.mul(ha, hb);
            let feat = tape.concat(&[diff, had]);
            let logit = classifier.forward_tape(tape, feat, &cvars, None);
            let loss = tape.bce_with_logits(logit, Tensor::scalar(1.0), Tensor::scalar(1.0));
            tape.backward(loss);
            opt.begin_step();
            encoder.apply_grads(opt, 0, tape, &lvars);
            let base = encoder.slot_count();
            for (slot, (layer, cv)) in classifier.layers.iter_mut().zip(&cvars).enumerate() {
                tape.with_grad(cv.w, |gw| {
                    tape.with_grad(cv.b, |gb| layer.apply_grads(opt, base + slot, gw, gb))
                });
            }
        };

    run_step(&tape, &mut encoder, &mut classifier, &mut opt);
    check_step(&tape, label);
    let first = tape.pool_stats();

    tape.recycle();
    run_step(&tape, &mut encoder, &mut classifier, &mut opt);
    let steady = tape.pool_stats();
    assert_eq!(steady.misses, first.misses, "steady-state step missed");
    assert_eq!(steady.high_water_bytes, first.high_water_bytes);

    set_lstm_fused(true);
}

#[test]
fn forecast_matches_actuals_on_deeper_lstm_training_step() {
    // The fused graph: T×4h input precompute, slice_cols gate splits.
    deeper_lstm_parity(true, "deeper-lstm-fused");
}

#[test]
fn forecast_matches_actuals_on_unfused_deeper_lstm_training_step() {
    // The DC_LSTM_FUSED=0 escape hatch: per-gate GEMMs.
    deeper_lstm_parity(false, "deeper-lstm-unfused");
}
