//! Pool leak guard (ISSUE 5): a tape recycled by the unified training
//! loop must reach steady state after the first epoch — the high-water
//! mark stops growing and later epochs take every buffer from the
//! freelists (zero new misses).

use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::mlp::Mlp;
use dc_nn::optim::Adam;
use dc_nn::train::{run_epochs_with_tape, Batch, StepStats, TrainCtx, TrainOpts, Trainer};
use dc_tensor::{set_pool_enabled, Tape, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct MlpTrainer {
    model: Mlp,
    opt: Adam,
}

impl Trainer for MlpTrainer {
    fn fit(&mut self, batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
        let loss = self.model.train_batch_on(
            ctx.tape,
            &batch.x,
            batch.targets(),
            LossKind::Mse,
            &mut self.opt,
            ctx.rng,
        );
        StepStats { loss, aux: 0.0 }
    }
}

/// One epoch of `run_epochs_with_tape` against a shared tape; returns
/// the pool stats after the epoch.
fn epoch(trainer: &mut MlpTrainer, x: &Tensor, y: &Tensor, tape: &Tape, rng: &mut StdRng) {
    let opts = TrainOpts::default().with_epochs(1).with_batch_size(8);
    run_epochs_with_tape("test.pool_leak", trainer, x, Some(y), &opts, rng, tape);
}

#[test]
fn pool_high_water_stabilises_after_first_epoch() {
    set_pool_enabled(true);
    let mut rng = StdRng::seed_from_u64(42);
    let x = Tensor::randn(32, 6, 1.0, &mut rng);
    let y = Tensor::from_vec(32, 1, (0..32).map(|i| (i % 2) as f32).collect());
    let mut trainer = MlpTrainer {
        model: Mlp::new(
            &[6, 12, 12, 1],
            Activation::Relu,
            Activation::Identity,
            &mut rng,
        ),
        opt: Adam::new(0.01),
    };

    let tape = Tape::new();
    epoch(&mut trainer, &x, &y, &tape, &mut rng);
    let warm = tape.pool_stats();
    assert!(warm.misses > 0, "first epoch must allocate something");

    for e in 2..=4 {
        epoch(&mut trainer, &x, &y, &tape, &mut rng);
        let now = tape.pool_stats();
        assert_eq!(
            now.high_water_bytes, warm.high_water_bytes,
            "epoch {e}: pool high-water grew after warmup — buffers are leaking"
        );
        assert_eq!(
            now.misses, warm.misses,
            "epoch {e}: pool missed after warmup — buffers are not being recycled"
        );
        assert!(now.hits > warm.hits, "epoch {e}: pool saw no hits");
    }

    // Everything handed out during the last step was returned by the
    // final recycle: nothing is still outstanding.
    assert_eq!(
        tape.pool_stats().outstanding_bytes,
        0,
        "buffers left outstanding"
    );
}
