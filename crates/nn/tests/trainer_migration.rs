//! Migration guard for the unified `Trainer` API: every legacy `fit`
//! entry point now routes through `train::run_epochs`, and these tests
//! pin that the rewiring changed nothing — identical seeds must give
//! bitwise-identical loss trajectories and weights versus the seed-era
//! hand-rolled epoch loops (written out longhand here).

use dc_nn::ae::{Autoencoder, DenoisingAutoencoder, Noise, Vae};
use dc_nn::linear::Activation;
use dc_nn::loss::LossKind;
use dc_nn::mlp::{gather_rows, Mlp};
use dc_nn::optim::Adam;
use dc_nn::train::{run_epochs, Batch, StepStats, TrainCtx, TrainOpts, Trainer, VaeTrainer};
use dc_tensor::Tensor;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn data(rng: &mut StdRng, rows: usize, cols: usize) -> Tensor {
    Tensor::randn(rows, cols, 1.0, rng)
}

/// The seed's epoch-loop skeleton, reproduced verbatim so each test
/// can drive a model's single-step method the way the old `fit` did.
fn legacy_loop<F: FnMut(&[usize], &mut StdRng) -> f32>(
    n: usize,
    epochs: usize,
    batch_size: usize,
    rng: &mut StdRng,
    mut step: F,
) -> Vec<f32> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut trace = Vec::with_capacity(epochs);
    for _ in 0..epochs {
        order.shuffle(rng);
        let (mut total, mut batches) = (0.0, 0);
        for chunk in order.chunks(batch_size.max(1)) {
            total += step(chunk, rng);
            batches += 1;
        }
        trace.push(total / batches.max(1) as f32);
    }
    trace
}

#[test]
fn mlp_fit_matches_legacy_loop() {
    let mut rng = StdRng::seed_from_u64(1);
    let x = data(&mut rng, 24, 4);
    let y = Tensor::from_vec(24, 1, (0..24).map(|i| (i % 2) as f32).collect());

    let mut rng_a = StdRng::seed_from_u64(2);
    let mut m_a = Mlp::new(
        &[4, 6, 1],
        Activation::Tanh,
        Activation::Identity,
        &mut rng_a,
    );
    let mut opt_a = Adam::new(0.02);
    let trace_a = legacy_loop(24, 6, 8, &mut rng_a, |chunk, r| {
        let bx = gather_rows(&x, chunk);
        let by = gather_rows(&y, chunk);
        m_a.train_batch(&bx, &by, LossKind::bce(), &mut opt_a, r)
    });

    let mut rng_b = StdRng::seed_from_u64(2);
    let mut m_b = Mlp::new(
        &[4, 6, 1],
        Activation::Tanh,
        Activation::Identity,
        &mut rng_b,
    );
    let mut opt_b = Adam::new(0.02);
    let trace_b = m_b.fit(&x, &y, LossKind::bce(), &mut opt_b, 6, 8, &mut rng_b);

    assert_eq!(trace_a, trace_b);
    for (la, lb) in m_a.layers.iter().zip(&m_b.layers) {
        assert_eq!(la.w, lb.w);
        assert_eq!(la.b, lb.b);
    }
}

#[test]
fn autoencoder_fit_matches_legacy_loop() {
    let mut rng = StdRng::seed_from_u64(3);
    let x = data(&mut rng, 20, 5);

    let mut rng_a = StdRng::seed_from_u64(4);
    let mut ae_a = Autoencoder::new(5, &[4], 2, &mut rng_a);
    let mut opt_a = Adam::new(0.01);
    let trace_a = legacy_loop(20, 5, 8, &mut rng_a, |chunk, _| {
        let bx = gather_rows(&x, chunk);
        ae_a.train_step(&bx, &bx, &mut opt_a)
    });

    let mut rng_b = StdRng::seed_from_u64(4);
    let mut ae_b = Autoencoder::new(5, &[4], 2, &mut rng_b);
    let mut opt_b = Adam::new(0.01);
    let trace_b = ae_b.fit(&x, &mut opt_b, 5, 8, &mut rng_b);

    assert_eq!(trace_a, trace_b);
    for (la, lb) in ae_a
        .encoder
        .layers
        .iter()
        .chain(&ae_a.decoder.layers)
        .zip(ae_b.encoder.layers.iter().chain(&ae_b.decoder.layers))
    {
        assert_eq!(la.w, lb.w);
    }
}

#[test]
fn dae_fit_matches_legacy_loop() {
    let mut rng = StdRng::seed_from_u64(5);
    let x = data(&mut rng, 20, 4);
    let noise = Noise::Masking { p: 0.2 };

    let mut rng_a = StdRng::seed_from_u64(6);
    let mut dae_a = DenoisingAutoencoder::new(4, &[5], 2, noise, &mut rng_a);
    let mut opt_a = Adam::new(0.01);
    let trace_a = legacy_loop(20, 4, 8, &mut rng_a, |chunk, r| {
        let clean = gather_rows(&x, chunk);
        let corrupted = dae_a.noise.corrupt(&clean, r);
        dae_a.ae.train_step(&corrupted, &clean, &mut opt_a)
    });

    let mut rng_b = StdRng::seed_from_u64(6);
    let mut dae_b = DenoisingAutoencoder::new(4, &[5], 2, noise, &mut rng_b);
    let mut opt_b = Adam::new(0.01);
    let trace_b = dae_b.fit(&x, &mut opt_b, 4, 8, &mut rng_b);

    assert_eq!(trace_a, trace_b);
}

#[test]
fn vae_fit_matches_legacy_loop() {
    let mut rng = StdRng::seed_from_u64(7);
    let x = data(&mut rng, 18, 4);

    let mut rng_a = StdRng::seed_from_u64(8);
    let mut vae_a = Vae::new(4, 6, 2, &mut rng_a);
    let mut opt_a = Adam::new(0.01);
    let mut kl_a = Vec::new();
    let trace_a = legacy_loop(18, 4, 6, &mut rng_a, |chunk, r| {
        let bx = gather_rows(&x, chunk);
        let (recon, kl) = vae_a.train_step(&bx, &mut opt_a, r);
        kl_a.push(kl);
        recon
    });

    let mut rng_b = StdRng::seed_from_u64(8);
    let mut vae_b = Vae::new(4, 6, 2, &mut rng_b);
    let mut opt_b = Adam::new(0.01);
    let trace_b = vae_b.fit(&x, &mut opt_b, 4, 6, &mut rng_b);

    let recon_b: Vec<f32> = trace_b.iter().map(|&(r, _)| r).collect();
    assert_eq!(trace_a, recon_b);
    assert!(trace_b.iter().all(|&(_, kl)| kl.is_finite()));
}

#[test]
fn vae_trainer_reports_kl_in_aux() {
    let mut rng = StdRng::seed_from_u64(9);
    let x = data(&mut rng, 12, 3);
    let mut vae = Vae::new(3, 5, 2, &mut rng);
    let mut opt = Adam::new(0.01);
    let opts = TrainOpts::default().with_epochs(3).with_batch_size(6);
    let mut trainer = VaeTrainer {
        model: &mut vae,
        opt: &mut opt,
    };
    let trace = run_epochs("nn.vae", &mut trainer, &x, None, &opts, &mut rng);
    assert_eq!(trace.len(), 3);
    assert!(trace
        .iter()
        .all(|e| e.loss.is_finite() && e.aux.is_finite()));
}

#[test]
fn ctx_counts_epochs_and_global_steps() {
    struct Recorder {
        seen: Vec<(usize, usize)>,
    }
    impl Trainer for Recorder {
        fn fit(&mut self, _batch: &Batch, ctx: &mut TrainCtx<'_>) -> StepStats {
            self.seen.push((ctx.epoch, ctx.step));
            StepStats::default()
        }
    }
    let mut rng = StdRng::seed_from_u64(10);
    let x = data(&mut rng, 8, 2);
    let mut rec = Recorder { seen: Vec::new() };
    let opts = TrainOpts::default().with_epochs(2).with_batch_size(4);
    run_epochs("nn.rec", &mut rec, &x, None, &opts, &mut rng);
    assert_eq!(
        rec.seen,
        vec![(0, 0), (0, 1), (1, 2), (1, 3)],
        "epoch/step counters"
    );
}
