//! The autoencoder family of Figure 2 (e)–(h): plain, k-sparse,
//! denoising and variational autoencoders.
//!
//! These back two of the paper's concrete DC proposals: MIDA-style
//! multiple imputation with denoising autoencoders (§5.3) and
//! VAE/GAN-based synthetic data generation (§6.2.3).

use crate::linear::Activation;
use crate::mlp::Mlp;
use crate::optim::Optimizer;
use dc_tensor::{Tape, Tensor};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Input-corruption schemes for denoising autoencoders.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Noise {
    /// Zero out each coordinate independently with probability `p`
    /// ("stochastically corrupts the input", §2.1).
    Masking {
        /// Per-coordinate drop probability.
        p: f32,
    },
    /// Add iid Gaussian noise with the given standard deviation.
    Gaussian {
        /// Noise standard deviation.
        std: f32,
    },
}

impl Noise {
    /// Produce a corrupted copy of `x`.
    pub fn corrupt(self, x: &Tensor, rng: &mut StdRng) -> Tensor {
        match self {
            Noise::Masking { p } => {
                x.map_with_rng(rng, |v, r| if r.gen::<f32>() < p { 0.0 } else { v })
            }
            Noise::Gaussian { std } => {
                let noise = Tensor::randn(x.rows, x.cols, std, rng);
                x.add(&noise)
            }
        }
    }
}

trait MapWithRng {
    fn map_with_rng(&self, rng: &mut StdRng, f: impl Fn(f32, &mut StdRng) -> f32) -> Tensor;
}

impl MapWithRng for Tensor {
    fn map_with_rng(&self, rng: &mut StdRng, f: impl Fn(f32, &mut StdRng) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v, rng)).collect(),
        }
    }
}

/// A plain undercomplete autoencoder (Fig 2 e): encoder MLP to a
/// `d' < d` latent space, decoder MLP back to the input space.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Autoencoder {
    /// Encoder network (input → latent).
    pub encoder: Mlp,
    /// Decoder network (latent → input).
    pub decoder: Mlp,
}

impl Autoencoder {
    /// Symmetric autoencoder: `input → hidden… → latent → hidden… → input`.
    pub fn new(input_dim: usize, hidden: &[usize], latent_dim: usize, rng: &mut StdRng) -> Self {
        let mut enc_dims = vec![input_dim];
        enc_dims.extend_from_slice(hidden);
        enc_dims.push(latent_dim);
        let mut dec_dims: Vec<usize> = enc_dims.clone();
        dec_dims.reverse();
        let ae = Autoencoder {
            encoder: Mlp::new(&enc_dims, Activation::Tanh, Activation::Identity, rng),
            decoder: Mlp::new(&dec_dims, Activation::Tanh, Activation::Identity, rng),
        };
        if dc_check::enabled() {
            // Construct-time static validation of the full
            // encode → decode → loss graph.
            let tape = Tape::new();
            let evars = ae.encoder.bind(&tape);
            let dvars = ae.decoder.bind(&tape);
            let x = tape.var(Tensor::zeros(1, input_dim));
            let z = ae.encoder.forward_tape(&tape, x, &evars, None);
            let xhat = ae.decoder.forward_tape(&tape, z, &dvars, None);
            let loss = tape.mse_loss(xhat, Tensor::zeros(1, input_dim));
            dc_check::debug_validate("Autoencoder::new", &tape, loss);
        }
        ae
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// Encode to the latent space.
    pub fn encode(&self, x: &Tensor) -> Tensor {
        self.encoder.forward(x)
    }

    /// Decode from the latent space.
    pub fn decode(&self, z: &Tensor) -> Tensor {
        self.decoder.forward(z)
    }

    /// Full reconstruction.
    pub fn reconstruct(&self, x: &Tensor) -> Tensor {
        self.decode(&self.encode(x))
    }

    /// Per-row squared reconstruction error — the outlier score used by
    /// `dc-clean`'s autoencoder detector.
    pub fn reconstruction_errors(&self, x: &Tensor) -> Vec<f32> {
        let r = self.reconstruct(x);
        (0..x.rows)
            .map(|i| {
                x.row_slice(i)
                    .iter()
                    .zip(r.row_slice(i))
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum()
            })
            .collect()
    }

    /// One gradient step reconstructing `target` from `input` (they
    /// differ for denoising training). Returns the MSE loss.
    ///
    /// Records on a throwaway tape; the pooled hot path used by
    /// [`crate::train::run_epochs`] is [`Autoencoder::train_step_on`].
    pub fn train_step(&mut self, input: &Tensor, target: &Tensor, opt: &mut dyn Optimizer) -> f32 {
        let tape = Tape::new();
        self.train_step_on(&tape, input, target, opt)
    }

    /// [`Autoencoder::train_step`] recording on a caller-owned
    /// (typically recycled) tape.
    pub fn train_step_on(
        &mut self,
        tape: &Tape,
        input: &Tensor,
        target: &Tensor,
        opt: &mut dyn Optimizer,
    ) -> f32 {
        let vx = tape.var_from(input);
        let evars = self.encoder.bind(tape);
        let dvars = self.decoder.bind(tape);
        let z = self.encoder.forward_tape(tape, vx, &evars, None);
        let xhat = self.decoder.forward_tape(tape, z, &dvars, None);
        let loss = tape.mse_loss(xhat, target.clone());
        let loss_value = tape.item(loss);
        dc_check::debug_validate("Autoencoder::train_step", tape, loss);
        tape.backward(loss);
        opt.begin_step();
        for (slot, (layer, lv)) in self
            .encoder
            .layers
            .iter_mut()
            .chain(&mut self.decoder.layers)
            .zip(evars.iter().chain(dvars.iter()))
            .enumerate()
        {
            tape.with_grad(lv.w, |gw| {
                tape.with_grad(lv.b, |gb| layer.apply_grads(opt, slot, gw, gb))
            });
        }
        loss_value
    }

    /// Train to reconstruct `x` for `epochs` minibatch passes; returns
    /// the per-epoch mean loss.
    ///
    /// Thin wrapper over [`crate::train::run_epochs`] with an
    /// [`crate::train::AeTrainer`]; new code should prefer that API.
    pub fn fit(
        &mut self,
        x: &Tensor,
        opt: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let opts = crate::train::TrainOpts::default()
            .with_epochs(epochs)
            .with_batch_size(batch_size);
        let mut trainer = crate::train::AeTrainer { model: self, opt };
        crate::train::run_epochs("nn.ae", &mut trainer, x, None, &opts, rng)
            .iter()
            .map(|e| e.loss)
            .collect()
    }
}

/// A k-sparse autoencoder (Fig 2 f): keeps only the `k` largest hidden
/// activations per row and zeroes the rest, "to extract many small
/// features from a dataset" (§2.1).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KSparseAutoencoder {
    /// Underlying autoencoder (single hidden bottleneck recommended).
    pub ae: Autoencoder,
    /// Number of hidden units kept active per example.
    pub k: usize,
}

impl KSparseAutoencoder {
    /// Build with a single latent layer of `latent_dim` units, of which
    /// `k` stay active.
    pub fn new(input_dim: usize, latent_dim: usize, k: usize, rng: &mut StdRng) -> Self {
        assert!(k >= 1 && k <= latent_dim, "k must be in 1..=latent_dim");
        KSparseAutoencoder {
            ae: Autoencoder::new(input_dim, &[], latent_dim, rng),
            k,
        }
    }

    /// 0/1 mask keeping the top-`k` magnitudes of each row.
    fn topk_mask(z: &Tensor, k: usize) -> Tensor {
        let mut mask = Tensor::zeros(z.rows, z.cols);
        for r in 0..z.rows {
            let row = z.row_slice(r);
            let mut idx: Vec<usize> = (0..row.len()).collect();
            idx.sort_by(|&a, &b| {
                row[b]
                    .abs()
                    .partial_cmp(&row[a].abs())
                    .expect("finite activations")
            });
            for &i in idx.iter().take(k) {
                mask.set(r, i, 1.0);
            }
        }
        mask
    }

    /// Sparse latent code for `x` (at most `k` non-zeros per row).
    pub fn encode(&self, x: &Tensor) -> Tensor {
        let z = self.ae.encode(x);
        let mask = Self::topk_mask(&z, self.k);
        z.mul(&mask)
    }

    /// Reconstruct through the sparse bottleneck.
    pub fn reconstruct(&self, x: &Tensor) -> Tensor {
        self.ae.decode(&self.encode(x))
    }

    /// One training step; the top-k mask is treated as constant for the
    /// backward pass (the standard straight-through choice for k-sparse
    /// autoencoders).
    ///
    /// Records on a throwaway tape; the pooled hot path used by
    /// [`crate::train::run_epochs`] is
    /// [`KSparseAutoencoder::train_step_on`].
    pub fn train_step(&mut self, x: &Tensor, opt: &mut dyn Optimizer) -> f32 {
        let tape = Tape::new();
        self.train_step_on(&tape, x, opt)
    }

    /// [`KSparseAutoencoder::train_step`] recording on a caller-owned
    /// (typically recycled) tape.
    pub fn train_step_on(&mut self, tape: &Tape, x: &Tensor, opt: &mut dyn Optimizer) -> f32 {
        let vx = tape.var_from(x);
        let evars = self.ae.encoder.bind(tape);
        let dvars = self.ae.decoder.bind(tape);
        let z = self.ae.encoder.forward_tape(tape, vx, &evars, None);
        let mask = Self::topk_mask(&tape.value(z), self.k);
        let zs = tape.dropout(z, mask); // reuse masking op: grads pass through kept units
        let xhat = self.ae.decoder.forward_tape(tape, zs, &dvars, None);
        let loss = tape.mse_loss(xhat, x.clone());
        let loss_value = tape.item(loss);
        dc_check::debug_validate("KSparseAutoencoder::train_step", tape, loss);
        tape.backward(loss);
        opt.begin_step();
        for (slot, (layer, lv)) in self
            .ae
            .encoder
            .layers
            .iter_mut()
            .chain(&mut self.ae.decoder.layers)
            .zip(evars.iter().chain(dvars.iter()))
            .enumerate()
        {
            tape.with_grad(lv.w, |gw| {
                tape.with_grad(lv.b, |gb| layer.apply_grads(opt, slot, gw, gb))
            });
        }
        loss_value
    }
}

/// A denoising autoencoder (Fig 2 g): reconstructs the clean input from
/// a corrupted version, learning "distributed representations that are
/// often robust to corruptions" (§2.1). The workhorse of MIDA-style
/// imputation in `dc-clean`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct DenoisingAutoencoder {
    /// Underlying autoencoder.
    pub ae: Autoencoder,
    /// Corruption applied to inputs during training.
    pub noise: Noise,
}

impl DenoisingAutoencoder {
    /// Build with the given architecture and corruption scheme.
    pub fn new(
        input_dim: usize,
        hidden: &[usize],
        latent_dim: usize,
        noise: Noise,
        rng: &mut StdRng,
    ) -> Self {
        DenoisingAutoencoder {
            ae: Autoencoder::new(input_dim, hidden, latent_dim, rng),
            noise,
        }
    }

    /// Reconstruct (denoise) possibly-corrupted rows.
    pub fn denoise(&self, x: &Tensor) -> Tensor {
        self.ae.reconstruct(x)
    }

    /// Train on clean data `x`, corrupting inputs each step. Returns the
    /// per-epoch mean loss against the *clean* targets.
    ///
    /// Thin wrapper over [`crate::train::run_epochs`] with a
    /// [`crate::train::DaeTrainer`]; new code should prefer that API.
    pub fn fit(
        &mut self,
        x: &Tensor,
        opt: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> Vec<f32> {
        let opts = crate::train::TrainOpts::default()
            .with_epochs(epochs)
            .with_batch_size(batch_size);
        let mut trainer = crate::train::DaeTrainer { model: self, opt };
        crate::train::run_epochs("nn.dae", &mut trainer, x, None, &opts, rng)
            .iter()
            .map(|e| e.loss)
            .collect()
    }
}

/// A variational autoencoder (Fig 2 h): a "continuous, well structured
/// latent space" via the reparameterisation trick, trained on
/// reconstruction + β·KL.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Vae {
    /// Shared encoder trunk (input → hidden).
    pub trunk: Mlp,
    /// Head producing the latent mean.
    pub mu_head: crate::linear::Linear,
    /// Head producing the latent log-variance.
    pub logvar_head: crate::linear::Linear,
    /// Decoder (latent → input).
    pub decoder: Mlp,
    /// Weight on the KL term.
    pub beta: f32,
}

impl Vae {
    /// Build a VAE with one hidden layer of `hidden` units and a latent
    /// space of `latent_dim`.
    pub fn new(input_dim: usize, hidden: usize, latent_dim: usize, rng: &mut StdRng) -> Self {
        let vae = Vae {
            trunk: Mlp::new(
                &[input_dim, hidden],
                Activation::Tanh,
                Activation::Tanh,
                rng,
            ),
            mu_head: crate::linear::Linear::new(hidden, latent_dim, Activation::Identity, rng),
            logvar_head: crate::linear::Linear::new(hidden, latent_dim, Activation::Identity, rng),
            decoder: Mlp::new(
                &[latent_dim, hidden, input_dim],
                Activation::Tanh,
                Activation::Identity,
                rng,
            ),
            beta: 1.0,
        };
        if dc_check::enabled() {
            // Construct-time static validation of the deterministic path
            // trunk → mu head → decoder → reconstruction loss (the eps
            // draw is the only piece left out — it is a plain leaf).
            let tape = Tape::new();
            let tvars = vae.trunk.bind(&tape);
            let muv = vae.mu_head.bind(&tape);
            let lvv = vae.logvar_head.bind(&tape);
            let dvars = vae.decoder.bind(&tape);
            let x = tape.var(Tensor::zeros(1, input_dim));
            let h = vae.trunk.forward_tape(&tape, x, &tvars, None);
            let mu = vae.mu_head.forward_tape(&tape, h, muv);
            let _logvar = vae.logvar_head.forward_tape(&tape, h, lvv);
            let xhat = vae.decoder.forward_tape(&tape, mu, &dvars, None);
            let _ = tape.mse_loss(xhat, Tensor::zeros(1, input_dim));
            dc_check::debug_validate_graph("Vae::new", &tape);
        }
        vae
    }

    /// Latent dimensionality.
    pub fn latent_dim(&self) -> usize {
        self.mu_head.out_dim()
    }

    /// Posterior mean for `x` (the deterministic embedding).
    pub fn encode_mean(&self, x: &Tensor) -> Tensor {
        self.mu_head.forward(&self.trunk.forward(x))
    }

    /// Decode latent vectors to data space.
    pub fn decode(&self, z: &Tensor) -> Tensor {
        self.decoder.forward(z)
    }

    /// Draw `n` synthetic rows by decoding standard-normal latents —
    /// the §6.2.3 synthetic-data path.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Tensor {
        let z = Tensor::randn(n, self.latent_dim(), 1.0, rng);
        self.decode(&z)
    }

    /// One training step; returns `(reconstruction_mse, kl)`.
    ///
    /// Records on a throwaway tape; the pooled hot path used by
    /// [`crate::train::run_epochs`] is [`Vae::train_step_on`].
    pub fn train_step(
        &mut self,
        x: &Tensor,
        opt: &mut dyn Optimizer,
        rng: &mut StdRng,
    ) -> (f32, f32) {
        let tape = Tape::new();
        self.train_step_on(&tape, x, opt, rng)
    }

    /// [`Vae::train_step`] recording on a caller-owned (typically
    /// recycled) tape.
    pub fn train_step_on(
        &mut self,
        tape: &Tape,
        x: &Tensor,
        opt: &mut dyn Optimizer,
        rng: &mut StdRng,
    ) -> (f32, f32) {
        let vx = tape.var_from(x);
        let tvars = self.trunk.bind(tape);
        let muv = self.mu_head.bind(tape);
        let lvv = self.logvar_head.bind(tape);
        let dvars = self.decoder.bind(tape);

        let h = self.trunk.forward_tape(tape, vx, &tvars, None);
        let mu = self.mu_head.forward_tape(tape, h, muv);
        let logvar = self.logvar_head.forward_tape(tape, h, lvv);

        // Reparameterise: z = mu + eps ⊙ exp(logvar / 2)
        let eps = tape.var(Tensor::randn(x.rows, self.latent_dim(), 1.0, rng));
        let std = tape.exp(tape.scale(logvar, 0.5));
        let z = tape.add(mu, tape.mul(eps, std));

        let xhat = self.decoder.forward_tape(tape, z, &dvars, None);
        let recon = tape.mse_loss(xhat, x.clone());

        // KL(q || N(0,I)) = -0.5 · mean(1 + logvar − mu² − exp(logvar))
        let inner = tape.sub(
            tape.add_scalar(logvar, 1.0),
            tape.add(tape.mul(mu, mu), tape.exp(logvar)),
        );
        let kl = tape.scale(tape.mean(inner), -0.5);
        let loss = tape.add(recon, tape.scale(kl, self.beta));

        let recon_v = tape.item(recon);
        let kl_v = tape.item(kl);
        dc_check::debug_validate("Vae::train_step", tape, loss);
        tape.backward(loss);

        opt.begin_step();
        let mut slot = 0;
        let mut apply = |layer: &mut crate::linear::Linear, lv: &crate::linear::LinearVars| {
            tape.with_grad(lv.w, |gw| {
                tape.with_grad(lv.b, |gb| layer.apply_grads(opt, slot, gw, gb))
            });
            slot += 1;
        };
        for (layer, lv) in self.trunk.layers.iter_mut().zip(&tvars) {
            apply(layer, lv);
        }
        apply(&mut self.mu_head, &muv);
        apply(&mut self.logvar_head, &lvv);
        for (layer, lv) in self.decoder.layers.iter_mut().zip(&dvars) {
            apply(layer, lv);
        }
        (recon_v, kl_v)
    }

    /// Train for `epochs` passes; returns per-epoch `(recon, kl)` means.
    ///
    /// Thin wrapper over [`crate::train::run_epochs`] with a
    /// [`crate::train::VaeTrainer`]; new code should prefer that API.
    pub fn fit(
        &mut self,
        x: &Tensor,
        opt: &mut dyn Optimizer,
        epochs: usize,
        batch_size: usize,
        rng: &mut StdRng,
    ) -> Vec<(f32, f32)> {
        let opts = crate::train::TrainOpts::default()
            .with_epochs(epochs)
            .with_batch_size(batch_size);
        let mut trainer = crate::train::VaeTrainer { model: self, opt };
        crate::train::run_epochs("nn.vae", &mut trainer, x, None, &opts, rng)
            .iter()
            .map(|e| (e.loss, e.aux))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use rand::SeedableRng;

    fn two_cluster_data(rng: &mut StdRng, n: usize) -> Tensor {
        // Points near (1,1,1,1) or (-1,-1,-1,-1): intrinsic dim ≈ 1.
        let mut rows = Vec::new();
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            let noise = Tensor::randn(1, 4, 0.1, rng);
            rows.push(Tensor::row(vec![
                sign + noise.data[0],
                sign + noise.data[1],
                sign + noise.data[2],
                sign + noise.data[3],
            ]));
        }
        Tensor::vstack(&rows)
    }

    #[test]
    fn autoencoder_compresses_clusters() {
        let mut rng = StdRng::seed_from_u64(31);
        let x = two_cluster_data(&mut rng, 60);
        let mut ae = Autoencoder::new(4, &[6], 1, &mut rng);
        let mut opt = Adam::new(0.01);
        let trace = ae.fit(&x, &mut opt, 120, 16, &mut rng);
        assert!(
            trace.last().expect("trace") < &0.05,
            "final loss {:?}",
            trace.last()
        );
        // The 1-D code must separate the two clusters.
        let z = ae.encode(&x);
        let (mut pos, mut neg) = (Vec::new(), Vec::new());
        for i in 0..x.rows {
            if x.get(i, 0) > 0.0 {
                pos.push(z.get(i, 0));
            } else {
                neg.push(z.get(i, 0));
            }
        }
        let mp = pos.iter().sum::<f32>() / pos.len() as f32;
        let mn = neg.iter().sum::<f32>() / neg.len() as f32;
        assert!((mp - mn).abs() > 0.5, "codes not separated: {mp} vs {mn}");
    }

    #[test]
    fn reconstruction_error_flags_outliers() {
        let mut rng = StdRng::seed_from_u64(32);
        let x = two_cluster_data(&mut rng, 60);
        let mut ae = Autoencoder::new(4, &[6], 2, &mut rng);
        let mut opt = Adam::new(0.01);
        ae.fit(&x, &mut opt, 150, 16, &mut rng);
        let outlier = Tensor::row(vec![5.0, -5.0, 5.0, -5.0]);
        let inlier_err = ae.reconstruction_errors(&x).iter().sum::<f32>() / x.rows as f32;
        let outlier_err = ae.reconstruction_errors(&outlier)[0];
        assert!(
            outlier_err > 10.0 * inlier_err,
            "outlier {outlier_err} vs inlier {inlier_err}"
        );
    }

    #[test]
    fn ksparse_enforces_sparsity() {
        let mut rng = StdRng::seed_from_u64(33);
        let ks = KSparseAutoencoder::new(6, 10, 3, &mut rng);
        let x = Tensor::randn(5, 6, 1.0, &mut rng);
        let z = ks.encode(&x);
        for r in 0..z.rows {
            let nz = z.row_slice(r).iter().filter(|&&v| v != 0.0).count();
            assert!(nz <= 3, "row {r} has {nz} non-zeros");
        }
    }

    #[test]
    fn ksparse_trains() {
        let mut rng = StdRng::seed_from_u64(34);
        let x = two_cluster_data(&mut rng, 40);
        let mut ks = KSparseAutoencoder::new(4, 8, 2, &mut rng);
        let mut opt = Adam::new(0.01);
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..200 {
            let l = ks.train_step(&x, &mut opt);
            if step == 0 {
                first = l;
            }
            last = l;
        }
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn dae_denoises_masked_inputs() {
        let mut rng = StdRng::seed_from_u64(35);
        let x = two_cluster_data(&mut rng, 80);
        let mut dae = DenoisingAutoencoder::new(4, &[8], 2, Noise::Masking { p: 0.25 }, &mut rng);
        let mut opt = Adam::new(0.01);
        dae.fit(&x, &mut opt, 200, 16, &mut rng);
        // Corrupt the first coordinate of a fresh positive-cluster point;
        // the DAE should restore it towards +1.
        let corrupted = Tensor::row(vec![0.0, 1.0, 1.0, 1.0]);
        let restored = dae.denoise(&corrupted);
        assert!(
            restored.data[0] > 0.5,
            "expected restoration towards +1, got {}",
            restored.data[0]
        );
    }

    #[test]
    fn vae_latent_is_regularised_and_samples_look_clustered() {
        let mut rng = StdRng::seed_from_u64(36);
        let x = two_cluster_data(&mut rng, 100);
        let mut vae = Vae::new(4, 8, 2, &mut rng);
        vae.beta = 0.1;
        let mut opt = Adam::new(0.01);
        let trace = vae.fit(&x, &mut opt, 150, 20, &mut rng);
        let (recon, _) = *trace.last().expect("trace");
        assert!(recon < 0.2, "reconstruction {recon}");
        // Samples should land near one of the two cluster centres.
        let samples = vae.sample(50, &mut rng);
        let near = (0..samples.rows)
            .filter(|&r| {
                let m = samples.row_slice(r).iter().sum::<f32>() / 4.0;
                m.abs() > 0.3
            })
            .count();
        assert!(near > 25, "only {near}/50 samples near a cluster");
    }

    #[test]
    fn noise_masking_zeroes_roughly_p_fraction() {
        let mut rng = StdRng::seed_from_u64(37);
        let x = Tensor::ones(50, 50);
        let c = Noise::Masking { p: 0.3 }.corrupt(&x, &mut rng);
        let zeros = c.data.iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 2500.0;
        assert!((frac - 0.3).abs() < 0.05, "masked fraction {frac}");
    }
}
