//! Dense (fully-connected) layers and activation functions.

use dc_tensor::{Tape, Tensor, Var};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Elementwise nonlinearity applied after an affine map.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity (no nonlinearity).
    Identity,
    /// `max(0, x)`.
    Relu,
    /// Leaky ReLU with slope 0.01 on the negative side.
    LeakyRelu,
    /// Logistic sigmoid.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply on the tape (training path).
    pub fn apply_tape(self, tape: &Tape, x: Var) -> Var {
        match self {
            Activation::Identity => x,
            Activation::Relu => tape.relu(x),
            Activation::LeakyRelu => tape.leaky_relu(x, 0.01),
            Activation::Sigmoid => tape.sigmoid(x),
            Activation::Tanh => tape.tanh(x),
        }
    }

    /// Apply directly to a tensor (inference path).
    pub fn apply(self, x: &Tensor) -> Tensor {
        match self {
            Activation::Identity => x.clone(),
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::LeakyRelu => x.map(|v| if v > 0.0 { v } else { 0.01 * v }),
            Activation::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
            Activation::Tanh => x.map(f32::tanh),
        }
    }
}

/// A dense layer `y = act(x · W + b)` owning its parameters.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `in_dim × out_dim`.
    pub w: Tensor,
    /// Bias row vector, `1 × out_dim`.
    pub b: Tensor,
    /// Activation applied after the affine map.
    pub activation: Activation,
}

/// Tape handles for one layer's parameters within a training step.
#[derive(Clone, Copy, Debug)]
pub struct LinearVars {
    /// Weight variable.
    pub w: Var,
    /// Bias variable.
    pub b: Var,
}

impl Linear {
    /// Xavier-initialised layer.
    pub fn new(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut StdRng) -> Self {
        Linear {
            w: Tensor::xavier(in_dim, out_dim, rng),
            b: Tensor::zeros(1, out_dim),
            activation,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols
    }

    /// Register parameters on a tape for a training step. The copies
    /// live in pool-backed buffers, so on a recycled tape a step's
    /// binds reuse the previous step's memory.
    pub fn bind(&self, tape: &Tape) -> LinearVars {
        LinearVars {
            w: tape.var_from(&self.w),
            b: tape.var_from(&self.b),
        }
    }

    /// Forward on the tape using previously bound parameter vars.
    pub fn forward_tape(&self, tape: &Tape, x: Var, vars: LinearVars) -> Var {
        let affine = tape.add_row(tape.matmul(x, vars.w), vars.b);
        self.activation.apply_tape(tape, affine)
    }

    /// Tape-free forward (inference).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        let mut out = x.matmul(&self.w);
        out.add_row_inplace(&self.b);
        self.activation.apply(&out)
    }

    /// Apply an optimiser update given gradients read from the tape.
    pub fn apply_grads(
        &mut self,
        opt: &mut dyn crate::optim::Optimizer,
        slot: usize,
        gw: &Tensor,
        gb: &Tensor,
    ) {
        opt.update(slot * 2, &mut self.w, gw);
        opt.update(slot * 2 + 1, &mut self.b, gb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_tape_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Linear::new(3, 2, Activation::Tanh, &mut rng);
        let x = Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.3, 0.4, 0.5, -0.6]);

        let fast = layer.forward(&x);

        let tape = Tape::new();
        let vx = tape.var(x);
        let vars = layer.bind(&tape);
        let out = layer.forward_tape(&tape, vx, vars);
        assert!(fast.distance(&tape.value(out)) < 1e-6);
    }

    #[test]
    fn activations_inference_matches_tape() {
        let x = Tensor::row(vec![-1.5, -0.1, 0.0, 0.1, 2.0]);
        for act in [
            Activation::Identity,
            Activation::Relu,
            Activation::LeakyRelu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            let direct = act.apply(&x);
            let tape = Tape::new();
            let v = tape.var(x.clone());
            let out = act.apply_tape(&tape, v);
            assert!(direct.distance(&tape.value(out)) < 1e-6, "{act:?}");
        }
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let layer = Linear::new(50, 50, Activation::Relu, &mut rng);
        let limit = (6.0f32 / 100.0).sqrt();
        assert!(layer.w.data.iter().all(|v| v.abs() <= limit));
        assert!(layer.b.data.iter().all(|&v| v == 0.0));
    }
}
